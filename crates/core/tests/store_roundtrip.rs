//! Round-trip properties of the persistent provenance store: exporting a
//! populated `DnfStore` + session memos and replaying into a fresh session
//! must reproduce identical `DnfId`s and probabilities — for every formula
//! kind (constants, literals, multi-monomial), across all 16 intern
//! shards, and in both naive and demand eval modes.

use p3_core::{EvalMode, ProbMethod, SessionOptions, P3};
use p3_prob::{Dnf, DnfId, Monomial, VarId};
use proptest::prelude::*;

/// 12 independent facts — var ids 0..12 are valid under this program's
/// variable table, so arbitrary formulas over those ids have well-defined
/// probabilities.
fn fact_source() -> String {
    (0..12)
        .map(|i| format!("t{i} 0.{}: p{i}(c).\n", (i % 9) + 1))
        .collect()
}

/// A recursive program whose provenance has constants, single literals and
/// fat multi-monomial polynomials.
const RECURSIVE_SRC: &str = "
    e1 0.6: edge(a, b).
    e2 0.7: edge(b, c).
    e3 0.5: edge(a, c).
    e4 0.4: edge(c, d).
    e5 0.8: edge(b, d).
    r1 0.9: path(X, Y) :- edge(X, Y).
    r2 0.9: path(X, Z) :- path(X, Y), edge(Y, Z).
";

fn session(src: &str, mode: EvalMode) -> p3_core::QuerySession {
    P3::from_source(src).unwrap().session_with(SessionOptions {
        eval_mode: mode,
        ..SessionOptions::default()
    })
}

/// Interns distinct formulas until every one of the 16 shard indexes holds
/// at least one entry, so the round trip provably crosses all shards.
fn populate_every_shard(store: &p3_prob::DnfStore) {
    let mut k = 0u32;
    while store.shard_stats().iter().any(|s| s.entries == 0) {
        // Subsets of the 12 valid vars, enumerated by bitmask.
        let lits: Vec<VarId> = (0..12).filter(|b| (k >> b) & 1 == 1).map(VarId).collect();
        store.intern(Dnf::new(vec![Monomial::new(lits)]));
        k += 1;
        assert!(k < 4096, "could not reach all shards");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Store-level round trip under proptest-generated formulas: export →
    /// restore reproduces the id sequence, every formula bit-for-bit, and
    /// every exact probability, in both eval modes.
    #[test]
    fn populated_store_roundtrips_ids_and_probabilities(
        formulas in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0u32..12, 0..4),
                0..5,
            ),
            1..32,
        ),
        demand in 0u8..2,
    ) {
        let src = fact_source();
        let mode = if demand == 1 { EvalMode::Demand } else { EvalMode::Naive };
        let a = session(&src, mode);
        let store_a = a.p3().store();

        // All node kinds: the constants are pre-interned at ids 0 and 1;
        // the generated formulas cover empty (false), empty-monomial
        // (true), literal and multi-monomial shapes.
        let mut ids = vec![DnfId::FALSE, DnfId::TRUE];
        for monomials in &formulas {
            let dnf = Dnf::new(
                monomials
                    .iter()
                    .map(|lits| Monomial::new(lits.iter().map(|&v| VarId(v)).collect()))
                    .collect(),
            );
            ids.push(store_a.intern(dnf));
        }
        populate_every_shard(store_a);
        prop_assert!(store_a.shard_stats().iter().all(|s| s.entries > 0));

        // Memoize an exact probability for every distinct id.
        ids.sort_unstable();
        ids.dedup();
        let probs: Vec<f64> = ids.iter().map(|&id| a.probability_of(id, ProbMethod::Exact)).collect();

        // Export, then replay into a fresh session over the same program.
        let records = a.export_records();
        let b = session(&src, mode);
        let restored = b.restore_records(&records);
        prop_assert_eq!(restored.skipped, 0);
        prop_assert_eq!(restored.formulas, store_a.len());
        let store_b = b.p3().store();
        prop_assert_eq!(store_b.len(), store_a.len());

        // Identical id ⇄ formula mapping...
        for i in 0..store_a.len() {
            let id = DnfId::from_index(i);
            prop_assert_eq!(&*store_a.get(id), &*store_b.get(id), "formula {} diverged", i);
            // ...and re-interning in the restored store yields the same id.
            prop_assert_eq!(store_b.intern((*store_a.get(id)).clone()), id);
        }
        // Identical probabilities, answered from the restored memo (no
        // recomputation: misses stay 0).
        for (&id, &p) in ids.iter().zip(&probs) {
            prop_assert_eq!(b.probability_of(id, ProbMethod::Exact).to_bits(), p.to_bits());
        }
        prop_assert_eq!(b.stats().misses, 0);
        prop_assert_eq!(b.stats().warm_restored, restored.memos() as u64);
    }
}

/// Query-level round trip on a recursive program: a session in each eval
/// mode exports its state; a fresh same-mode session restores it and must
/// answer the same queries with bit-identical probabilities, entirely from
/// the warm layer (zero misses), and report them as warm-restored.
#[test]
fn both_eval_modes_roundtrip_query_memos() {
    let queries = ["path(a, d)", "path(a, c)", "path(b, d)"];
    let mut by_mode = Vec::new();
    for mode in [EvalMode::Naive, EvalMode::Demand] {
        let warm_src = session(RECURSIVE_SRC, mode);
        let probs: Vec<f64> = queries
            .iter()
            .map(|q| warm_src.probability(q, ProbMethod::Exact).unwrap())
            .collect();

        // Query memos only reach the export through the warm layer, which
        // mirrors what the service journals — so run the queries under an
        // attached (Mem) backend, exactly like `p3-serve --store-dir`.
        let journaled = session(RECURSIVE_SRC, mode);
        journaled.attach_store(std::sync::Arc::new(p3_store::MemBackend::new()));
        for q in &queries {
            journaled.probability(q, ProbMethod::Exact).unwrap();
        }
        let records = journaled.export_records();
        assert!(records.len() > 2);

        let cold = session(RECURSIVE_SRC, mode);
        let restored = cold.restore_records(&records);
        assert!(restored.formulas > 2, "mode {mode:?} exported no formulas");
        assert_eq!(restored.dnf_memos, queries.len());
        assert_eq!(restored.skipped, 0);
        assert_eq!(cold.stats().warm_restored, restored.memos() as u64);

        for (q, &p) in queries.iter().zip(&probs) {
            let warm_p = cold.probability(q, ProbMethod::Exact).unwrap();
            assert_eq!(warm_p.to_bits(), p.to_bits(), "query {q} mode {mode:?}");
        }
        assert_eq!(cold.stats().misses, 0, "restored session recomputed");
        assert_eq!(cold.stats().hits, 2 * queries.len() as u64);
        by_mode.push(probs);
    }
    // Naive and demand agree (and therefore so do their restored stores).
    assert_eq!(by_mode[0], by_mode[1]);
}

/// The MemBackend journal stream alone (no export) must also rebuild an
/// equivalent session: this is exactly what a crash before any snapshot
/// leaves on disk.
#[test]
fn journal_stream_alone_is_sufficient_to_warm_boot() {
    let a = session(RECURSIVE_SRC, EvalMode::Demand);
    let backend = std::sync::Arc::new(p3_store::MemBackend::new());
    a.attach_store(backend.clone());
    let p = a.probability("path(a, d)", ProbMethod::Exact).unwrap();
    // The journal saw every intern (minus the 2 constants) and both memos.
    let records = backend.records();
    let interns = records
        .iter()
        .filter(|r| matches!(r, p3_store::Record::Intern { .. }))
        .count();
    assert_eq!(interns, a.p3().store().len() - 2);

    // Constants are pre-interned in any fresh store, so replaying the
    // journaled tail after them reproduces the id space.
    let b = session(RECURSIVE_SRC, EvalMode::Demand);
    let restored = b.restore_records(&records);
    assert_eq!(restored.skipped, 0);
    assert_eq!(b.p3().store().len(), a.p3().store().len());
    assert_eq!(
        b.probability("path(a, d)", ProbMethod::Exact)
            .unwrap()
            .to_bits(),
        p.to_bits()
    );
    assert_eq!(b.stats().misses, 0);
}
