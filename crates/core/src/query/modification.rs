//! Modification Query (§4.4): reach a target probability at minimal cost.
//!
//! By Eq. 16, `P[λ] = Inf_x(λ) · p(x) + P[λ|x=0]` — the success probability
//! is linear in each literal's probability with slope `Inf_x`. The greedy
//! heuristic therefore repeatedly picks the literal with the steepest slope
//! (the most influential one), solves the linear equation for the value
//! that would hit the target, clamps to `[0, 1]`, and iterates until the
//! target is reached (or no progress is possible). Cost is Eq. 17's
//! `Σ |Δp(x)|`.
//!
//! [`Strategy::Random`] is the paper's Table 7 baseline: a uniformly random
//! modifiable literal is updated each step instead of the most influential
//! one.

use crate::query::influence::exact_influence;
use p3_prob::{exact, mc, parallel, Dnf, McConfig, VarId, VarTable};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Variable-selection strategy for each modification step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Pick the most influential remaining literal (the P3 heuristic).
    #[default]
    Greedy,
    /// Pick a uniformly random remaining literal (the Table 7 baseline).
    /// The seed makes runs reproducible.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// How probabilities and influences are evaluated during the search.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum EvalMethod {
    /// Exact Shannon computations.
    #[default]
    Exact,
    /// Monte-Carlo estimates with this configuration.
    Mc(McConfig),
    /// Monte-Carlo estimates parallelised across the given thread count
    /// (the paper's Table 9 "Parallel" column).
    McParallel(McConfig, usize),
}

/// Options for a Modification Query.
#[derive(Clone, Debug)]
pub struct ModificationOptions {
    /// Literals the query may modify; `None` means every literal in the
    /// polynomial. (§4.4 modifies base tuples; Table 6 modifies `trust`
    /// tuples only.)
    pub modifiable: Option<Vec<VarId>>,
    /// Stop once `|P − target| ≤ tolerance`.
    pub tolerance: f64,
    /// Selection strategy.
    pub strategy: Strategy,
    /// Probability/influence evaluation backend.
    pub eval: EvalMethod,
    /// Hard cap on steps (safety against degenerate formulas).
    pub max_steps: usize,
}

impl Default for ModificationOptions {
    fn default() -> Self {
        Self {
            modifiable: None,
            tolerance: 1e-6,
            strategy: Strategy::Greedy,
            eval: EvalMethod::Exact,
            max_steps: 64,
        }
    }
}

/// One applied change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModificationStep {
    /// The literal changed.
    pub var: VarId,
    /// Its probability before the change.
    pub from: f64,
    /// Its probability after the change.
    pub to: f64,
    /// `P[λ]` after this step.
    pub resulting_probability: f64,
}

/// The result of a Modification Query.
#[derive(Clone, Debug)]
pub struct ModificationPlan {
    /// The changes, in application order.
    pub steps: Vec<ModificationStep>,
    /// Eq. 17's cost: `Σ |Δp|`.
    pub total_cost: f64,
    /// `P[λ]` before any change.
    pub initial_probability: f64,
    /// `P[λ]` after all changes.
    pub achieved_probability: f64,
    /// Whether `|achieved − target| ≤ tolerance`.
    pub reached_target: bool,
    /// The variable table with the plan applied (useful for follow-ups).
    pub modified_vars: VarTable,
}

/// Probability and influence evaluation hooks for
/// [`modification_query_with`]. Both functions receive the variable table
/// under which to evaluate — the search mutates a private working copy, so
/// implementations caching by formula must only consult their cache when
/// the passed table is the base one (pointer comparison suffices; the
/// session layer does exactly that).
pub struct ModificationEval<'a> {
    /// Computes `P[λ]` under the given table.
    pub prob: &'a (dyn Fn(&Dnf, &VarTable) -> f64 + 'a),
    /// Computes `Inf_x(λ)` under the given table.
    pub influence: &'a (dyn Fn(&Dnf, &VarTable, VarId) -> f64 + 'a),
}

impl<'a> ModificationEval<'a> {
    /// The default hooks implementing an [`EvalMethod`] directly.
    fn from_method(
        eval: EvalMethod,
    ) -> (
        impl Fn(&Dnf, &VarTable) -> f64 + 'a,
        impl Fn(&Dnf, &VarTable, VarId) -> f64 + 'a,
    ) {
        let prob = move |dnf: &Dnf, vars: &VarTable| -> f64 {
            match eval {
                EvalMethod::Exact => exact::probability(dnf, vars),
                EvalMethod::Mc(cfg) => mc::estimate(dnf, vars, cfg),
                EvalMethod::McParallel(cfg, threads) => parallel::estimate(dnf, vars, cfg, threads),
            }
        };
        let influence = move |dnf: &Dnf, vars: &VarTable, x: VarId| -> f64 {
            match eval {
                EvalMethod::Exact => exact_influence(dnf, vars, x),
                EvalMethod::Mc(cfg) => mc::influence(dnf, vars, x, cfg),
                EvalMethod::McParallel(cfg, threads) => {
                    parallel::influence(dnf, vars, x, cfg, threads)
                }
            }
        };
        (prob, influence)
    }
}

/// Runs a Modification Query: change literal probabilities so that `P[λ]`
/// reaches `target`, at small total cost.
pub fn modification_query(
    dnf: &Dnf,
    vars: &VarTable,
    target: f64,
    opts: &ModificationOptions,
) -> ModificationPlan {
    let (prob, influence) = ModificationEval::from_method(opts.eval);
    modification_query_with(
        dnf,
        vars,
        target,
        opts,
        ModificationEval {
            prob: &prob,
            influence: &influence,
        },
    )
}

/// Like [`modification_query`], but probability and influence evaluation go
/// through the caller's hooks ([`ModificationOptions::eval`] is ignored).
/// The initial probability is evaluated against `vars` itself, so a caching
/// hook keyed to the base table serves it from cache; all later
/// evaluations pass the mutated working copy.
pub fn modification_query_with(
    dnf: &Dnf,
    vars: &VarTable,
    target: f64,
    opts: &ModificationOptions,
    eval: ModificationEval<'_>,
) -> ModificationPlan {
    assert!(
        (0.0..=1.0).contains(&target),
        "target probability {target} out of range"
    );
    let mut working = vars.clone();
    let mut remaining: Vec<VarId> = match &opts.modifiable {
        Some(list) => {
            let in_dnf = dnf.vars();
            list.iter()
                .copied()
                .filter(|v| in_dnf.binary_search(v).is_ok())
                .collect()
        }
        None => dnf.vars(),
    };
    let mut rng = match opts.strategy {
        Strategy::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
        Strategy::Greedy => None,
    };

    let prob = eval.prob;
    let influence = eval.influence;

    let initial_probability = prob(dnf, vars);
    let mut current = initial_probability;
    let mut steps: Vec<ModificationStep> = Vec::new();

    for _ in 0..opts.max_steps {
        if (current - target).abs() <= opts.tolerance || remaining.is_empty() {
            break;
        }
        let need_increase = target > current;

        // Choose the literal: steepest slope, or random for the baseline.
        // A literal whose probability is already at the useful bound cannot
        // make progress and is dropped from consideration.
        let usable: Vec<(usize, f64)> = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| {
                let p = working.prob(x);
                let at_bound = if need_increase { p >= 1.0 } else { p <= 0.0 };
                if at_bound {
                    return None;
                }
                let inf = influence(dnf, &working, x);
                (inf > 1e-12).then_some((i, inf))
            })
            .collect();
        if usable.is_empty() {
            break;
        }
        let (idx, inf) = match &mut rng {
            Some(rng) => usable[rng.random_range(0..usable.len())],
            None => usable
                .iter()
                .copied()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("usable is non-empty"),
        };
        let x = remaining[idx];
        let from = working.prob(x);

        // Eq. 16: target = inf · p'(x) + (current − inf · p(x)).
        let ideal = from + (target - current) / inf;
        let to = ideal.clamp(0.0, 1.0);
        if (to - from).abs() <= f64::EPSILON {
            remaining.remove(idx);
            continue;
        }
        working.set_prob(x, to);
        current = prob(dnf, &working);
        steps.push(ModificationStep {
            var: x,
            from,
            to,
            resulting_probability: current,
        });
        remaining.remove(idx);
    }

    let total_cost = steps.iter().map(|s| (s.to - s.from).abs()).sum();
    ModificationPlan {
        steps,
        total_cost,
        initial_probability,
        achieved_probability: current,
        reached_target: (current - target).abs() <= opts.tolerance,
        modified_vars: working,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_prob::Monomial;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| v(i)).collect())
    }

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    /// Acquaintance polynomial; vars 0=r1..7=t6 as in the other modules.
    fn acquaintance() -> (Dnf, VarTable) {
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        (dnf, vars)
    }

    #[test]
    fn paper_modification_example_raises_r3() {
        // §4.4: raise P[know(Ben,Elena)] to 0.5. The most influential
        // literal is r3; with our exact numbers the solution is
        // r3 → 0.5/0.8192 ≈ 0.6104 (the paper, using its own arithmetic,
        // reports 0.56 at cost 0.36 — same variable, same direction).
        let (dnf, vars) = acquaintance();
        let plan = modification_query(
            &dnf,
            &vars,
            0.5,
            &ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        assert!(plan.reached_target, "{plan:?}");
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].var, v(2), "r3 is changed");
        assert!((plan.steps[0].to - 0.5 / 0.8192).abs() < 1e-9);
        assert!((plan.total_cost - (0.5 / 0.8192 - 0.2)).abs() < 1e-9);
        assert!((plan.achieved_probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_steps_when_one_variable_is_not_enough() {
        // Target 0.9 cannot be reached by r3 alone (max 0.8192): the greedy
        // continues with further literals.
        let (dnf, vars) = acquaintance();
        let plan = modification_query(
            &dnf,
            &vars,
            0.9,
            &ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        assert!(plan.steps.len() >= 2, "{plan:?}");
        assert_eq!(plan.steps[0].var, v(2));
        assert_eq!(plan.steps[0].to, 1.0, "clamped to the maximum");
        assert!(plan.reached_target);
        assert!((plan.achieved_probability - 0.9).abs() < 1e-9);
    }

    #[test]
    fn decreasing_works_too() {
        let (dnf, vars) = acquaintance();
        let plan = modification_query(
            &dnf,
            &vars,
            0.05,
            &ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        assert!(plan.reached_target, "{plan:?}");
        assert!((plan.achieved_probability - 0.05).abs() < 1e-9);
        assert!(plan.steps.iter().all(|s| s.to < s.from));
    }

    #[test]
    fn greedy_beats_random_on_cost() {
        // The paper's Table 6 vs Table 7 comparison, in miniature: on the
        // acquaintance polynomial the greedy plan costs no more than the
        // random baseline (averaged over seeds to avoid a lucky draw).
        let (dnf, vars) = acquaintance();
        let greedy = modification_query(
            &dnf,
            &vars,
            0.6,
            &ModificationOptions {
                tolerance: 1e-6,
                ..Default::default()
            },
        );
        assert!(greedy.reached_target);
        let mut random_costs = Vec::new();
        for seed in 0..10 {
            let plan = modification_query(
                &dnf,
                &vars,
                0.6,
                &ModificationOptions {
                    strategy: Strategy::Random { seed },
                    tolerance: 1e-6,
                    ..Default::default()
                },
            );
            if plan.reached_target {
                random_costs.push(plan.total_cost);
            }
        }
        assert!(!random_costs.is_empty());
        let avg_random: f64 = random_costs.iter().sum::<f64>() / random_costs.len() as f64;
        assert!(
            greedy.total_cost <= avg_random + 1e-9,
            "greedy {} vs avg random {avg_random}",
            greedy.total_cost
        );
    }

    #[test]
    fn modifiable_restriction_is_respected() {
        let (dnf, vars) = acquaintance();
        // Only t4 and t5 (vars 5, 6) may change; the reachable range is
        // limited but all steps must stay within the set.
        let plan = modification_query(
            &dnf,
            &vars,
            0.5,
            &ModificationOptions {
                modifiable: Some(vec![v(5), v(6)]),
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        assert!(plan.steps.iter().all(|s| s.var == v(5) || s.var == v(6)));
        assert!(!plan.reached_target, "t4/t5 alone cannot lift P to 0.5");
    }

    #[test]
    fn unreachable_target_reports_failure_gracefully() {
        let vars = table(&[0.5, 0.5]);
        let dnf = Dnf::new(vec![m(&[0, 1])]);
        let plan = modification_query(
            &dnf,
            &vars,
            1.0,
            &ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        // Setting both literals to 1.0 reaches exactly 1.0 — so use a
        // polynomial where that is impossible by restricting the set.
        assert!(plan.reached_target);
        let plan = modification_query(
            &dnf,
            &vars,
            1.0,
            &ModificationOptions {
                modifiable: Some(vec![v(0)]),
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        assert!(!plan.reached_target);
        assert!(
            (plan.achieved_probability - 0.5).abs() < 1e-9,
            "x0=1 gives P=p(x1)=0.5"
        );
    }

    #[test]
    fn already_at_target_changes_nothing() {
        let (dnf, vars) = acquaintance();
        let p0 = exact::probability(&dnf, &vars);
        let plan = modification_query(
            &dnf,
            &vars,
            p0,
            &ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        assert!(plan.steps.is_empty());
        assert_eq!(plan.total_cost, 0.0);
        assert!(plan.reached_target);
    }

    #[test]
    fn cost_accounting_matches_steps() {
        let (dnf, vars) = acquaintance();
        let plan = modification_query(
            &dnf,
            &vars,
            0.7,
            &ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        let recomputed: f64 = plan.steps.iter().map(|s| (s.to - s.from).abs()).sum();
        assert!((plan.total_cost - recomputed).abs() < 1e-12);
        // The modified table reflects the steps.
        for s in &plan.steps {
            assert_eq!(plan.modified_vars.prob(s.var), s.to);
        }
    }
}
