//! Derivation Query (§4.2): sufficient provenance.
//!
//! Given a polynomial `λ` and an error limit `ε`, find a subset `λS` of its
//! monomials with `|P[λ] − P[λS]| ≤ ε` — ideally the smallest such subset
//! (NP-hard, per Ré–Suciu). Two algorithms are provided:
//!
//! * **Naive greedy** (the paper's baseline, which "performs surprisingly
//!   well"): sort monomials by probability descending and drop from the
//!   cheap end while the error allows.
//! * **Ré–Suciu** (the paper's Steps 1–4, adapted from approximate lineage
//!   for probabilistic databases): find a *match* — an independent
//!   (pairwise-disjoint) sub-family whose probability is cheap to compute;
//!   if it is already an ε-approximation, return it; otherwise factor the
//!   polynomial on a shared literal and recurse on the (k−1)-literal
//!   residual.
//!
//! Because provenance is monotone and `λS`'s monomials are a subset of
//! `λ`'s, `P[λS] ≤ P[λ]` always; the error is simply `P[λ] − P[λS]`.

use crate::prob_method::ProbMethod;
use p3_prob::{Dnf, Monomial, VarId, VarTable};
use std::collections::HashMap;

/// Algorithm choice for the Derivation Query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DerivationAlgo {
    /// Drop lowest-probability monomials while the error allows.
    #[default]
    NaiveGreedy,
    /// The recursive match/factor algorithm of Ré–Suciu.
    ReSuciu,
}

/// The result of a Derivation Query.
#[derive(Debug, Clone)]
pub struct SufficientProvenance {
    /// The sufficient polynomial `λS` (a subset of the input's monomials).
    pub polynomial: Dnf,
    /// Monomials in the original polynomial.
    pub original_len: usize,
    /// `P[λ]` of the original polynomial.
    pub original_probability: f64,
    /// `P[λS]`.
    pub probability: f64,
    /// The achieved error `P[λ] − P[λS]` (non-negative).
    pub error: f64,
    /// `λS` monomial count divided by `λ` monomial count (Fig 11's metric).
    pub compression_ratio: f64,
}

/// Runs a Derivation Query: a sufficient provenance of `dnf` within `eps`.
pub fn sufficient_provenance(
    dnf: &Dnf,
    vars: &VarTable,
    eps: f64,
    algo: DerivationAlgo,
    method: ProbMethod,
) -> SufficientProvenance {
    sufficient_provenance_with(dnf, vars, eps, algo, &|d| method.probability(d, vars))
}

/// Like [`sufficient_provenance`], but probabilities of candidate
/// sub-polynomials are computed by `prob` (over the same variable table as
/// `vars`). Query sessions pass a memoizing evaluator here so repeated
/// Derivation Queries — and the probability evaluations they share with
/// other query classes — hit the session cache.
///
/// `vars` is still consulted directly for the closed-form monomial
/// arithmetic inside [`DerivationAlgo::ReSuciu`]; `prob` must be consistent
/// with it.
pub fn sufficient_provenance_with(
    dnf: &Dnf,
    vars: &VarTable,
    eps: f64,
    algo: DerivationAlgo,
    prob: &dyn Fn(&Dnf) -> f64,
) -> SufficientProvenance {
    let original_probability = prob(dnf);
    let polynomial = match algo {
        DerivationAlgo::NaiveGreedy => naive_greedy(dnf, vars, eps, prob, original_probability),
        DerivationAlgo::ReSuciu => re_suciu(dnf, vars, eps),
    };
    let probability = prob(&polynomial);
    let error = (original_probability - probability).max(0.0);
    let compression_ratio = if dnf.is_empty() {
        1.0
    } else {
        polynomial.len() as f64 / dnf.len() as f64
    };
    SufficientProvenance {
        polynomial,
        original_len: dnf.len(),
        original_probability,
        probability,
        error,
        compression_ratio,
    }
}

/// The paper's naive approach: sort by monomial probability descending,
/// drop from the tail while `P[λ] − P[λS] ≤ ε`.
fn naive_greedy(
    dnf: &Dnf,
    vars: &VarTable,
    eps: f64,
    prob: &dyn Fn(&Dnf) -> f64,
    p_full: f64,
) -> Dnf {
    if dnf.len() <= 1 {
        return dnf.clone();
    }
    let mut order: Vec<usize> = (0..dnf.len()).collect();
    // Descending monomial probability; stable tie-break on index.
    order.sort_by(|&a, &b| {
        let pa = dnf.monomials()[a].probability(vars);
        let pb = dnf.monomials()[b].probability(vars);
        pb.partial_cmp(&pa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // Binary search over the kept-prefix length: P[prefix] is monotone in
    // the prefix, so the smallest admissible prefix is well-defined. This
    // replaces the paper's linear remove-one-recheck loop with the same
    // result in O(log n) probability evaluations.
    let admissible = |keep: usize| -> bool {
        let kept = dnf.select(&order[..keep]);
        p_full - prob(&kept) <= eps
    };
    let (mut lo, mut hi) = (1usize, dnf.len());
    if admissible(0) {
        return Dnf::zero();
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if admissible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    dnf.select(&order[..lo])
}

/// The Ré–Suciu recursive algorithm (§4.2 Steps 1–4).
///
/// Probabilities of matches (independent monomial families) are computed in
/// closed form; the recursion factors on the most frequent literal and
/// splits the error budget between the factored group (scaled by the
/// literal's probability) and the remainder.
fn re_suciu(dnf: &Dnf, vars: &VarTable, eps: f64) -> Dnf {
    if dnf.len() <= 1 {
        return dnf.clone();
    }

    // Step 1: a (greedy maximal, highest-probability-first) match.
    let matched = greedy_match(dnf, vars);
    // Step 2: is the match already an ε-approximation? Both sides exact:
    // the match in closed form, the full formula via Shannon (falling back
    // to the match-only bound when the formula is too tangled).
    let p_match = match_probability(&matched, vars);
    let p_full = p3_prob::exact::try_probability(dnf, vars, 1 << 20).unwrap_or(f64::NAN);
    if !p_full.is_nan() && p_full - p_match <= eps {
        // The match may over-satisfy the budget; return the smallest subset
        // of it that still ε-approximates (errors of a disjoint family are
        // closed-form, so this pruning is exact and cheap).
        return Dnf::new(prune_match(matched, vars, p_full, eps));
    }

    // Step 3: factor on the literal shared by the most monomials.
    let Some(lit) = most_shared_literal(dnf) else {
        // No shared literal: all monomials are pairwise disjoint — the match
        // is the whole formula.
        return dnf.clone();
    };
    let mut group: Vec<Monomial> = Vec::new();
    let mut rest: Vec<Monomial> = Vec::new();
    for m in dnf.monomials() {
        if m.contains(lit) {
            group.push(strip(m, lit));
        } else {
            rest.push(m.clone());
        }
    }

    // Step 4: recurse. λ = lit·G′ + H; the error of keeping lit·G″ + H″ is
    // at most p(lit)·err(G′) + err(H), so give each branch half the budget
    // (the group's half inflated by 1/p(lit)).
    let p_lit = vars.prob(lit).max(f64::MIN_POSITIVE);
    let g_budget = (eps / 2.0) / p_lit;
    let g_suff = re_suciu(&Dnf::new(group), vars, g_budget);
    let h_suff = re_suciu(&Dnf::new(rest), vars, eps / 2.0);

    let mut out: Vec<Monomial> = h_suff.monomials().to_vec();
    for m in g_suff.monomials() {
        let mut lits = m.literals().to_vec();
        lits.push(lit);
        out.push(Monomial::new(lits));
    }
    Dnf::new(out)
}

/// Greedy maximal independent family, highest-probability monomials first.
fn greedy_match(dnf: &Dnf, vars: &VarTable) -> Vec<Monomial> {
    let mut order: Vec<&Monomial> = dnf.monomials().iter().collect();
    order.sort_by(|a, b| {
        let pa = a.probability(vars);
        let pb = b.probability(vars);
        pb.partial_cmp(&pa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let mut matched: Vec<Monomial> = Vec::new();
    for m in order {
        if matched.iter().all(|k| k.disjoint(m)) {
            matched.push(m.clone());
        }
    }
    matched
}

/// `P[⋃ m_i]` for pairwise-disjoint monomials: `1 − Π(1 − P[m_i])`.
fn match_probability(matched: &[Monomial], vars: &VarTable) -> f64 {
    1.0 - matched
        .iter()
        .map(|m| 1.0 - m.probability(vars))
        .product::<f64>()
}

/// Drops the lowest-probability monomials from a disjoint family while the
/// remainder still ε-approximates `p_full`.
fn prune_match(
    mut matched: Vec<Monomial>,
    vars: &VarTable,
    p_full: f64,
    eps: f64,
) -> Vec<Monomial> {
    // Ascending probability, so the cheapest candidates are at the tail's
    // mirror; pop from the front after sorting ascending.
    matched.sort_by(|a, b| {
        let pa = a.probability(vars);
        let pb = b.probability(vars);
        pa.partial_cmp(&pb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    while !matched.is_empty() {
        let without_first = &matched[1..];
        if p_full - match_probability(without_first, vars) <= eps {
            matched.remove(0);
        } else {
            break;
        }
    }
    matched
}

/// The literal occurring in the most monomials, provided it is shared by at
/// least two.
fn most_shared_literal(dnf: &Dnf) -> Option<VarId> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    for m in dnf.monomials() {
        for &l in m.literals() {
            *counts.entry(l).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= 2)
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

fn strip(m: &Monomial, lit: VarId) -> Monomial {
    Monomial::new(m.literals().iter().copied().filter(|&l| l != lit).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_prob::exact;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| v(i)).collect())
    }

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    /// The acquaintance polynomial: r3·t6·r1·t1·t2 + r3·t6·r2·t4·t5.
    fn acquaintance() -> (Dnf, VarTable) {
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        (dnf, vars)
    }

    #[test]
    fn tiny_epsilon_keeps_everything() {
        // The paper's Query 2 with ε = 0.001: both derivations stay.
        let (dnf, vars) = acquaintance();
        for algo in [DerivationAlgo::NaiveGreedy, DerivationAlgo::ReSuciu] {
            let s = sufficient_provenance(&dnf, &vars, 0.001, algo, ProbMethod::Exact);
            assert_eq!(s.polynomial.len(), 2, "{algo:?}");
            assert!(s.error <= 0.001);
        }
    }

    #[test]
    fn looser_epsilon_keeps_only_the_strong_derivation() {
        // The paper's Query 2 with ε = 0.01: only the live-in-DC derivation
        // remains. (Removing the r2 monomial changes P by
        // 0.16384 − 0.16 = 0.00384 ≤ 0.01.)
        let (dnf, vars) = acquaintance();
        let s = sufficient_provenance(
            &dnf,
            &vars,
            0.01,
            DerivationAlgo::NaiveGreedy,
            ProbMethod::Exact,
        );
        assert_eq!(s.polynomial.len(), 1);
        let kept = &s.polynomial.monomials()[0];
        assert!(kept.contains(v(0)), "the r1 derivation is the one kept");
        assert!(s.error <= 0.01);
        assert!((s.original_probability - 0.16384).abs() < 1e-12);
        assert!((s.probability - 0.16).abs() < 1e-12);
        assert!((s.compression_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_bound_holds_on_random_formulas() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..30 {
            let nvars = rng.random_range(3..8usize);
            let probs: Vec<f64> = (0..nvars).map(|_| rng.random::<f64>()).collect();
            let vars = table(&probs);
            let nmono = rng.random_range(2..8usize);
            let monomials: Vec<Monomial> = (0..nmono)
                .map(|_| {
                    let len = rng.random_range(1..=3usize);
                    Monomial::new(
                        (0..len)
                            .map(|_| v(rng.random_range(0..nvars) as u32))
                            .collect(),
                    )
                })
                .collect();
            let dnf = Dnf::new(monomials);
            let eps = rng.random::<f64>() * 0.2;
            for algo in [DerivationAlgo::NaiveGreedy, DerivationAlgo::ReSuciu] {
                let s = sufficient_provenance(&dnf, &vars, eps, algo, ProbMethod::Exact);
                assert!(
                    s.error <= eps + 1e-9,
                    "trial {trial} {algo:?}: err {} > eps {eps}",
                    s.error
                );
                // λS must be a sub-formula: every kept monomial appears in λ.
                for kept in s.polynomial.monomials() {
                    assert!(dnf.monomials().contains(kept), "trial {trial} {algo:?}");
                }
            }
        }
    }

    #[test]
    fn epsilon_one_allows_dropping_everything() {
        let (dnf, vars) = acquaintance();
        let s = sufficient_provenance(
            &dnf,
            &vars,
            1.0,
            DerivationAlgo::NaiveGreedy,
            ProbMethod::Exact,
        );
        assert!(s.polynomial.is_false());
        assert_eq!(s.compression_ratio, 0.0);
    }

    #[test]
    fn match_of_disjoint_formula_is_exact() {
        // Pairwise-disjoint monomials: the match is everything; Ré–Suciu
        // should return it unchanged for eps=0.
        let vars = table(&[0.5, 0.4, 0.3, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[2, 3])]);
        let s = sufficient_provenance(&dnf, &vars, 0.0, DerivationAlgo::ReSuciu, ProbMethod::Exact);
        assert_eq!(s.polynomial.len(), 2);
        assert!(
            (match_probability(&greedy_match(&dnf, &vars), &vars)
                - exact::probability(&dnf, &vars))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn re_suciu_factors_shared_literals() {
        // x0 shared by all monomials; with generous eps the match (a single
        // monomial) suffices and the result is small.
        let vars = table(&[0.9, 0.5, 0.5, 0.5]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2]), m(&[0, 3])]);
        let s = sufficient_provenance(&dnf, &vars, 0.3, DerivationAlgo::ReSuciu, ProbMethod::Exact);
        assert!(s.polynomial.len() < 3, "some reduction expected");
        assert!(s.error <= 0.3 + 1e-12);
    }

    #[test]
    fn single_monomial_is_returned_as_is() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0, 1])]);
        for algo in [DerivationAlgo::NaiveGreedy, DerivationAlgo::ReSuciu] {
            let s = sufficient_provenance(&dnf, &vars, 0.05, algo, ProbMethod::Exact);
            assert_eq!(s.polynomial, dnf, "{algo:?}");
        }
    }
}
