//! Influence Query (§4.3): the most influential clauses of a derived tuple.
//!
//! Definition 4.1 (after Kanagal–Li–Deshpande): the influence of literal
//! `x` on polynomial `λ` is the partial derivative of the arithmetised
//! formula, `Inf_x(λ) = P[λ|x=1] − P[λ|x=0]`. P3 estimates it by
//! Monte-Carlo (sequential or parallel) or computes it exactly, optionally
//! preprocessing `λ` down to a sufficient provenance first (§6.2's
//! optimisation: most literals have negligible influence, so rank on the
//! compressed polynomial).

use crate::prob_method::ProbMethod;
use crate::query::derivation::{sufficient_provenance, DerivationAlgo};
use p3_prob::{exact, mc, parallel, Dnf, McConfig, VarId, VarTable};

/// How influence values are computed.
///
/// `Eq`/`Hash` support session-level memoization of whole influence
/// rankings (sound for Monte-Carlo because estimates are deterministic per
/// seed). For [`InfluenceMethod::ParallelMc`], a thread count of `0` means
/// "use [`p3_prob::parallel::default_threads`]".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InfluenceMethod {
    /// Exact: two Shannon computations per literal.
    Exact,
    /// Sequential paired Monte-Carlo.
    Mc(McConfig),
    /// Paired Monte-Carlo with literals striped across threads (`0` =
    /// default thread count).
    ParallelMc(McConfig, usize),
}

impl Default for InfluenceMethod {
    fn default() -> Self {
        InfluenceMethod::Mc(McConfig::default())
    }
}

/// Options for an Influence Query.
#[derive(Clone, Debug, Default)]
pub struct InfluenceOptions {
    /// Estimation backend.
    pub method: InfluenceMethod,
    /// Keep only the K most influential entries.
    pub top_k: Option<usize>,
    /// When set, first compress the polynomial to a sufficient provenance
    /// with this error limit (naive greedy, probability backend matching
    /// [`Self::method`]) and rank influence on the compressed polynomial.
    pub preprocess_epsilon: Option<f64>,
    /// When set, only these literals are ranked (e.g. "base tuples of the
    /// `sim` relation only" in the VQA case study).
    pub restrict_to: Option<Vec<VarId>>,
}

/// One ranked literal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InfluenceEntry {
    /// The literal (clause variable).
    pub var: VarId,
    /// Its influence value `Inf_x(λ) ∈ [0, 1]`.
    pub influence: f64,
}

/// Runs an Influence Query over `dnf`, returning entries sorted by
/// descending influence.
pub fn influence_query(dnf: &Dnf, vars: &VarTable, opts: &InfluenceOptions) -> Vec<InfluenceEntry> {
    // Optional sufficient-provenance preprocessing. Probability
    // re-evaluation during compression uses a backend matching the
    // influence backend: exact stays exact, Monte-Carlo stays Monte-Carlo
    // (exact Shannon on a large tangled polynomial would dominate the very
    // cost the preprocessing is meant to save — §6.2).
    let compress_method = match opts.method {
        InfluenceMethod::Exact => ProbMethod::Exact,
        InfluenceMethod::Mc(cfg) => ProbMethod::MonteCarlo(cfg),
        InfluenceMethod::ParallelMc(cfg, threads) => ProbMethod::ParallelMc(cfg, threads),
    };
    let compressed;
    let target: &Dnf = match opts.preprocess_epsilon {
        Some(eps) => {
            compressed =
                sufficient_provenance(dnf, vars, eps, DerivationAlgo::NaiveGreedy, compress_method)
                    .polynomial;
            &compressed
        }
        None => dnf,
    };

    let entries: Vec<InfluenceEntry> = match opts.method {
        InfluenceMethod::Exact => target
            .vars()
            .into_iter()
            .map(|v| InfluenceEntry {
                var: v,
                influence: exact_influence(target, vars, v),
            })
            .collect(),
        InfluenceMethod::Mc(cfg) => mc::influence_all(target, vars, cfg)
            .into_iter()
            .map(|(var, influence)| InfluenceEntry { var, influence })
            .collect(),
        InfluenceMethod::ParallelMc(cfg, threads) => {
            parallel::influence_all(target, vars, cfg, threads)
                .into_iter()
                .map(|(var, influence)| InfluenceEntry { var, influence })
                .collect()
        }
    };

    finalize_entries(entries, opts)
}

/// Applies an Influence Query's post-processing: literal filtering,
/// descending-influence sort (ties by variable id), top-K truncation.
/// Shared with the session-cached influence path in [`crate::session`].
pub(crate) fn finalize_entries(
    mut entries: Vec<InfluenceEntry>,
    opts: &InfluenceOptions,
) -> Vec<InfluenceEntry> {
    if let Some(allowed) = &opts.restrict_to {
        entries.retain(|e| allowed.contains(&e.var));
    }
    entries.sort_by(|a, b| {
        b.influence
            .partial_cmp(&a.influence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.var.cmp(&b.var))
    });
    if let Some(k) = opts.top_k {
        entries.truncate(k);
    }
    entries
}

/// Exact influence: `P[λ|x=1] − P[λ|x=0]` by Shannon expansion.
pub fn exact_influence(dnf: &Dnf, vars: &VarTable, x: VarId) -> f64 {
    let hi = exact::probability(&dnf.restrict(x, true), vars);
    let lo = exact::probability(&dnf.restrict(x, false), vars);
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_prob::Monomial;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| v(i)).collect())
    }

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    /// The acquaintance polynomial with Fig 2 probabilities; vars are
    /// 0=r1, 1=r2, 2=r3, 3=t1, 4=t2, 5=t4, 6=t5, 7=t6.
    fn acquaintance() -> (Dnf, VarTable) {
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        (dnf, vars)
    }

    #[test]
    fn table2_ranking_exact() {
        // Paper Table 2: r3 most influential, then r1, then t6 (our exact
        // values: 0.8192, 0.1808, 0.16384).
        let (dnf, vars) = acquaintance();
        let opts = InfluenceOptions {
            method: InfluenceMethod::Exact,
            top_k: Some(3),
            ..Default::default()
        };
        let top = influence_query(&dnf, &vars, &opts);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].var, v(2));
        assert!((top[0].influence - 0.8192).abs() < 1e-12);
        assert_eq!(top[1].var, v(0));
        assert!((top[1].influence - 0.1808).abs() < 1e-12);
        assert_eq!(top[2].var, v(7));
        assert!((top[2].influence - 0.16384).abs() < 1e-12);
    }

    #[test]
    fn mc_ranking_matches_exact() {
        let (dnf, vars) = acquaintance();
        let exact = influence_query(
            &dnf,
            &vars,
            &InfluenceOptions {
                method: InfluenceMethod::Exact,
                ..Default::default()
            },
        );
        let mc = influence_query(
            &dnf,
            &vars,
            &InfluenceOptions {
                method: InfluenceMethod::Mc(McConfig {
                    samples: 200_000,
                    seed: 2,
                }),
                ..Default::default()
            },
        );
        assert_eq!(exact[0].var, mc[0].var);
        for (e, m) in exact.iter().zip(&mc) {
            assert!((e.influence - m.influence).abs() < 0.01);
        }
    }

    #[test]
    fn restrict_to_filters_literals() {
        let (dnf, vars) = acquaintance();
        let opts = InfluenceOptions {
            method: InfluenceMethod::Exact,
            restrict_to: Some(vec![v(5), v(6)]),
            ..Default::default()
        };
        let out = influence_query(&dnf, &vars, &opts);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.var == v(5) || e.var == v(6)));
    }

    #[test]
    fn preprocessing_keeps_the_top_literal() {
        // §6.2 / Fig 12: with a moderate ε the top literal survives
        // compression.
        let (dnf, vars) = acquaintance();
        let full = influence_query(
            &dnf,
            &vars,
            &InfluenceOptions {
                method: InfluenceMethod::Exact,
                ..Default::default()
            },
        );
        let pre = influence_query(
            &dnf,
            &vars,
            &InfluenceOptions {
                method: InfluenceMethod::Exact,
                preprocess_epsilon: Some(0.01),
                ..Default::default()
            },
        );
        assert_eq!(full[0].var, pre[0].var);
        // Compression dropped the r2 branch, so fewer literals are ranked.
        assert!(pre.len() < full.len());
    }

    #[test]
    fn influence_is_nonnegative_for_monotone_formulas() {
        let (dnf, vars) = acquaintance();
        for e in influence_query(
            &dnf,
            &vars,
            &InfluenceOptions {
                method: InfluenceMethod::Exact,
                ..Default::default()
            },
        ) {
            assert!(e.influence >= 0.0);
        }
    }

    #[test]
    fn counterfactual_literal_has_influence_one() {
        // λ = x0 alone: flipping x0 flips the result.
        let vars = table(&[0.3]);
        let dnf = Dnf::new(vec![m(&[0])]);
        let out = influence_query(
            &dnf,
            &vars,
            &InfluenceOptions {
                method: InfluenceMethod::Exact,
                ..Default::default()
            },
        );
        assert_eq!(out.len(), 1);
        assert!((out[0].influence - 1.0).abs() < 1e-12);
    }
}
