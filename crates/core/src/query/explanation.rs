//! Explanation Query (§4.1): complete derivations of a queried tuple.

use p3_datalog::engine::TupleId;
use p3_prob::{Dnf, Monomial, VarTable};

/// The result of an Explanation Query.
///
/// Produced by [`crate::P3::explain`]; bundles every §4.1 artefact — the
/// provenance polynomial, its success probability, and both human-readable
/// renderings of the derivation graph.
#[derive(Debug)]
pub struct Explanation {
    /// The query string as given.
    pub query: String,
    /// The queried tuple.
    pub tuple: TupleId,
    /// The provenance polynomial `λ(q)`.
    pub polynomial: Dnf,
    /// Number of (acyclic, depth-admissible) derivations — the monomials.
    pub num_derivations: usize,
    /// `P[λ(q)]` under the chosen probability method.
    pub probability: f64,
    /// Indented textual rendering of the derivation tree.
    pub text: String,
    /// Graphviz rendering of the provenance subgraph (Fig 3 style).
    pub dot: String,
}

impl Explanation {
    /// The derivations (monomials) ranked by descending probability — the
    /// paper's "most important derivation" view (Fig 4 displays the top
    /// one). Each entry is `(derivation, P[derivation])`.
    pub fn ranked_derivations(&self, vars: &VarTable) -> Vec<(&Monomial, f64)> {
        let mut out: Vec<(&Monomial, f64)> = self
            .polynomial
            .monomials()
            .iter()
            .map(|m| (m, m.probability(vars)))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        out
    }

    /// The *support set*: every clause (base tuple or rule) that
    /// participates in at least one derivation — the classic
    /// why-provenance view.
    pub fn support_set(&self) -> Vec<p3_datalog::ast::ClauseId> {
        self.polynomial
            .vars()
            .into_iter()
            .map(p3_provenance::vars::clause_of)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::system::P3;

    #[test]
    fn explanation_bundles_all_artefacts() {
        let p3 = P3::from_source(
            r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
        "#,
        )
        .unwrap();
        let exp = p3.explain(r#"know("Steve","Elena")"#).unwrap();
        assert_eq!(exp.num_derivations, 1);
        assert!((exp.probability - 0.8).abs() < 1e-12);
        assert!(exp.text.contains("know(\"Steve\",\"Elena\")"));
        assert!(exp.text.contains("rule r1"));
        assert!(exp.dot.starts_with("digraph"));
        assert_eq!(exp.polynomial.len(), 1);
        assert_eq!(exp.polynomial.monomials()[0].len(), 3, "r1·t1·t2");
    }

    #[test]
    fn explanation_counts_alternative_derivations() {
        let p3 =
            P3::from_source("r1 0.5: q(X) :- p1(X). r2 0.5: q(X) :- p2(X). p1(a). p2(a).").unwrap();
        let exp = p3.explain("q(a)").unwrap();
        assert_eq!(exp.num_derivations, 2);
    }

    #[test]
    fn ranked_derivations_order_by_probability() {
        let p3 =
            P3::from_source("r1 0.9: q(X) :- p1(X). r2 0.1: q(X) :- p2(X). p1(a). p2(a).").unwrap();
        let exp = p3.explain("q(a)").unwrap();
        let ranked = exp.ranked_derivations(p3.vars());
        assert_eq!(ranked.len(), 2);
        assert!((ranked[0].1 - 0.9).abs() < 1e-12, "r1 derivation first");
        assert!((ranked[1].1 - 0.1).abs() < 1e-12);
        assert!(ranked[0].1 >= ranked[1].1);
    }

    #[test]
    fn support_set_lists_participating_clauses() {
        let p3 =
            P3::from_source("r1 0.5: q(X) :- p1(X). r2 0.5: q(X) :- p2(X). p1(a). p2(a). p1(zz).")
                .unwrap();
        let exp = p3.explain("q(a)").unwrap();
        let labels: Vec<String> = exp
            .support_set()
            .into_iter()
            .map(|c| p3.program().clause(c).label.clone())
            .collect();
        // r1, r2, p1(a), p2(a) — but not the irrelevant p1(zz).
        assert_eq!(labels.len(), 4);
        assert!(labels.contains(&"r1".to_string()));
        assert!(
            !labels.contains(&"t3".to_string()),
            "p1(zz) not in support: {labels:?}"
        );
    }
}
