//! The query EXPLAIN plane: where did this query's evaluation cost go?
//!
//! [`QueryExplain`] pairs the engine's per-rule cost attribution (an
//! [`ExplainPlan`] from the evaluation that answered the query) with the
//! provenance-side shape of the answer (DNF monomials × literals, cache
//! deltas) and the measured [`cost_recommendations`] the numbers justify.
//! It renders three ways: a rustc-style text plan for humans
//! ([`QueryExplain::render_text`]), folded `frame;frame count` lines for
//! flamegraph tooling ([`QueryExplain::to_folded`]), and JSON for the
//! service plane ([`QueryExplain::to_json_string`]).
//!
//! Explaining is **observation-only**: it runs the query through exactly
//! the session paths an unexplained query takes (same caches, same DNF
//! interning, same probabilities downstream) and reads counters the
//! engine maintains anyway.

use p3_datalog::diag::Diagnostic;
use p3_datalog::explain::ExplainPlan;
use p3_lint::cost::cost_recommendations;
use p3_prob::DnfShape;

/// One query's cost story: engine plan + answer shape + recommendations.
///
/// Built by `QuerySession::explain`. The cache-delta fields are measured
/// around this explain call; on a warm session they show the memo hits
/// that made the query cheap (the plan then describes the original —
/// cached — evaluation, not new work).
#[derive(Clone, Debug)]
pub struct QueryExplain {
    /// The explained ground atom.
    pub query: String,
    /// Per-rule cost attribution of the evaluation that answers this
    /// query: the naive whole-program run, or the query's demand run
    /// (projected onto source clauses). `plan.mode` says which.
    pub plan: ExplainPlan,
    /// Shape of the answer's provenance polynomial.
    pub shape: DnfShape,
    /// Session memo-table hits during this explain call.
    pub session_hits: u64,
    /// Session memo-table misses during this explain call.
    pub session_misses: u64,
    /// Hash-cons intern hits in the shared `DnfStore`.
    pub store_intern_hits: u64,
    /// Hash-cons intern misses in the shared `DnfStore`.
    pub store_intern_misses: u64,
    /// Memoized or/and/restrict hits in the shared store.
    pub store_op_hits: u64,
    /// Memoized or/and/restrict misses in the shared store.
    pub store_op_misses: u64,
    /// Clean-tuple extraction-memo hits (process-global counter).
    pub extract_memo_hits: u64,
    /// Clean-tuple extraction-memo misses (process-global counter).
    pub extract_memo_misses: u64,
    /// Measured lint recommendations (P3603/P3604) the plan justifies.
    pub recommendations: Vec<Diagnostic>,
}

impl QueryExplain {
    /// Derives the recommendation list from `plan` (used by the builder;
    /// exposed so alternative front-ends can re-derive after filtering).
    pub fn recommend(plan: &ExplainPlan) -> Vec<Diagnostic> {
        cost_recommendations(plan)
    }

    /// The evaluation mode label (`naive` or `demand`).
    pub fn mode(&self) -> &'static str {
        self.plan.mode
    }

    /// Renders the plan rustc-style: a header, a rule table ranked by
    /// measured cost, the fixpoint/shape summaries, then any
    /// recommendations as rendered diagnostics.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let plan = &self.plan;
        out.push_str(&format!("explain: {} [{} mode]\n", self.query, plan.mode));
        out.push_str(&format!(
            "  evaluation: {} iterations over {} strata, {} tuples, {} rule firings, total cost {}\n",
            plan.stats.iterations,
            plan.strata.len(),
            plan.stats.tuples,
            plan.stats.firings,
            plan.total_cost(),
        ));
        if !plan.deltas.is_empty() {
            let deltas: Vec<String> = plan.deltas.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!("  delta sizes: [{}]\n", deltas.join(", ")));
        }
        if plan.rules.is_empty() {
            out.push_str("  rules: (per-rule collection disabled)\n");
        } else {
            out.push_str(
                "  rank  cost     firings  tuples   candidates  iters  probes      rule\n",
            );
            let total = plan.total_cost().max(1);
            for (i, r) in plan.rules.iter().enumerate() {
                let probes = format!("{}i/{}s", r.indexed_probes, r.scanned_probes);
                let share = 100.0 * r.cost() as f64 / total as f64;
                out.push_str(&format!(
                    "  {:>4}  {:<7} {:<8} {:<8} {:<11} {:<6} {:<11} {} :- … ({:.1}%{}{})\n",
                    i + 1,
                    r.cost(),
                    r.firings,
                    r.new_tuples,
                    r.candidates,
                    r.iterations,
                    probes,
                    r.label,
                    share,
                    if r.recursive { ", recursive" } else { "" },
                    if r.variants > 1 {
                        format!(", {} adorned variants", r.variants)
                    } else {
                        String::new()
                    },
                ));
            }
        }
        if let Some(m) = &plan.magic {
            out.push_str(&format!(
                "  magic overhead: {} transform rules, {} firings, {} tuples, cost {}\n",
                m.rules,
                m.firings,
                m.new_tuples,
                m.cost(),
            ));
        }
        out.push_str(&format!(
            "  provenance: {} monomials x {} literals (max width {}, {} distinct vars)\n",
            self.shape.monomials,
            self.shape.literals,
            self.shape.max_width,
            self.shape.distinct_vars,
        ));
        out.push_str(&format!(
            "  caches: session {}/{}  intern {}/{}  store-ops {}/{}  extract-memo {}/{} (hits/misses)\n",
            self.session_hits,
            self.session_misses,
            self.store_intern_hits,
            self.store_intern_misses,
            self.store_op_hits,
            self.store_op_misses,
            self.extract_memo_hits,
            self.extract_memo_misses,
        ));
        for d in &self.recommendations {
            out.push('\n');
            out.push_str(&d.render(None, None));
        }
        out
    }

    /// Folded-stack lines (`frame;frame;frame cost`) for flamegraph
    /// tooling: one line per rule, rooted at the query's mode, weighted
    /// by measured cost. Magic-transform overhead gets its own frame.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for r in &self.plan.rules {
            if r.cost() > 0 {
                out.push_str(&format!(
                    "p3;{};{} {}\n",
                    self.plan.mode,
                    r.label.replace([';', ' '], "_"),
                    r.cost()
                ));
            }
        }
        if let Some(m) = &self.plan.magic {
            if m.cost() > 0 {
                out.push_str(&format!("p3;{};(magic) {}\n", self.plan.mode, m.cost()));
            }
        }
        out
    }

    /// Serialises the full explain result as one JSON object (the wire
    /// form of the `explain` service op and `p3 explain --json`).
    pub fn to_json_string(&self) -> String {
        let plan = &self.plan;
        let mut s = String::with_capacity(512);
        s.push_str("{\"query\":\"");
        json_escape(&self.query, &mut s);
        s.push_str(&format!(
            "\",\"mode\":\"{}\",\"total_cost\":{},\"iterations\":{},\"tuples\":{},\"firings\":{}",
            plan.mode,
            plan.total_cost(),
            plan.stats.iterations,
            plan.stats.tuples,
            plan.stats.firings,
        ));
        s.push_str(",\"deltas\":[");
        for (i, d) in plan.deltas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_string());
        }
        s.push_str("],\"strata\":[");
        for (i, st) in plan.strata.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"iterations\":{},\"firings\":{},\"tuples\":{}}}",
                st.iterations, st.firings, st.derived_tuples
            ));
        }
        s.push_str("],\"rules\":[");
        for (i, r) in plan.rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rule\":\"");
            json_escape(&r.label, &mut s);
            s.push_str("\",\"head\":\"");
            json_escape(&r.head, &mut s);
            s.push_str(&format!(
                "\",\"recursive\":{},\"cost\":{},\"firings\":{},\"new_tuples\":{},\
                 \"candidates\":{},\"iterations\":{},\"indexed_probes\":{},\
                 \"scanned_probes\":{},\"variants\":{}}}",
                r.recursive,
                r.cost(),
                r.firings,
                r.new_tuples,
                r.candidates,
                r.iterations,
                r.indexed_probes,
                r.scanned_probes,
                r.variants,
            ));
        }
        s.push(']');
        if let Some(m) = &plan.magic {
            s.push_str(&format!(
                ",\"magic\":{{\"rules\":{},\"firings\":{},\"new_tuples\":{},\"cost\":{}}}",
                m.rules,
                m.firings,
                m.new_tuples,
                m.cost()
            ));
        }
        s.push_str(&format!(
            ",\"dnf\":{{\"monomials\":{},\"literals\":{},\"max_width\":{},\"distinct_vars\":{}}}",
            self.shape.monomials,
            self.shape.literals,
            self.shape.max_width,
            self.shape.distinct_vars
        ));
        s.push_str(&format!(
            ",\"caches\":{{\"session_hits\":{},\"session_misses\":{},\"intern_hits\":{},\
             \"intern_misses\":{},\"store_op_hits\":{},\"store_op_misses\":{},\
             \"extract_memo_hits\":{},\"extract_memo_misses\":{}}}",
            self.session_hits,
            self.session_misses,
            self.store_intern_hits,
            self.store_intern_misses,
            self.store_op_hits,
            self.store_op_misses,
            self.extract_memo_hits,
            self.extract_memo_misses,
        ));
        s.push_str(",\"recommendations\":[");
        for (i, d) in self.recommendations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str("]}");
        s
    }
}

fn json_escape(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}
