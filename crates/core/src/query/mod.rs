//! The four provenance query types (Table 1 of the paper).

pub mod derivation;
pub mod explain;
pub mod explanation;
pub mod influence;
pub mod modification;
