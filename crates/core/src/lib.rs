//! # p3-core
//!
//! The P3 query suite (§4 of the paper): the [`P3`] system facade plus the
//! four provenance query types of Table 1.
//!
//! | Query | Operation | Module |
//! |-------|-----------|--------|
//! | Explanation | derivation graph + polynomial + success probability | [`query::explanation`] |
//! | Derivation | smallest sufficient provenance within an error ε | [`query::derivation`] |
//! | Influence | (top-K) most influential clauses | [`query::influence`] |
//! | Modification | reach a target probability at minimal cost | [`query::modification`] |
//!
//! ```
//! use p3_core::P3;
//!
//! let p3 = P3::from_source(r#"
//!     r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
//!     t1 1.0: live("Steve","DC").
//!     t2 1.0: live("Elena","DC").
//! "#).unwrap();
//! let exp = p3.explain(r#"know("Steve","Elena")"#).unwrap();
//! assert!((exp.probability - 0.8).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock_cache;
pub mod error;
pub mod eval_mode;
pub mod persist;
pub mod prob_method;
pub mod query;
pub mod session;
pub mod system;

pub use error::P3Error;
pub use eval_mode::{EvalMode, ModeDecision};
pub use p3_analyze::{rank_correlation, AnalyzePlan, PredictedRuleCost};
pub use persist::WarmRestore;
pub use prob_method::ProbMethod;
pub use query::derivation::{
    sufficient_provenance, sufficient_provenance_with, DerivationAlgo, SufficientProvenance,
};
pub use query::explain::QueryExplain;
pub use query::explanation::Explanation;
pub use query::influence::{influence_query, InfluenceEntry, InfluenceMethod, InfluenceOptions};
pub use query::modification::{
    modification_query, modification_query_with, EvalMethod, ModificationEval, ModificationOptions,
    ModificationPlan, ModificationStep, Strategy,
};
pub use session::{
    LoadOptions, ProfileStage, ProfileTarget, QueryProfile, QuerySession, SessionOptions,
    SessionStats,
};
pub use system::P3;
