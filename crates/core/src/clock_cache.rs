//! A bounded map with second-chance ("clock") eviction.
//!
//! [`ClockMap`] backs the [`crate::QuerySession`] memo tables. Unbounded by
//! default (a session over a fixed workload converges to a finite set of
//! entries), it accepts an optional `max_entries` cap for long-lived
//! sessions — e.g. a query server that must not grow without bound.
//!
//! The eviction policy is the classic clock approximation of LRU: every
//! entry carries a *reference bit* set on lookup (an `AtomicBool`, so hits
//! only need a read lock on the surrounding `RwLock`); when an insert would
//! exceed the cap, a hand sweeps insertion order, giving each referenced
//! entry a second chance (clear the bit, move on) and evicting the first
//! unreferenced one. One sweep visits each entry at most twice, so eviction
//! is O(n) worst-case but amortised O(1) for scan-resistant workloads.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};

struct Entry<V> {
    value: V,
    /// Set by [`ClockMap::get`]; cleared when the hand passes.
    referenced: AtomicBool,
}

/// A hash map with an optional entry cap and second-chance eviction.
pub(crate) struct ClockMap<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Keys in insertion order; the front is where the clock hand points.
    order: VecDeque<K>,
    cap: Option<usize>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> ClockMap<K, V> {
    /// An empty map evicting beyond `cap` entries (`None` = unbounded).
    pub(crate) fn with_cap(cap: Option<usize>) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
            evictions: 0,
        }
    }

    /// Looks up `key`, marking the entry as recently used. Only needs `&self`
    /// so callers can serve hits under a read lock.
    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|e| {
            e.referenced.store(true, Ordering::Relaxed);
            &e.value
        })
    }

    /// Inserts `key → value`, evicting one entry first if the map is at
    /// capacity (and `key` is new).
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if let Some(existing) = self.map.get_mut(&key) {
            existing.value = value;
            existing.referenced.store(true, Ordering::Relaxed);
            return;
        }
        if let Some(cap) = self.cap {
            // A cap of 0 would make every insert evict itself; treat it as 1.
            let cap = cap.max(1);
            while self.map.len() >= cap {
                self.evict_one();
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(
            key,
            Entry {
                value,
                referenced: AtomicBool::new(false),
            },
        );
    }

    /// Advances the clock hand until one entry is evicted.
    fn evict_one(&mut self) {
        while let Some(key) = self.order.pop_front() {
            let Some(entry) = self.map.get(&key) else {
                continue; // stale order slot from a prior eviction
            };
            if entry.referenced.swap(false, Ordering::Relaxed) {
                // Second chance: recently used, rotate to the back.
                self.order.push_back(key);
            } else {
                self.map.remove(&key);
                self.evictions += 1;
                p3_obs::counter!(
                    "p3_core_cache_evictions_total",
                    "Entries evicted from bounded session memo tables (clock sweep)"
                )
                .inc();
                return;
            }
        }
    }

    /// Entries currently resident.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Entries evicted over the map's lifetime.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates resident entries in no particular order, without touching
    /// reference bits (iteration is bookkeeping — e.g. store compaction
    /// exporting the probability memo — not workload access, so it must
    /// not grant every entry a second chance).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, e)| (k, &e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_map_never_evicts() {
        let mut m = ClockMap::with_cap(None);
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.get(&999), Some(&1998));
    }

    #[test]
    fn cap_is_enforced_and_counted() {
        let mut m = ClockMap::with_cap(Some(4));
        for i in 0..10 {
            m.insert(i, i);
        }
        assert_eq!(m.len(), 4);
        assert_eq!(m.evictions(), 6);
    }

    #[test]
    fn recently_used_entries_survive_a_sweep() {
        let mut m = ClockMap::with_cap(Some(3));
        m.insert('a', 1);
        m.insert('b', 2);
        m.insert('c', 3);
        // Touch 'a': its reference bit grants a second chance, so the
        // unreferenced 'b' goes first.
        assert_eq!(m.get(&'a'), Some(&1));
        m.insert('d', 4);
        assert!(m.get(&'a').is_some());
        assert!(m.get(&'b').is_none());
        assert!(m.get(&'c').is_some());
        assert!(m.get(&'d').is_some());
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn reinserting_a_key_updates_in_place() {
        let mut m = ClockMap::with_cap(Some(2));
        m.insert(1, 10);
        m.insert(1, 11);
        m.insert(2, 20);
        assert_eq!(m.len(), 2);
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.get(&1), Some(&11));
    }

    #[test]
    fn cap_zero_behaves_like_cap_one() {
        let mut m = ClockMap::with_cap(Some(0));
        m.insert(1, 1);
        m.insert(2, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&2), Some(&2));
    }
}
