//! The P3 system facade: evaluate lazily with provenance, query many times.
//!
//! [`P3`] is split into cheap-to-clone `Arc` handles over an immutable
//! program plus two lazily-forced evaluation cores:
//!
//! * the **full core** — one naive bottom-up evaluation of the whole
//!   program (database, provenance graph, extraction [`Analysis`]), forced
//!   on first use by any whole-model consumer ([`P3::database`],
//!   [`P3::graph`], [`P3::explain`], …) and then shared forever;
//! * the **demand cores** — one magic-transformed, query-directed
//!   evaluation per queried atom (see [`p3_provenance::demand`]), cached by
//!   `(predicate, arguments)` and used by sessions running in
//!   [`EvalMode::Demand`].
//!
//! Both cores are probability-independent, so they survive what-if updates
//! ([`P3::with_probabilities`]) intact, as do the shared structural caches
//! (the hash-consed [`DnfStore`]). Everything behind the `Arc`s is
//! immutable or internally synchronised, so `P3` is `Send + Sync`: clone it
//! into threads, or use [`P3::session`] / [`P3::batch_probabilities`] for
//! memoized concurrent querying.

use crate::error::P3Error;
use crate::eval_mode::EvalMode;
use crate::prob_method::ProbMethod;
use crate::query::explanation::Explanation;
use crate::session::{QuerySession, SessionOptions};
use p3_datalog::ast::Const;
use p3_datalog::engine::{Database, TupleId};
use p3_datalog::explain::ExplainPlan;
use p3_datalog::program::Program;
use p3_datalog::symbol::Symbol;
use p3_datalog::transform::TransformError;
use p3_datalog::worlds;
use p3_prob::store::DnfStore;
use p3_prob::{Dnf, VarTable};
use p3_provenance::extract::{Analysis, ExtractOptions, Extractor};
use p3_provenance::graph::ProvGraph;
use p3_provenance::{capture, clause_vars, dot, explain, DemandStats};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The naive whole-program evaluation: database, provenance graph and
/// extraction analysis, forced at most once per [`P3`] lineage.
pub(crate) struct FullCore {
    pub(crate) db: Database,
    pub(crate) graph: ProvGraph,
    pub(crate) analysis: Analysis,
    /// Per-rule cost attribution for the one naive evaluation.
    pub(crate) plan: ExplainPlan,
}

/// One query-directed evaluation: the demanded fragment of the model with
/// provenance already projected back onto the source program.
pub(crate) struct DemandCore {
    pub(crate) db: Database,
    pub(crate) graph: ProvGraph,
    pub(crate) analysis: Analysis,
    /// The queried tuple, when derivable.
    pub(crate) tuple: Option<TupleId>,
    /// Transform + engine counters for this evaluation.
    pub(crate) stats: DemandStats,
    /// Per-rule cost attribution, projected onto source clauses.
    pub(crate) plan: ExplainPlan,
}

/// Demand evaluations are cached per ground query atom.
type DemandKey = (Symbol, Box<[Const]>);

/// A loaded PLP program with lazily-forced provenance, ready for querying.
///
/// Cloning is cheap (a handful of `Arc` bumps) and clones share the
/// evaluation cores and structural caches; see the module docs.
#[derive(Clone)]
pub struct P3 {
    pub(crate) program: Arc<Program>,
    pub(crate) vars: Arc<VarTable>,
    /// Hash-consed formula store; probability-independent.
    pub(crate) store: Arc<DnfStore>,
    /// Lazily-forced naive evaluation; probability-independent, shared
    /// across what-if copies.
    full: Arc<OnceLock<FullCore>>,
    /// Per-query demand evaluations; probability-independent, shared
    /// across what-if copies.
    demand: Arc<RwLock<HashMap<DemandKey, Arc<DemandCore>>>>,
}

impl P3 {
    /// Parses and validates `src`; evaluation is deferred to first use.
    pub fn from_source(src: &str) -> Result<Self, P3Error> {
        Self::from_program(Program::parse(src)?)
    }

    /// Wraps an already-validated program; evaluation is deferred to first
    /// use (whole-model accessors force one naive evaluation, demand-mode
    /// sessions evaluate per query).
    ///
    /// Programs using stratified negation are rejected: the engine can
    /// evaluate them, but the P3 provenance model (monotone DNF polynomials
    /// over clause variables) is only defined for negation-free programs —
    /// supporting negation is the paper's stated future work.
    pub fn from_program(program: Program) -> Result<Self, P3Error> {
        if program.has_negation() {
            return Err(P3Error::UnsupportedNegation);
        }
        let vars = clause_vars(&program);
        Ok(Self {
            program: Arc::new(program),
            vars: Arc::new(vars),
            store: Arc::new(DnfStore::new()),
            full: Arc::new(OnceLock::new()),
            demand: Arc::new(RwLock::new(HashMap::new())),
        })
    }

    /// Forces (or retrieves) the naive whole-program evaluation.
    pub(crate) fn full(&self) -> &FullCore {
        self.full.get_or_init(|| {
            let (db, graph, plan) = capture::evaluate_with_provenance_plan(&self.program);
            let analysis = Analysis::new(&graph);
            FullCore {
                db,
                graph,
                analysis,
                plan,
            }
        })
    }

    /// Forces (or retrieves) the demand evaluation for one ground query.
    pub(crate) fn demand_core(
        &self,
        pred: Symbol,
        args: &[Const],
    ) -> Result<Arc<DemandCore>, P3Error> {
        let key: DemandKey = (pred, args.to_vec().into_boxed_slice());
        if let Some(core) = self.demand.read().unwrap().get(&key) {
            return Ok(Arc::clone(core));
        }
        let eval = p3_provenance::evaluate_query_with_provenance(&self.program, pred, args)
            .map_err(|e| match e {
                TransformError::Negation => P3Error::UnsupportedNegation,
                other => P3Error::BadQuery(other.to_string()),
            })?;
        let analysis = Analysis::new(&eval.graph);
        let tuple = eval.db.lookup(pred, args);
        let core = Arc::new(DemandCore {
            db: eval.db,
            graph: eval.graph,
            analysis,
            tuple,
            stats: eval.stats,
            plan: eval.plan,
        });
        // Two threads may race to evaluate the same query; the first insert
        // wins and both observe one core.
        Ok(Arc::clone(
            self.demand.write().unwrap().entry(key).or_insert(core),
        ))
    }

    /// How many distinct queries have been demand-evaluated on this system.
    pub fn demand_evaluations(&self) -> usize {
        self.demand.read().unwrap().len()
    }

    /// Transform + engine counters for an already demand-evaluated query
    /// (`None` when the query has not been demand-evaluated yet).
    pub fn demand_stats(&self, pred: Symbol, args: &[Const]) -> Option<DemandStats> {
        let key: DemandKey = (pred, args.to_vec().into_boxed_slice());
        self.demand.read().unwrap().get(&key).map(|c| c.stats)
    }

    /// Whether the naive whole-program evaluation has been forced yet.
    pub fn fully_evaluated(&self) -> bool {
        self.full.get().is_some()
    }

    /// Snapshots the [`ExplainPlan`] of every evaluation forced so far:
    /// the naive full core (if forced) followed by the demand cores.
    /// Evaluation is never forced here — an unqueried system returns an
    /// empty vector.
    pub fn explain_plans(&self) -> Vec<ExplainPlan> {
        let mut out = Vec::new();
        if let Some(full) = self.full.get() {
            out.push(full.plan.clone());
        }
        for core in self.demand.read().unwrap().values() {
            out.push(core.plan.clone());
        }
        out
    }

    /// Total measured rule cost (candidates + firings + new tuples)
    /// across every forced evaluation. Monotone over a system's lifetime,
    /// so deltas around a request attribute evaluation cost to it: cold
    /// evaluations move this counter, memo hits don't.
    pub fn rule_cost_total(&self) -> u64 {
        let mut total = 0;
        if let Some(full) = self.full.get() {
            total += full.plan.total_cost();
        }
        for core in self.demand.read().unwrap().values() {
            total += core.plan.total_cost();
        }
        total
    }

    /// The `n` costliest source rules aggregated across every forced
    /// evaluation, as `(label, cost)` pairs sorted by descending cost
    /// (ties broken by label).
    pub fn top_rules(&self, n: usize) -> Vec<(String, u64)> {
        let mut by_label: HashMap<String, u64> = HashMap::new();
        let mut add = |plan: &ExplainPlan| {
            for rule in &plan.rules {
                *by_label.entry(rule.label.clone()).or_insert(0) += rule.cost();
            }
        };
        if let Some(full) = self.full.get() {
            add(&full.plan);
        }
        for core in self.demand.read().unwrap().values() {
            add(&core.plan);
        }
        let mut out: Vec<(String, u64)> = by_label.into_iter().filter(|&(_, c)| c > 0).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(n);
        out
    }

    /// Opens a query session: a cheap handle with memo tables for
    /// extraction results, probabilities and whole query answers, all keyed
    /// through the shared [`DnfStore`]. Sessions can be cloned into threads
    /// (clones share their caches) and never need invalidation — the core
    /// they cache over is immutable.
    pub fn session(&self) -> QuerySession {
        QuerySession::new(self.clone())
    }

    /// Like [`P3::session`], but with explicit [`SessionOptions`] — e.g. a
    /// `max_entries` cap so a long-lived session's memo tables stay
    /// bounded, or an explicit [`EvalMode`] (the default, `auto`, picks
    /// demand evaluation for recursive programs).
    pub fn session_with(&self, opts: SessionOptions) -> QuerySession {
        QuerySession::with_options(self.clone(), opts)
    }

    /// Answers many probability queries concurrently using scoped worker
    /// threads over one shared session. Results are in query order; each
    /// query fails or succeeds independently.
    ///
    /// `threads = 0` means "auto" — the `P3_THREADS` environment variable
    /// if set (itself honouring the same `0 = auto` convention; non-numeric
    /// values are rejected), else the available cores capped at 16. See
    /// [`p3_prob::parallel::default_threads`].
    pub fn batch_probabilities(
        &self,
        queries: &[&str],
        method: ProbMethod,
        threads: usize,
    ) -> Vec<Result<f64, P3Error>> {
        self.session().batch_probabilities(queries, method, threads)
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The evaluated database (all derivable tuples). Forces the full
    /// naive evaluation.
    pub fn database(&self) -> &Database {
        &self.full().db
    }

    /// The captured provenance graph. Forces the full naive evaluation.
    pub fn graph(&self) -> &ProvGraph {
        &self.full().graph
    }

    /// The clause-variable table (one Boolean variable per clause).
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Resolves a ground-atom query string (e.g. `know("Ben","Elena")`) to
    /// the tuple id it denotes in the full database.
    pub fn tuple(&self, query: &str) -> Result<TupleId, P3Error> {
        let (pred, args) = worlds::parse_ground_query(&self.program, query)?;
        self.tuple_of(pred, &args)
            .ok_or_else(|| P3Error::NotDerivable(query.to_string()))
    }

    /// Resolves a predicate + constant arguments to a full-database tuple
    /// id.
    pub fn tuple_of(&self, pred: Symbol, args: &[Const]) -> Option<TupleId> {
        self.full().db.lookup(pred, args)
    }

    /// Extracts the provenance polynomial of a queried tuple (unbounded
    /// depth; use [`Self::provenance_with`] for hop limits).
    pub fn provenance(&self, query: &str) -> Result<Dnf, P3Error> {
        self.provenance_with(query, ExtractOptions::unbounded())
    }

    /// Extracts the provenance polynomial with explicit extraction options.
    pub fn provenance_with(&self, query: &str, opts: ExtractOptions) -> Result<Dnf, P3Error> {
        let tuple = self.tuple(query)?;
        Ok(self.extractor().polynomial(tuple, opts))
    }

    /// Builds an extractor sharing this system's [`Analysis`], so repeated
    /// polynomial extraction — across extractors, sessions and threads —
    /// hits the same memo caches. Forces the full naive evaluation.
    pub fn extractor(&self) -> Extractor<'_> {
        let full = self.full();
        Extractor::with_analysis(&full.graph, &full.analysis)
    }

    /// The shared hash-consed formula store.
    pub fn store(&self) -> &DnfStore {
        &self.store
    }

    /// The shared extraction analysis (cycle structure + memo caches).
    /// Forces the full naive evaluation.
    pub fn analysis(&self) -> &Analysis {
        &self.full().analysis
    }

    /// The evaluation mode [`EvalMode::Auto`] resolves to for this program.
    pub fn auto_eval_mode(&self) -> EvalMode {
        EvalMode::Auto.resolve(&self.program)
    }

    /// The success probability of a queried tuple, using `method`.
    pub fn probability(&self, query: &str, method: ProbMethod) -> Result<f64, P3Error> {
        let dnf = self.provenance(query)?;
        Ok(method.probability(&dnf, &self.vars))
    }

    /// Runs an **Explanation Query** (§4.1): the complete derivations of
    /// the queried tuple plus its success probability.
    ///
    /// Uses exact probability (the polynomials users explain are small); use
    /// [`Self::explain_with`] to choose another method or a hop limit.
    pub fn explain(&self, query: &str) -> Result<Explanation, P3Error> {
        self.explain_with(query, ProbMethod::Exact, ExtractOptions::unbounded())
    }

    /// Explanation query with explicit probability method and extraction
    /// options.
    pub fn explain_with(
        &self,
        query: &str,
        method: ProbMethod,
        opts: ExtractOptions,
    ) -> Result<Explanation, P3Error> {
        let tuple = self.tuple(query)?;
        let polynomial = self.extractor().polynomial(tuple, opts);
        let probability = method.probability(&polynomial, &self.vars);
        let full = self.full();
        let text = explain::explain(&full.graph, &full.db, &self.program, tuple, opts.max_depth);
        let dot = dot::to_dot(&full.graph, &full.db, &self.program, tuple);
        Ok(Explanation {
            query: query.to_string(),
            tuple,
            num_derivations: polynomial.len(),
            polynomial,
            probability,
            text,
            dot,
        })
    }

    /// Renders the polynomial with clause labels (debugging aid).
    pub fn render_polynomial(&self, dnf: &Dnf) -> String {
        format!("{}", dnf.display(&self.vars))
    }

    /// What-if analysis: returns a copy of this system with some clause
    /// probabilities replaced, **without re-evaluating the program**.
    ///
    /// Sound because derivability (and hence the provenance graph) does not
    /// depend on probabilities — only the variable table changes. This is
    /// how a Modification Query's plan is applied cheaply; compare with
    /// re-parsing and re-running the modified program, which produces the
    /// same probabilities at fixpoint cost.
    pub fn with_probabilities(&self, changes: &[(p3_prob::VarId, f64)]) -> Result<Self, P3Error> {
        let mut program = (*self.program).clone();
        let mut vars = (*self.vars).clone();
        for &(var, prob) in changes {
            program = program.with_probability(p3_provenance::vars::clause_of(var), prob)?;
            vars.set_prob(var, prob);
        }
        // The evaluation cores and formula store are all
        // probability-independent, so the copy shares them.
        Ok(Self {
            program: Arc::new(program),
            vars: Arc::new(vars),
            store: Arc::clone(&self.store),
            full: Arc::clone(&self.full),
            demand: Arc::clone(&self.demand),
        })
    }

    /// Applies a [`crate::ModificationPlan`]'s steps as a what-if update.
    pub fn apply_plan(&self, plan: &crate::ModificationPlan) -> Result<Self, P3Error> {
        let changes: Vec<(p3_prob::VarId, f64)> =
            plan.steps.iter().map(|s| (s.var, s.to)).collect();
        self.with_probabilities(&changes)
    }

    /// The success probability of **every** tuple of a relation, sorted by
    /// descending probability — the "set of answers with confidence
    /// scores" view the VQA case study ranks over (§5.1).
    ///
    /// Returns `(tuple, rendered atom, probability)` triples. Extraction is
    /// shared across tuples via one [`Extractor`]. Forces the full naive
    /// evaluation (the query names a whole relation, not one atom).
    pub fn relation_probabilities(
        &self,
        pred_name: &str,
        method: ProbMethod,
        opts: ExtractOptions,
    ) -> Vec<(TupleId, String, f64)> {
        let Some(pred) = self.program.symbols().get(pred_name) else {
            return Vec::new();
        };
        let full = self.full();
        let Some(rel) = full.db.relation(pred) else {
            return Vec::new();
        };
        let extractor = self.extractor();
        let syms = self.program.symbols();
        let mut out: Vec<(TupleId, String, f64)> = rel
            .tuples()
            .iter()
            .map(|&t| {
                let dnf = extractor.polynomial(t, opts);
                let p = method.probability(&dnf, &self.vars);
                (t, format!("{}", full.db.display_tuple(t, syms)), p)
            })
            .collect();
        out.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACQ: &str = r#"
        r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
        r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
        r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
        t1 1.0: live("Steve","DC").
        t2 1.0: live("Elena","DC").
        t3 1.0: live("Mary","NYC").
        t4 0.4: like("Steve","Veggies").
        t5 0.6: like("Elena","Veggies").
        t6 1.0: know("Ben","Steve").
    "#;

    #[test]
    fn probability_of_the_running_example() {
        let p3 = P3::from_source(ACQ).unwrap();
        let p = p3
            .probability(r#"know("Ben","Elena")"#, ProbMethod::Exact)
            .unwrap();
        assert!((p - 0.16384).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn evaluation_is_lazy_and_forced_once() {
        let p3 = P3::from_source(ACQ).unwrap();
        assert!(!p3.fully_evaluated(), "loading must not evaluate");
        let copy = p3.clone();
        let _ = p3.database();
        assert!(p3.fully_evaluated());
        assert!(copy.fully_evaluated(), "clones share the forced core");
        // Demand evaluations are independent of the full core.
        assert_eq!(p3.demand_evaluations(), 0);
        let (pred, args) =
            worlds::parse_ground_query(p3.program(), r#"know("Ben","Elena")"#).unwrap();
        let core = p3.demand_core(pred, &args).unwrap();
        assert!(core.tuple.is_some());
        assert_eq!(p3.demand_evaluations(), 1);
        // Repeating the query hits the cache.
        let again = p3.demand_core(pred, &args).unwrap();
        assert!(Arc::ptr_eq(&core, &again));
        assert_eq!(copy.demand_evaluations(), 1, "cache is shared");
    }

    #[test]
    fn explain_plans_accumulate_per_forced_evaluation() {
        let p3 = P3::from_source(ACQ).unwrap();
        assert!(p3.explain_plans().is_empty(), "nothing forced yet");
        assert_eq!(p3.rule_cost_total(), 0);
        let _ = p3.database();
        let plans = p3.explain_plans();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].mode, "naive");
        let naive_cost = p3.rule_cost_total();
        assert!(naive_cost > 0);
        let (pred, args) =
            worlds::parse_ground_query(p3.program(), r#"know("Ben","Elena")"#).unwrap();
        p3.demand_core(pred, &args).unwrap();
        assert_eq!(p3.explain_plans().len(), 2);
        assert!(p3.rule_cost_total() > naive_cost);
        // The recursive closure rule r3 does the joins; it must appear in
        // the aggregated top rules.
        let top = p3.top_rules(3);
        assert!(top.iter().any(|(l, _)| l == "r3"), "{top:?}");
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn unknown_tuple_is_reported() {
        let p3 = P3::from_source(ACQ).unwrap();
        let err = p3
            .probability(r#"know("Mary","Elena")"#, ProbMethod::Exact)
            .unwrap_err();
        assert!(matches!(err, P3Error::NotDerivable(_)), "{err}");
    }

    #[test]
    fn malformed_query_is_reported() {
        let p3 = P3::from_source(ACQ).unwrap();
        let err = p3.probability("know(", ProbMethod::Exact).unwrap_err();
        assert!(matches!(err, P3Error::BadQuery(_)), "{err}");
    }

    #[test]
    fn polynomial_renders_with_labels() {
        let p3 = P3::from_source(ACQ).unwrap();
        let dnf = p3.provenance(r#"know("Ben","Elena")"#).unwrap();
        let rendered = p3.render_polynomial(&dnf);
        assert!(rendered.contains("r3"), "{rendered}");
        assert!(rendered.contains(" + "), "two derivations: {rendered}");
    }

    #[test]
    fn relation_probabilities_rank_all_tuples() {
        let p3 = P3::from_source(ACQ).unwrap();
        let ranked =
            p3.relation_probabilities("know", ProbMethod::Exact, ExtractOptions::unbounded());
        assert!(ranked.len() >= 3, "{ranked:?}");
        // Sorted descending; know(Ben,Steve) is a certain base tuple.
        assert!(ranked.windows(2).all(|w| w[0].2 >= w[1].2));
        assert_eq!(ranked[0].1, "know(\"Ben\",\"Steve\")");
        assert!((ranked[0].2 - 1.0).abs() < 1e-12);
        // Unknown relations yield empty.
        assert!(p3
            .relation_probabilities("nothing", ProbMethod::Exact, ExtractOptions::unbounded())
            .is_empty());
    }

    #[test]
    fn what_if_update_matches_full_reevaluation() {
        let p3 = P3::from_source(ACQ).unwrap();
        let r3 = p3.program().clause_by_label("r3").unwrap();
        let var = p3_provenance::vars::var_of(r3);
        let cheap = p3.with_probabilities(&[(var, 0.6104)]).unwrap();
        let p_cheap = cheap
            .probability(r#"know("Ben","Elena")"#, ProbMethod::Exact)
            .unwrap();
        // Full re-evaluation of the modified program.
        let full = P3::from_program(p3.program().with_probability(r3, 0.6104).unwrap()).unwrap();
        let p_full = full
            .probability(r#"know("Ben","Elena")"#, ProbMethod::Exact)
            .unwrap();
        assert!((p_cheap - p_full).abs() < 1e-12);
        // The original system is untouched.
        let p_orig = p3
            .probability(r#"know("Ben","Elena")"#, ProbMethod::Exact)
            .unwrap();
        assert!((p_orig - 0.16384).abs() < 1e-12);
    }

    #[test]
    fn apply_plan_reaches_the_planned_probability() {
        let p3 = P3::from_source(ACQ).unwrap();
        let dnf = p3.provenance(r#"know("Ben","Elena")"#).unwrap();
        let plan = crate::query::modification::modification_query(
            &dnf,
            p3.vars(),
            0.5,
            &crate::query::modification::ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        );
        let fixed = p3.apply_plan(&plan).unwrap();
        let p = fixed
            .probability(r#"know("Ben","Elena")"#, ProbMethod::Exact)
            .unwrap();
        assert!((p - 0.5).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn hop_limited_provenance_drops_derivations() {
        let p3 = P3::from_source(ACQ).unwrap();
        // know(Ben,Elena) needs depth 2 (r3 over r1/r2).
        let full = p3
            .provenance_with(r#"know("Ben","Elena")"#, ExtractOptions::with_max_depth(2))
            .unwrap();
        assert_eq!(full.len(), 2);
        let cut = p3
            .provenance_with(r#"know("Ben","Elena")"#, ExtractOptions::with_max_depth(1))
            .unwrap();
        assert!(cut.is_false());
    }
}
