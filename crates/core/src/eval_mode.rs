//! Evaluation-mode selection: naive bottom-up vs query-directed (demand).
//!
//! Naive evaluation materialises the *entire* model once and answers every
//! query from it; demand evaluation magic-transforms the program per query
//! (see [`p3_datalog::transform`]) and derives only the query-relevant
//! fragment. Both produce identical answers, polynomials and probabilities
//! — the choice is purely a performance trade-off, which [`EvalMode::Auto`]
//! resolves from the program's *predicted* cost.
//!
//! [`EvalMode::decide`] is the **single** auto-mode decision point: the
//! session constructor, `P3::auto_eval_mode`, and the service's per-query
//! override path all resolve through it, so the same program can never get
//! two different answers depending on which layer asked. The decision
//! itself delegates to [`p3_analyze::recommend_mode`]: recursive programs
//! get demand (the historic syntactic rule), and flat programs whose
//! statically predicted join cost crosses
//! [`p3_analyze::FLAT_DEMAND_THRESHOLD`] now get demand too.

use p3_datalog::program::Program;
use std::fmt;
use std::str::FromStr;

/// The outcome of resolving an [`EvalMode`] against a program: the
/// concrete mode plus the human-readable reason it was chosen, suitable
/// for logging and the `analyze` plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeDecision {
    /// The resolved mode — never [`EvalMode::Auto`].
    pub mode: EvalMode,
    /// Why this mode was picked (cites the static cost prediction for
    /// auto; states the override for explicit modes).
    pub reason: String,
}

/// How a [`crate::QuerySession`] evaluates the program for each query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Pick per program: [`EvalMode::Demand`] when the program has a
    /// recursive IDB predicate (where naive evaluation derives whole
    /// transitive closures a single query never looks at), otherwise
    /// [`EvalMode::Naive`] (non-recursive models are small and evaluating
    /// them once serves every subsequent query for free).
    #[default]
    Auto,
    /// Evaluate the full program bottom-up once; all queries share the one
    /// materialised model and provenance graph.
    Naive,
    /// Magic-transform the program for each queried atom and evaluate only
    /// the demanded fragment, with provenance mapped back onto the source
    /// program. Per-query results are cached, so repeating a query is free.
    Demand,
}

impl EvalMode {
    /// Resolves [`EvalMode::Auto`] against a program; `Naive` and `Demand`
    /// return themselves. Shorthand for [`EvalMode::decide`] when the
    /// reason is not needed.
    pub fn resolve(self, program: &Program) -> EvalMode {
        self.decide(program).mode
    }

    /// The single auto-mode decision point: resolves this mode against
    /// `program` and records why.
    ///
    /// [`EvalMode::Auto`] asks the static analyzer
    /// ([`p3_analyze::recommend_mode`]) — demand for recursive programs
    /// and for flat programs whose predicted join cost crosses the
    /// demand threshold, naive otherwise. Explicit modes pass through
    /// with an "explicitly requested" reason.
    pub fn decide(self, program: &Program) -> ModeDecision {
        match self {
            EvalMode::Auto => {
                let (demand, reason) = p3_analyze::recommend_mode(program);
                ModeDecision {
                    mode: if demand {
                        EvalMode::Demand
                    } else {
                        EvalMode::Naive
                    },
                    reason,
                }
            }
            mode => ModeDecision {
                mode,
                reason: format!("{mode} evaluation explicitly requested"),
            },
        }
    }

    /// The wire/CLI spelling: `auto`, `naive` or `demand`.
    pub fn as_str(self) -> &'static str {
        match self {
            EvalMode::Auto => "auto",
            EvalMode::Naive => "naive",
            EvalMode::Demand => "demand",
        }
    }
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EvalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(EvalMode::Auto),
            "naive" => Ok(EvalMode::Naive),
            "demand" => Ok(EvalMode::Demand),
            other => Err(format!(
                "unknown eval mode '{other}' (expected auto|naive|demand)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_recursion() {
        let recursive = Program::parse(
            "r1 1.0: path(X,Y) :- edge(X,Y).
             r2 0.9: path(X,Z) :- edge(X,Y), path(Y,Z).
             e1 0.5: edge(a,b).",
        )
        .unwrap();
        let flat = Program::parse(
            "r1 0.8: q(X) :- p(X).
             t1 0.5: p(a).",
        )
        .unwrap();
        assert_eq!(EvalMode::Auto.resolve(&recursive), EvalMode::Demand);
        assert_eq!(EvalMode::Auto.resolve(&flat), EvalMode::Naive);
        assert_eq!(EvalMode::Naive.resolve(&recursive), EvalMode::Naive);
        assert_eq!(EvalMode::Demand.resolve(&flat), EvalMode::Demand);
    }

    #[test]
    fn decide_reports_reasons() {
        let recursive = Program::parse(
            "r1 1.0: path(X,Y) :- edge(X,Y).
             r2 0.9: path(X,Z) :- edge(X,Y), path(Y,Z).
             e1 0.5: edge(a,b).",
        )
        .unwrap();
        let auto = EvalMode::Auto.decide(&recursive);
        assert_eq!(auto.mode, EvalMode::Demand);
        assert!(auto.reason.contains("recursive"), "{}", auto.reason);
        let forced = EvalMode::Naive.decide(&recursive);
        assert_eq!(forced.mode, EvalMode::Naive);
        assert!(forced.reason.contains("explicitly requested"));
    }

    #[test]
    fn round_trips_through_strings() {
        for mode in [EvalMode::Auto, EvalMode::Naive, EvalMode::Demand] {
            assert_eq!(mode.as_str().parse::<EvalMode>().unwrap(), mode);
        }
        assert!("magic".parse::<EvalMode>().is_err());
    }
}
