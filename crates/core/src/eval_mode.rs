//! Evaluation-mode selection: naive bottom-up vs query-directed (demand).
//!
//! Naive evaluation materialises the *entire* model once and answers every
//! query from it; demand evaluation magic-transforms the program per query
//! (see [`p3_datalog::transform`]) and derives only the query-relevant
//! fragment. Both produce identical answers, polynomials and probabilities
//! — the choice is purely a performance trade-off, which [`EvalMode::Auto`]
//! resolves from the program's shape.

use p3_datalog::program::Program;
use p3_datalog::transform::has_recursive_idb;
use std::fmt;
use std::str::FromStr;

/// How a [`crate::QuerySession`] evaluates the program for each query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Pick per program: [`EvalMode::Demand`] when the program has a
    /// recursive IDB predicate (where naive evaluation derives whole
    /// transitive closures a single query never looks at), otherwise
    /// [`EvalMode::Naive`] (non-recursive models are small and evaluating
    /// them once serves every subsequent query for free).
    #[default]
    Auto,
    /// Evaluate the full program bottom-up once; all queries share the one
    /// materialised model and provenance graph.
    Naive,
    /// Magic-transform the program for each queried atom and evaluate only
    /// the demanded fragment, with provenance mapped back onto the source
    /// program. Per-query results are cached, so repeating a query is free.
    Demand,
}

impl EvalMode {
    /// Resolves [`EvalMode::Auto`] against a program; `Naive` and `Demand`
    /// return themselves.
    pub fn resolve(self, program: &Program) -> EvalMode {
        match self {
            EvalMode::Auto => {
                if has_recursive_idb(program) {
                    EvalMode::Demand
                } else {
                    EvalMode::Naive
                }
            }
            mode => mode,
        }
    }

    /// The wire/CLI spelling: `auto`, `naive` or `demand`.
    pub fn as_str(self) -> &'static str {
        match self {
            EvalMode::Auto => "auto",
            EvalMode::Naive => "naive",
            EvalMode::Demand => "demand",
        }
    }
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EvalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(EvalMode::Auto),
            "naive" => Ok(EvalMode::Naive),
            "demand" => Ok(EvalMode::Demand),
            other => Err(format!(
                "unknown eval mode '{other}' (expected auto|naive|demand)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_recursion() {
        let recursive = Program::parse(
            "r1 1.0: path(X,Y) :- edge(X,Y).
             r2 0.9: path(X,Z) :- edge(X,Y), path(Y,Z).
             e1 0.5: edge(a,b).",
        )
        .unwrap();
        let flat = Program::parse(
            "r1 0.8: q(X) :- p(X).
             t1 0.5: p(a).",
        )
        .unwrap();
        assert_eq!(EvalMode::Auto.resolve(&recursive), EvalMode::Demand);
        assert_eq!(EvalMode::Auto.resolve(&flat), EvalMode::Naive);
        assert_eq!(EvalMode::Naive.resolve(&recursive), EvalMode::Naive);
        assert_eq!(EvalMode::Demand.resolve(&flat), EvalMode::Demand);
    }

    #[test]
    fn round_trips_through_strings() {
        for mode in [EvalMode::Auto, EvalMode::Naive, EvalMode::Demand] {
            assert_eq!(mode.as_str().parse::<EvalMode>().unwrap(), mode);
        }
        assert!("magic".parse::<EvalMode>().is_err());
    }
}
