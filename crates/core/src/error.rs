//! Errors surfaced by the P3 facade.

use p3_datalog::diag::Diagnostic;
use p3_datalog::program::ProgramError;
use p3_datalog::worlds::WorldsError;
use std::error::Error;
use std::fmt;

/// Errors from loading programs or resolving queried tuples.
#[derive(Debug)]
pub enum P3Error {
    /// The program failed to parse or validate.
    Program(ProgramError),
    /// The lint pre-flight gate rejected the program. Holds the
    /// error-severity findings, each with a stable `P3xxx` code and (for
    /// parsed sources) a span. See `QuerySession::load_program`.
    Lint(Vec<Diagnostic>),
    /// The query string is not a ground atom over known symbols.
    BadQuery(String),
    /// The queried tuple is not derivable from the program.
    NotDerivable(String),
    /// The program uses stratified negation, which the provenance model
    /// does not cover (future work in the paper).
    UnsupportedNegation,
}

impl fmt::Display for P3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P3Error::Program(e) => write!(f, "{e}"),
            P3Error::Lint(diags) => {
                write!(f, "program rejected by lint: {} error(s)", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            P3Error::BadQuery(q) => write!(f, "bad query: {q}"),
            P3Error::NotDerivable(q) => write!(f, "tuple {q} is not derivable"),
            P3Error::UnsupportedNegation => write!(
                f,
                "provenance queries require a negation-free program (the engine can \
                 evaluate stratified negation, but the P3 provenance model cannot)"
            ),
        }
    }
}

impl Error for P3Error {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            P3Error::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for P3Error {
    fn from(e: ProgramError) -> Self {
        P3Error::Program(e)
    }
}

impl From<WorldsError> for P3Error {
    fn from(e: WorldsError) -> Self {
        P3Error::BadQuery(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = P3Error::NotDerivable("know(\"a\",\"b\")".into());
        assert!(e.to_string().contains("not derivable"));
        let e = P3Error::BadQuery("oops".into());
        assert!(e.to_string().contains("oops"));
    }
}
