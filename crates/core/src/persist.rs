//! Mapping between session/provenance state and `p3-store` records.
//!
//! `p3-store` speaks plain integers and strings; this module owns the
//! (lossless, total) translation from the engine's types:
//!
//! * a [`Dnf`] ⇄ `Record::Intern` as raw `VarId` values per monomial;
//! * [`ExtractOptions`] ⇄ a `u64` depth code (`u64::MAX` = unbounded);
//! * [`ProbMethod`] ⇄ [`MethodCode`] covering every variant, so a
//!   probability memoized under any backend survives a restart.
//!
//! The session-facing save/restore entry points live on
//! [`crate::QuerySession`] (see `session.rs`); everything here is pure.

use crate::prob_method::ProbMethod;
use p3_prob::{Dnf, McConfig, Monomial, VarId};
use p3_provenance::extract::ExtractOptions;
use p3_store::{MethodCode, Record};

/// Counts of what a store replay restored into a session, returned by
/// [`crate::QuerySession::restore_records`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmRestore {
    /// Intern records replayed into the shared `DnfStore`.
    pub formulas: usize,
    /// Query → polynomial memo entries restored.
    pub dnf_memos: usize,
    /// (polynomial, method) → probability memo entries restored.
    pub prob_memos: usize,
    /// Records dropped as unusable (id out of range, unknown method tag) —
    /// expected to be 0; non-zero means the log outlived the format.
    pub skipped: usize,
}

impl WarmRestore {
    /// Total memo entries restored (what `SessionStats::warm_restored`
    /// reports).
    pub fn memos(&self) -> usize {
        self.dnf_memos + self.prob_memos
    }
}

/// `ExtractOptions` → depth code.
pub(crate) fn depth_code(opts: ExtractOptions) -> u64 {
    match opts.max_depth {
        None => u64::MAX,
        Some(d) => d as u64,
    }
}

/// A formula → its intern record (raw var ids per monomial).
pub(crate) fn dnf_record(dnf: &Dnf) -> Record {
    Record::Intern {
        monomials: dnf
            .monomials()
            .iter()
            .map(|m| m.literals().iter().map(|v| v.0).collect())
            .collect(),
    }
}

/// An intern record → its formula. `Dnf::new` re-normalises, which is a
/// no-op on records written by [`dnf_record`] (they were normalised when
/// interned), so the round trip is exact.
pub(crate) fn dnf_from_record(monomials: &[Vec<u32>]) -> Dnf {
    Dnf::new(
        monomials
            .iter()
            .map(|lits| Monomial::new(lits.iter().map(|&v| VarId(v)).collect()))
            .collect(),
    )
}

const METHOD_EXACT: u8 = 0;
const METHOD_BDD: u8 = 1;
const METHOD_MC: u8 = 2;
const METHOD_KL: u8 = 3;
const METHOD_PMC: u8 = 4;

/// `ProbMethod` → wire code; total over every variant.
pub(crate) fn method_code(method: ProbMethod) -> MethodCode {
    let (tag, cfg, threads) = match method {
        ProbMethod::Exact => (METHOD_EXACT, None, 0),
        ProbMethod::Bdd => (METHOD_BDD, None, 0),
        ProbMethod::MonteCarlo(cfg) => (METHOD_MC, Some(cfg), 0),
        ProbMethod::KarpLuby(cfg) => (METHOD_KL, Some(cfg), 0),
        ProbMethod::ParallelMc(cfg, threads) => (METHOD_PMC, Some(cfg), threads as u64),
    };
    MethodCode {
        tag,
        samples: cfg.map_or(0, |c| c.samples as u64),
        seed: cfg.map_or(0, |c| c.seed),
        threads,
    }
}

/// Wire code → `ProbMethod`; `None` for tags from a future format.
pub(crate) fn method_from_code(code: MethodCode) -> Option<ProbMethod> {
    let cfg = McConfig {
        samples: code.samples as usize,
        seed: code.seed,
    };
    Some(match code.tag {
        METHOD_EXACT => ProbMethod::Exact,
        METHOD_BDD => ProbMethod::Bdd,
        METHOD_MC => ProbMethod::MonteCarlo(cfg),
        METHOD_KL => ProbMethod::KarpLuby(cfg),
        METHOD_PMC => ProbMethod::ParallelMc(cfg, code.threads as usize),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_prob_method_round_trips() {
        let cfg = McConfig {
            samples: 12_345,
            seed: 99,
        };
        for method in [
            ProbMethod::Exact,
            ProbMethod::Bdd,
            ProbMethod::MonteCarlo(cfg),
            ProbMethod::KarpLuby(cfg),
            ProbMethod::ParallelMc(cfg, 7),
        ] {
            assert_eq!(method_from_code(method_code(method)), Some(method));
        }
        assert_eq!(
            method_from_code(MethodCode {
                tag: 250,
                samples: 0,
                seed: 0,
                threads: 0
            }),
            None
        );
    }

    #[test]
    fn depth_codes_are_injective() {
        assert_eq!(depth_code(ExtractOptions::unbounded()), u64::MAX);
        assert_eq!(depth_code(ExtractOptions::with_max_depth(0)), 0);
        assert_eq!(depth_code(ExtractOptions::with_max_depth(9)), 9);
    }

    #[test]
    fn constants_and_formulas_round_trip() {
        for dnf in [
            Dnf::zero(),
            Dnf::one(),
            Dnf::new(vec![
                Monomial::new(vec![VarId(0), VarId(3)]),
                Monomial::new(vec![VarId(7)]),
            ]),
        ] {
            let Record::Intern { monomials } = dnf_record(&dnf) else {
                panic!("wrong record kind");
            };
            assert_eq!(dnf_from_record(&monomials), dnf);
        }
    }
}
