//! Shared query sessions: cross-query memoization over an immutable core.
//!
//! A [`QuerySession`] wraps a [`P3`] handle with memo tables for everything
//! the four query classes recompute when called naively:
//!
//! * **extraction** — `(tuple, options) → DnfId`, on top of the graph-level
//!   caches in [`p3_provenance::extract::Analysis`];
//! * **probability** — `(DnfId, ProbMethod) → f64` (sound for Monte-Carlo
//!   backends because estimates are deterministic per seed);
//! * **influence rankings** — `(DnfId, options) → Vec<InfluenceEntry>`,
//!   with candidate-literal restrictions shared through the hash-consed
//!   [`DnfStore`] so fifty literals of one base formula normalise their
//!   restrictions once, ever;
//! * **sufficient provenance** — `(DnfId, ε, algorithm, method) → result`.
//!
//! Because the core a session caches over is immutable ([`P3`] never
//! mutates after evaluation; what-if updates build a *new* `P3`), no cache
//! here ever needs invalidation — though long-lived sessions can bound
//! table growth with [`SessionOptions::max_entries`] (second-chance
//! eviction, counted in [`SessionStats::evictions`]). Sessions are `Send + Sync` and cheap to
//! clone — clones share the caches — so one session can serve concurrent
//! queries from many threads; [`QuerySession::batch_probabilities`] does
//! exactly that with scoped worker threads.

use crate::clock_cache::ClockMap;
use crate::error::P3Error;
use crate::eval_mode::EvalMode;
use crate::persist::{self, WarmRestore};
use crate::prob_method::ProbMethod;
use crate::query::derivation::{sufficient_provenance_with, DerivationAlgo, SufficientProvenance};
use crate::query::explain::QueryExplain;
use crate::query::influence::{
    exact_influence, finalize_entries, InfluenceEntry, InfluenceMethod, InfluenceOptions,
};
use crate::query::modification::{
    modification_query_with, EvalMethod, ModificationEval, ModificationOptions, ModificationPlan,
};
use crate::system::{DemandCore, P3};
use p3_datalog::ast::Const;
use p3_datalog::engine::TupleId;
use p3_datalog::symbol::Symbol;
use p3_datalog::worlds;
use p3_prob::store::DnfId;
use p3_prob::{mc, parallel, Dnf, VarId, VarTable};
use p3_provenance::extract::{ExtractOptions, Extractor};
use p3_store::{Record, StorageBackend};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Hashable image of [`InfluenceOptions`] (`f64` keyed by bit pattern).
#[derive(Clone, PartialEq, Eq, Hash)]
struct InfluenceKey {
    method: InfluenceMethod,
    top_k: Option<usize>,
    preprocess_epsilon: Option<u64>,
    restrict_to: Option<Vec<VarId>>,
}

impl InfluenceKey {
    fn of(opts: &InfluenceOptions) -> Self {
        Self {
            method: opts.method,
            top_k: opts.top_k,
            preprocess_epsilon: opts.preprocess_epsilon.map(f64::to_bits),
            restrict_to: opts.restrict_to.clone(),
        }
    }
}

/// Hashable key for sufficient-provenance results.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct SufficientKey {
    eps_bits: u64,
    algo: DerivationAlgo,
    method: ProbMethod,
}

/// Options for [`QuerySession::load_program_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadOptions {
    /// Run the `p3-lint` pre-flight gate and reject the program when it has
    /// error-severity findings (default `true`). Disabling skips straight to
    /// parse + validate, which stops at the *first* defect and reports less
    /// context.
    pub lint: bool,
    /// Session cache tuning, as for [`P3::session_with`].
    pub session: SessionOptions,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            lint: true,
            session: SessionOptions::default(),
        }
    }
}

/// Tuning knobs for a [`QuerySession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionOptions {
    /// Cap on the number of entries **per memo table** (`None` = unbounded,
    /// the default). Long-lived sessions — e.g. the `p3-service` query
    /// server — set this so the caches stay bounded under arbitrary
    /// workloads; entries beyond the cap are reclaimed with second-chance
    /// (clock) eviction and counted in [`SessionStats::evictions`].
    pub max_entries: Option<usize>,
    /// How queries are evaluated: [`EvalMode::Naive`] forces (and then
    /// shares) one whole-program evaluation; [`EvalMode::Demand`]
    /// magic-transforms the program per queried atom and evaluates only the
    /// demanded fragment; [`EvalMode::Auto`] (the default) picks demand for
    /// recursive programs. Both modes produce identical polynomials and
    /// probabilities — see [`p3_provenance::demand`].
    pub eval_mode: EvalMode,
}

/// How a cached polynomial was obtained. Full-evaluation entries are keyed
/// by tuple id in the one shared database; demand entries are keyed by the
/// ground query atom (each demand evaluation has its own database, so its
/// tuple ids don't survive across queries).
#[derive(Clone, PartialEq, Eq, Hash)]
enum DnfKey {
    Full(TupleId),
    Demand(Symbol, Box<[Const]>),
}

struct SessionCaches {
    /// `(resolved query, extract options) → interned polynomial`.
    dnf_ids: RwLock<ClockMap<(DnfKey, ExtractOptions), DnfId>>,
    /// `(formula, method) → P[λ]`.
    probs: RwLock<ClockMap<(DnfId, ProbMethod), f64>>,
    /// `(formula, options) → ranked influence entries`.
    influence: RwLock<ClockMap<(DnfId, InfluenceKey), Vec<InfluenceEntry>>>,
    /// `(formula, ε/algo/method) → sufficient provenance`.
    sufficient: RwLock<ClockMap<(DnfId, SufficientKey), SufficientProvenance>>,
    /// The persistence-facing mirror of `dnf_ids`, keyed by the query
    /// *string* plus depth code so entries survive a restart (tuple ids and
    /// interned symbols don't). The `bool` marks entries restored from the
    /// store, as opposed to journaled at runtime. Empty (and skipped in a
    /// handful of instructions) unless a store is attached or restored.
    warm: RwLock<HashMap<(String, u64), (DnfId, bool)>>,
    /// Memo entries restored from a store at boot.
    warm_restored: AtomicU64,
    /// The journal sink for runtime memo traffic, when persistence is on.
    persist: RwLock<Option<Arc<dyn StorageBackend>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SessionCaches {
    fn new(opts: SessionOptions) -> Self {
        let cap = opts.max_entries;
        Self {
            dnf_ids: RwLock::new(ClockMap::with_cap(cap)),
            probs: RwLock::new(ClockMap::with_cap(cap)),
            influence: RwLock::new(ClockMap::with_cap(cap)),
            sufficient: RwLock::new(ClockMap::with_cap(cap)),
            warm: RwLock::new(HashMap::new()),
            warm_restored: AtomicU64::new(0),
            persist: RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Adapter streaming every new `DnfStore` intern into the storage backend.
/// Installed by [`QuerySession::attach_store`] *after* restore, so replayed
/// formulas are not re-journaled.
struct StoreJournal(Arc<dyn StorageBackend>);

impl p3_prob::InternJournal for StoreJournal {
    fn on_intern(&self, _id: DnfId, dnf: &Dnf) {
        // Called in id-allocation order (under the store's id lock), and
        // `append` only queues in memory — no I/O on the intern path.
        self.0.append(persist::dnf_record(dnf));
    }
}

/// Hit/miss counters across all of a session's memo tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Lookups answered from a session cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to respect [`SessionOptions::max_entries`]
    /// (always 0 for unbounded sessions).
    pub evictions: u64,
    /// Entries currently resident across all memo tables.
    pub resident: u64,
    /// Memo entries restored from a persistent store at warm boot (0 when
    /// the session booted cold). Distinguishes store-restore provenance
    /// from runtime memoization: `hits` counts both, but only a session
    /// with `warm_restored > 0` can answer its *first* occurrence of a
    /// query from cache.
    pub warm_restored: u64,
}

/// Which query class a [`QuerySession::profile`] run executes.
#[derive(Clone, Debug)]
pub enum ProfileTarget {
    /// `P[query]` under a probability backend.
    Probability(ProbMethod),
    /// Explanation Query: probability plus derivation-tree rendering.
    Explanation(ProbMethod),
    /// Derivation Query: ε-sufficient provenance.
    Derivation {
        /// Error bound ε.
        eps: f64,
        /// Search algorithm.
        algo: DerivationAlgo,
        /// Probability backend.
        method: ProbMethod,
    },
    /// Influence Query: ranked influential clauses.
    Influence(InfluenceOptions),
    /// Modification Query: reach `target` at minimal cost.
    Modification {
        /// Target probability.
        target: f64,
        /// Search options.
        opts: ModificationOptions,
    },
}

impl ProfileTarget {
    /// The query-class name (matches the service op classes).
    pub fn class(&self) -> &'static str {
        match self {
            ProfileTarget::Probability(_) => "probability",
            ProfileTarget::Explanation(_) => "explanation",
            ProfileTarget::Derivation { .. } => "derivation",
            ProfileTarget::Influence(_) => "influence",
            ProfileTarget::Modification { .. } => "modification",
        }
    }
}

/// One pipeline stage of a profiled query: wall time plus cache hit/miss
/// deltas taken around the stage.
///
/// Session deltas count only this session's memo tables; store and
/// extraction-memo deltas read shared (store-wide / process-global)
/// counters, so under concurrent load they can include other queries'
/// traffic — attribution is exact when the session is driven serially.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileStage {
    /// Stage name: `parse`, `transform` (demand-mode sessions only),
    /// `extract`, then one per query class (plus `render` for
    /// explanations).
    pub name: &'static str,
    /// Wall-clock time spent in the stage, microseconds.
    pub wall_us: u64,
    /// Session memo-table hits during the stage.
    pub session_hits: u64,
    /// Session memo-table misses during the stage.
    pub session_misses: u64,
    /// Hash-cons intern hits in the shared [`DnfStore`](p3_prob::store::DnfStore).
    pub store_intern_hits: u64,
    /// Hash-cons intern misses in the shared store.
    pub store_intern_misses: u64,
    /// Memoized or/and/restrict hits in the shared store.
    pub store_op_hits: u64,
    /// Memoized or/and/restrict misses in the shared store.
    pub store_op_misses: u64,
    /// Clean-tuple extraction-memo hits (process-global counter).
    pub extract_memo_hits: u64,
    /// Clean-tuple extraction-memo misses (process-global counter).
    pub extract_memo_misses: u64,
}

/// A stage-by-stage breakdown of one query, from [`QuerySession::profile`].
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// The profiled ground atom.
    pub query: String,
    /// The query class that ran (see [`ProfileTarget::class`]).
    pub class: &'static str,
    /// End-to-end wall time, microseconds.
    pub total_us: u64,
    /// The resulting probability, when the class produces one
    /// (`None` for influence rankings).
    pub probability: Option<f64>,
    /// The stages, in execution order.
    pub stages: Vec<ProfileStage>,
}

/// A point-in-time reading of every counter a [`ProfileStage`] reports.
#[derive(Clone, Copy)]
struct CounterSnapshot {
    session_hits: u64,
    session_misses: u64,
    store_intern_hits: u64,
    store_intern_misses: u64,
    store_op_hits: u64,
    store_op_misses: u64,
    extract_memo_hits: u64,
    extract_memo_misses: u64,
}

/// A memoizing query handle over an immutable [`P3`]. See the module docs.
#[derive(Clone)]
pub struct QuerySession {
    p3: P3,
    caches: Arc<SessionCaches>,
    /// The resolved evaluation mode (never [`EvalMode::Auto`]).
    mode: EvalMode,
    /// Why [`Self::mode`] was picked (see [`EvalMode::decide`]).
    mode_reason: Arc<str>,
}

impl QuerySession {
    pub(crate) fn new(p3: P3) -> Self {
        Self::with_options(p3, SessionOptions::default())
    }

    pub(crate) fn with_options(p3: P3, opts: SessionOptions) -> Self {
        let decision = opts.eval_mode.decide(p3.program());
        p3_obs::metrics::labeled_counter(
            "p3_eval_mode_decisions_total",
            "Session eval-mode resolutions, by resolved mode",
            &p3_obs::metrics::render_labels(&[("mode", decision.mode.as_str())]),
        )
        .inc();
        p3_obs::debug!(
            "session eval mode resolved",
            mode = decision.mode.as_str(),
            reason = decision.reason.as_str()
        );
        Self {
            p3,
            caches: Arc::new(SessionCaches::new(opts)),
            mode: decision.mode,
            mode_reason: decision.reason.into(),
        }
    }

    /// The evaluation mode this session resolved to — [`EvalMode::Naive`]
    /// or [`EvalMode::Demand`], never [`EvalMode::Auto`].
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// Why [`Self::eval_mode`] was picked: the static-analysis prediction
    /// for auto sessions, or the explicit override.
    pub fn eval_mode_reason(&self) -> &str {
        &self.mode_reason
    }

    /// Loads `src` into a fresh session with the lint pre-flight gate on:
    /// the program is statically analyzed first, and any error-severity
    /// finding rejects it — with *every* defect reported, each carrying a
    /// `P3xxx` code and source span — before evaluation starts.
    pub fn load_program(src: &str) -> Result<Self, P3Error> {
        Self::load_program_with(src, LoadOptions::default())
    }

    /// Like [`QuerySession::load_program`], with explicit [`LoadOptions`]
    /// (lint opt-out and session cache tuning).
    pub fn load_program_with(src: &str, opts: LoadOptions) -> Result<Self, P3Error> {
        if opts.lint {
            let report = p3_lint::lint_source(src);
            if report.has_errors() {
                let errors = report
                    .diagnostics
                    .into_iter()
                    .filter(|d| d.severity == p3_lint::Severity::Error)
                    .collect();
                return Err(P3Error::Lint(errors));
            }
        }
        let p3 = P3::from_source(src)?;
        Ok(p3.session_with(opts.session))
    }

    /// The underlying system.
    pub fn p3(&self) -> &P3 {
        &self.p3
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> SessionStats {
        let tables = [
            {
                let t = self.caches.dnf_ids.read().unwrap();
                (t.evictions(), t.len())
            },
            {
                let t = self.caches.probs.read().unwrap();
                (t.evictions(), t.len())
            },
            {
                let t = self.caches.influence.read().unwrap();
                (t.evictions(), t.len())
            },
            {
                let t = self.caches.sufficient.read().unwrap();
                (t.evictions(), t.len())
            },
        ];
        let warm = self.caches.warm.read().unwrap().len() as u64;
        SessionStats {
            hits: self.caches.hits.load(Ordering::Relaxed),
            misses: self.caches.misses.load(Ordering::Relaxed),
            evictions: tables.iter().map(|&(e, _)| e).sum(),
            resident: tables.iter().map(|&(_, n)| n as u64).sum::<u64>() + warm,
            warm_restored: self.caches.warm_restored.load(Ordering::Relaxed),
        }
    }

    /// Replays records recovered from a persistent store into this session:
    /// intern records rebuild the shared [`DnfStore`] (in allocation order,
    /// so every persisted `DnfId` stays valid), memo records land in the
    /// warm query layer and the probability cache. Re-interning is
    /// idempotent, so records duplicated between a snapshot and the log
    /// tail are harmless.
    ///
    /// Call **before** [`QuerySession::attach_store`] (nothing replayed
    /// here is journaled) and before serving traffic. Memos whose id falls
    /// outside the replayed store, or whose method tag is unknown, are
    /// counted in [`WarmRestore::skipped`] and dropped — a defense in depth
    /// on top of the store's checksums and program fingerprint.
    pub fn restore_records(&self, records: &[Record]) -> WarmRestore {
        let mut out = WarmRestore::default();
        for record in records {
            match record {
                Record::Intern { monomials } => {
                    self.p3.store.intern(persist::dnf_from_record(monomials));
                    out.formulas += 1;
                }
                Record::DnfMemo { query, depth, id } => {
                    if (*id as usize) < self.p3.store.len() {
                        self.caches.warm.write().unwrap().insert(
                            (query.clone(), *depth),
                            (DnfId::from_index(*id as usize), true),
                        );
                        out.dnf_memos += 1;
                    } else {
                        out.skipped += 1;
                    }
                }
                Record::ProbMemo { id, method, prob } => {
                    match ((*id as usize) < self.p3.store.len())
                        .then(|| persist::method_from_code(*method))
                        .flatten()
                    {
                        Some(method) => {
                            self.caches
                                .probs
                                .write()
                                .unwrap()
                                .insert((DnfId::from_index(*id as usize), method), *prob);
                            out.prob_memos += 1;
                        }
                        None => out.skipped += 1,
                    }
                }
            }
        }
        self.caches
            .warm_restored
            .fetch_add(out.memos() as u64, Ordering::Relaxed);
        out
    }

    /// Attaches `backend` as this session's journal: from now on every new
    /// store intern, every first `query → DnfId` resolution and every
    /// probability memo miss is appended to it. The caller owns durability
    /// (`backend.flush()`) and compaction
    /// ([`QuerySession::export_records`] → `backend.snapshot(..)`).
    pub fn attach_store(&self, backend: Arc<dyn StorageBackend>) {
        self.p3
            .store
            .set_journal(Arc::new(StoreJournal(Arc::clone(&backend))));
        *self.caches.persist.write().unwrap() = Some(backend);
    }

    /// Detaches the journal installed by [`QuerySession::attach_store`].
    /// Restored warm entries keep serving; new work is simply no longer
    /// persisted (used when `load-program` swaps the served program out
    /// from under a store keyed to the old one).
    pub fn detach_store(&self) {
        self.p3.store.clear_journal();
        *self.caches.persist.write().unwrap() = None;
    }

    /// The attached storage backend, if any.
    pub fn store_backend(&self) -> Option<Arc<dyn StorageBackend>> {
        self.caches.persist.read().unwrap().clone()
    }

    /// The full persistable state — every interned formula in id order,
    /// then every warm query memo and memoized probability — as the record
    /// sequence a snapshot stores. Replaying the result into a fresh
    /// session over the same program reproduces identical ids and
    /// probabilities.
    pub fn export_records(&self) -> Vec<Record> {
        let formulas = self.p3.store.export_formulas();
        let mut out = Vec::with_capacity(formulas.len());
        for dnf in &formulas {
            out.push(persist::dnf_record(dnf));
        }
        for ((query, depth), (id, _)) in self.caches.warm.read().unwrap().iter() {
            out.push(Record::DnfMemo {
                query: query.clone(),
                depth: *depth,
                id: id.index() as u32,
            });
        }
        for ((id, method), p) in self.caches.probs.read().unwrap().entries() {
            out.push(Record::ProbMemo {
                id: id.index() as u32,
                method: persist::method_code(*method),
                prob: *p,
            });
        }
        out
    }

    fn hit(&self) {
        self.caches.hits.fetch_add(1, Ordering::Relaxed);
        p3_obs::counter!(
            "p3_core_session_hits_total",
            "Session memo-table lookups answered from cache"
        )
        .inc();
    }

    fn miss(&self) {
        self.caches.misses.fetch_add(1, Ordering::Relaxed);
        p3_obs::counter!(
            "p3_core_session_misses_total",
            "Session memo-table lookups that had to compute"
        )
        .inc();
    }

    /// The interned provenance polynomial of a query (unbounded depth).
    pub fn provenance_id(&self, query: &str) -> Result<DnfId, P3Error> {
        self.provenance_id_with(query, ExtractOptions::unbounded())
    }

    /// The interned provenance polynomial with explicit extraction options.
    /// Routed by the session's [`EvalMode`]; both modes intern the *same*
    /// canonical polynomial, so downstream `DnfId`-keyed caches are shared
    /// across modes.
    pub fn provenance_id_with(&self, query: &str, opts: ExtractOptions) -> Result<DnfId, P3Error> {
        let depth = persist::depth_code(opts);
        // The warm layer answers before any parsing or tuple resolution:
        // entries restored from a store (or journaled earlier this run)
        // are keyed by the query string itself.
        {
            let warm = self.caches.warm.read().unwrap();
            if !warm.is_empty() {
                if let Some(&(id, restored)) = warm.get(&(query.to_string(), depth)) {
                    self.hit();
                    if restored {
                        p3_store::warm_boot_hits_metric().inc();
                    }
                    return Ok(id);
                }
            }
        }
        let id = match self.mode {
            EvalMode::Demand => {
                let (pred, args) = worlds::parse_ground_query(self.p3.program(), query)?;
                self.demand_dnf(query, pred, &args, opts)?
            }
            _ => {
                let tuple = self.p3.tuple(query)?;
                self.tuple_dnf(tuple, opts)
            }
        };
        // With persistence on, mirror the memo into the warm layer and the
        // journal so the *next* process boots with it.
        if let Some(backend) = self.caches.persist.read().unwrap().as_ref() {
            let fresh = self
                .caches
                .warm
                .write()
                .unwrap()
                .insert((query.to_string(), depth), (id, false))
                .is_none();
            if fresh {
                backend.append(Record::DnfMemo {
                    query: query.to_string(),
                    depth,
                    id: id.index() as u32,
                });
            }
        }
        Ok(id)
    }

    /// The interned polynomial of a tuple resolved against the **full**
    /// database (forces the full naive evaluation regardless of the
    /// session's mode — demand-mode callers resolve queries by atom, see
    /// [`QuerySession::provenance_id_with`]).
    pub fn tuple_dnf(&self, tuple: TupleId, opts: ExtractOptions) -> DnfId {
        let key = (DnfKey::Full(tuple), opts);
        if let Some(&id) = self.caches.dnf_ids.read().unwrap().get(&key) {
            self.hit();
            return id;
        }
        self.miss();
        let mut span = p3_obs::span::span("session.extract");
        span.add_field("tuple", tuple.0);
        let dnf = self.p3.extractor().polynomial(tuple, opts);
        let id = self.p3.store.intern(dnf);
        self.caches.dnf_ids.write().unwrap().insert(key, id);
        id
    }

    /// The interned polynomial of a ground query atom under demand
    /// evaluation: forces (or reuses) the per-query demand core and
    /// extracts from its projected provenance graph.
    fn demand_dnf(
        &self,
        query: &str,
        pred: Symbol,
        args: &[Const],
        opts: ExtractOptions,
    ) -> Result<DnfId, P3Error> {
        let key = (DnfKey::Demand(pred, args.to_vec().into_boxed_slice()), opts);
        if let Some(&id) = self.caches.dnf_ids.read().unwrap().get(&key) {
            self.hit();
            return Ok(id);
        }
        self.miss();
        let mut span = p3_obs::span::span("session.extract");
        span.add_field("mode", "demand");
        let core = self.p3.demand_core(pred, args)?;
        let tuple = core
            .tuple
            .ok_or_else(|| P3Error::NotDerivable(query.to_string()))?;
        span.add_field("tuple", tuple.0);
        let dnf = Extractor::with_analysis(&core.graph, &core.analysis).polynomial(tuple, opts);
        let id = self.p3.store.intern(dnf);
        self.caches.dnf_ids.write().unwrap().insert(key, id);
        Ok(id)
    }

    /// The formula behind an id (shared allocation with the store).
    pub fn dnf(&self, id: DnfId) -> Arc<Dnf> {
        self.p3.store.get(id)
    }

    /// The provenance polynomial of a query, via the session cache.
    pub fn provenance(&self, query: &str) -> Result<Dnf, P3Error> {
        Ok((*self.dnf(self.provenance_id(query)?)).clone())
    }

    /// The success probability of a query (unbounded extraction), memoized.
    pub fn probability(&self, query: &str, method: ProbMethod) -> Result<f64, P3Error> {
        let id = self.provenance_id(query)?;
        Ok(self.probability_of(id, method))
    }

    /// The probability of an interned formula under this session's variable
    /// table, memoized by `(id, method)`.
    pub fn probability_of(&self, id: DnfId, method: ProbMethod) -> f64 {
        if let Some(&p) = self.caches.probs.read().unwrap().get(&(id, method)) {
            self.hit();
            return p;
        }
        self.miss();
        let mut span = p3_obs::span::span("session.probability");
        span.add_field("dnf", id.index());
        let p = method.probability(&self.dnf(id), &self.p3.vars);
        self.caches.probs.write().unwrap().insert((id, method), p);
        if let Some(backend) = self.caches.persist.read().unwrap().as_ref() {
            backend.append(Record::ProbMemo {
                id: id.index() as u32,
                method: persist::method_code(method),
                prob: p,
            });
        }
        p
    }

    /// Runs an Influence Query, memoized by `(formula, options)`.
    ///
    /// On a cache miss the exact backend computes each literal's influence
    /// from store-memoized restrictions of the *one* interned base formula,
    /// and each restriction's probability lands in the session probability
    /// cache — so influence queries over overlapping formulas, or a later
    /// re-run with different `top_k`/`restrict_to` filtering, reuse both.
    /// On a cache hit nothing is re-extracted or re-estimated.
    pub fn influence(
        &self,
        query: &str,
        opts: &InfluenceOptions,
    ) -> Result<Vec<InfluenceEntry>, P3Error> {
        let id = self.provenance_id(query)?;
        Ok(self.influence_of(id, opts))
    }

    /// Influence Query over an interned formula.
    pub fn influence_of(&self, id: DnfId, opts: &InfluenceOptions) -> Vec<InfluenceEntry> {
        let key = InfluenceKey::of(opts);
        if let Some(hit) = self
            .caches
            .influence
            .read()
            .unwrap()
            .get(&(id, key.clone()))
        {
            self.hit();
            return hit.clone();
        }
        self.miss();
        let mut span = p3_obs::span::span("session.influence");
        span.add_field("dnf", id.index());

        // Optional §6.2 preprocessing, through the sufficient-provenance
        // cache; the backend matches the influence backend (see
        // `influence_query` for the rationale).
        let target_id = match opts.preprocess_epsilon {
            Some(eps) => {
                let compress_method = match opts.method {
                    InfluenceMethod::Exact => ProbMethod::Exact,
                    InfluenceMethod::Mc(cfg) => ProbMethod::MonteCarlo(cfg),
                    InfluenceMethod::ParallelMc(cfg, threads) => {
                        ProbMethod::ParallelMc(cfg, threads)
                    }
                };
                let sufficient = self.sufficient_provenance_of(
                    id,
                    eps,
                    DerivationAlgo::NaiveGreedy,
                    compress_method,
                );
                self.p3.store.intern(sufficient.polynomial)
            }
            None => id,
        };

        let target = self.dnf(target_id);
        let entries: Vec<InfluenceEntry> = match opts.method {
            InfluenceMethod::Exact => target
                .vars()
                .into_iter()
                .map(|v| {
                    // The two restrictions are memoized in the store and
                    // their probabilities in the session, so they are shared
                    // with every other query touching the same sub-formulas.
                    let hi = self.probability_of(
                        self.p3.store.restrict(target_id, v, true),
                        ProbMethod::Exact,
                    );
                    let lo = self.probability_of(
                        self.p3.store.restrict(target_id, v, false),
                        ProbMethod::Exact,
                    );
                    InfluenceEntry {
                        var: v,
                        influence: hi - lo,
                    }
                })
                .collect(),
            InfluenceMethod::Mc(cfg) => mc::influence_all(&target, &self.p3.vars, cfg)
                .into_iter()
                .map(|(var, influence)| InfluenceEntry { var, influence })
                .collect(),
            InfluenceMethod::ParallelMc(cfg, threads) => {
                parallel::influence_all(&target, &self.p3.vars, cfg, threads)
                    .into_iter()
                    .map(|(var, influence)| InfluenceEntry { var, influence })
                    .collect()
            }
        };
        let entries = finalize_entries(entries, opts);
        self.caches
            .influence
            .write()
            .unwrap()
            .insert((id, key), entries.clone());
        entries
    }

    /// Runs a Derivation Query, memoized by `(formula, ε, algorithm,
    /// method)`; probability evaluations inside the search go through the
    /// session probability cache.
    pub fn sufficient_provenance(
        &self,
        query: &str,
        eps: f64,
        algo: DerivationAlgo,
        method: ProbMethod,
    ) -> Result<SufficientProvenance, P3Error> {
        let id = self.provenance_id(query)?;
        Ok(self.sufficient_provenance_of(id, eps, algo, method))
    }

    /// Derivation Query over an interned formula.
    pub fn sufficient_provenance_of(
        &self,
        id: DnfId,
        eps: f64,
        algo: DerivationAlgo,
        method: ProbMethod,
    ) -> SufficientProvenance {
        let key = SufficientKey {
            eps_bits: eps.to_bits(),
            algo,
            method,
        };
        if let Some(hit) = self.caches.sufficient.read().unwrap().get(&(id, key)) {
            self.hit();
            return hit.clone();
        }
        self.miss();
        let mut span = p3_obs::span::span("session.derivation");
        span.add_field("dnf", id.index());
        let dnf = self.dnf(id);
        let result = sufficient_provenance_with(&dnf, &self.p3.vars, eps, algo, &|d| {
            self.probability_of(self.p3.store.intern(d.clone()), method)
        });
        self.caches
            .sufficient
            .write()
            .unwrap()
            .insert((id, key), result.clone());
        result
    }

    /// Runs a Modification Query. The plan search mutates a private working
    /// table, so only evaluations against the session's own (base) variable
    /// table are served from — and recorded in — the cache; evaluations
    /// under modified tables always compute directly.
    pub fn modification(
        &self,
        query: &str,
        target: f64,
        opts: &ModificationOptions,
    ) -> Result<ModificationPlan, P3Error> {
        let id = self.provenance_id(query)?;
        let dnf = self.dnf(id);
        let base: *const VarTable = &*self.p3.vars;
        let method = match opts.eval {
            EvalMethod::Exact => ProbMethod::Exact,
            EvalMethod::Mc(cfg) => ProbMethod::MonteCarlo(cfg),
            EvalMethod::McParallel(cfg, threads) => ProbMethod::ParallelMc(cfg, threads),
        };
        let prob = |d: &Dnf, vars: &VarTable| -> f64 {
            if std::ptr::eq(vars, base) {
                self.probability_of(self.p3.store.intern(d.clone()), method)
            } else {
                method.probability(d, vars)
            }
        };
        let influence = |d: &Dnf, vars: &VarTable, x: VarId| -> f64 {
            match opts.eval {
                EvalMethod::Exact => exact_influence(d, vars, x),
                EvalMethod::Mc(cfg) => mc::influence(d, vars, x, cfg),
                EvalMethod::McParallel(cfg, threads) => {
                    parallel::influence(d, vars, x, cfg, threads)
                }
            }
        };
        Ok(modification_query_with(
            &dnf,
            &self.p3.vars,
            target,
            opts,
            ModificationEval {
                prob: &prob,
                influence: &influence,
            },
        ))
    }

    fn counters(&self) -> CounterSnapshot {
        let store = self.p3.store.stats();
        let (extract_memo_hits, extract_memo_misses) = p3_provenance::extract::memo_counters();
        CounterSnapshot {
            session_hits: self.caches.hits.load(Ordering::Relaxed),
            session_misses: self.caches.misses.load(Ordering::Relaxed),
            store_intern_hits: store.intern_hits,
            store_intern_misses: store.intern_misses,
            store_op_hits: store.op_hits,
            store_op_misses: store.op_misses,
            extract_memo_hits,
            extract_memo_misses,
        }
    }

    /// Runs `f` as one named profile stage, recording wall time and the
    /// counter deltas around it.
    fn stage<R>(
        &self,
        name: &'static str,
        stages: &mut Vec<ProfileStage>,
        f: impl FnOnce() -> R,
    ) -> R {
        let before = self.counters();
        let start = Instant::now();
        let out = f();
        let wall_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let after = self.counters();
        stages.push(ProfileStage {
            name,
            wall_us,
            session_hits: after.session_hits.saturating_sub(before.session_hits),
            session_misses: after.session_misses.saturating_sub(before.session_misses),
            store_intern_hits: after
                .store_intern_hits
                .saturating_sub(before.store_intern_hits),
            store_intern_misses: after
                .store_intern_misses
                .saturating_sub(before.store_intern_misses),
            store_op_hits: after.store_op_hits.saturating_sub(before.store_op_hits),
            store_op_misses: after.store_op_misses.saturating_sub(before.store_op_misses),
            extract_memo_hits: after
                .extract_memo_hits
                .saturating_sub(before.extract_memo_hits),
            extract_memo_misses: after
                .extract_memo_misses
                .saturating_sub(before.extract_memo_misses),
        });
        out
    }

    /// Runs one query class with a stage-by-stage breakdown: wall time and
    /// cache hit/miss deltas per pipeline stage (parse, extraction, then
    /// the class-specific computation), sourced from the session, store
    /// and extraction-memo instrumentation already in place. The profiled
    /// run is a *real* run — results land in (and are served from) the
    /// session caches exactly as they would unprofiled, so profiling the
    /// same query twice shows the warm path on the second run.
    pub fn profile(
        &self,
        query: &str,
        target: &ProfileTarget,
        opts: ExtractOptions,
    ) -> Result<QueryProfile, P3Error> {
        let started = Instant::now();
        let mut stages = Vec::new();
        // Resolve the query and extract its polynomial, mode-dependently.
        // `resolved` keeps whichever graph/database the render stage needs.
        enum Resolved {
            Full(TupleId),
            Demand(Arc<DemandCore>),
        }
        let (id, resolved) = match self.mode {
            EvalMode::Demand => {
                let (pred, args) = self.stage("parse", &mut stages, || {
                    worlds::parse_ground_query(self.p3.program(), query)
                })?;
                let core = self.stage("transform", &mut stages, || {
                    self.p3.demand_core(pred, &args)
                })?;
                let id = self.stage("extract", &mut stages, || {
                    self.demand_dnf(query, pred, &args, opts)
                })?;
                (id, Resolved::Demand(core))
            }
            _ => {
                let tuple = self.stage("parse", &mut stages, || self.p3.tuple(query))?;
                let id = self.stage("extract", &mut stages, || self.tuple_dnf(tuple, opts));
                (id, Resolved::Full(tuple))
            }
        };
        let probability = match target {
            ProfileTarget::Probability(method) => {
                Some(self.stage("probability", &mut stages, || {
                    self.probability_of(id, *method)
                }))
            }
            ProfileTarget::Explanation(method) => {
                let p = self.stage("probability", &mut stages, || {
                    self.probability_of(id, *method)
                });
                self.stage("render", &mut stages, || {
                    let program = self.p3.program();
                    let (graph, db, tuple) = match &resolved {
                        Resolved::Full(tuple) => (self.p3.graph(), self.p3.database(), *tuple),
                        Resolved::Demand(core) => (
                            &core.graph,
                            &core.db,
                            core.tuple.expect("extraction succeeded above"),
                        ),
                    };
                    let text =
                        p3_provenance::explain::explain(graph, db, program, tuple, opts.max_depth);
                    let dot = p3_provenance::dot::to_dot(graph, db, program, tuple);
                    (text, dot)
                });
                Some(p)
            }
            ProfileTarget::Derivation { eps, algo, method } => {
                let s = self.stage("derivation", &mut stages, || {
                    self.sufficient_provenance_of(id, *eps, *algo, *method)
                });
                Some(s.probability)
            }
            ProfileTarget::Influence(influence_opts) => {
                self.stage("influence", &mut stages, || {
                    self.influence_of(id, influence_opts)
                });
                None
            }
            ProfileTarget::Modification {
                target: goal,
                opts: mod_opts,
            } => {
                let plan = self.stage("modification", &mut stages, || {
                    self.modification(query, *goal, mod_opts)
                })?;
                Some(plan.achieved_probability)
            }
        };
        Ok(QueryProfile {
            query: query.to_string(),
            class: target.class(),
            total_us: started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            probability,
            stages,
        })
    }

    /// Explains a query's evaluation cost: resolves the query exactly as
    /// an unexplained run would (same caches, same evaluation cores) and
    /// returns the per-rule [`ExplainPlan`](p3_datalog::explain::ExplainPlan)
    /// of the evaluation that answers it, the answer's DNF shape, the
    /// cache deltas around this call, and any measured P3603/P3604
    /// recommendations the numbers justify.
    ///
    /// Observation-only: explaining a query changes no answer — the DnfId
    /// it extracts and any probabilities computed afterwards are
    /// bit-identical with and without the explain call.
    pub fn explain(&self, query: &str) -> Result<QueryExplain, P3Error> {
        let opts = ExtractOptions::unbounded();
        let before = self.counters();
        let (id, plan) = match self.mode {
            EvalMode::Demand => {
                let (pred, args) = worlds::parse_ground_query(self.p3.program(), query)?;
                let core = self.p3.demand_core(pred, &args)?;
                let id = self.demand_dnf(query, pred, &args, opts)?;
                (id, core.plan.clone())
            }
            _ => {
                let tuple = self.p3.tuple(query)?;
                let id = self.tuple_dnf(tuple, opts);
                (id, self.p3.full().plan.clone())
            }
        };
        let after = self.counters();
        let shape = self.dnf(id).shape();
        let recommendations = QueryExplain::recommend(&plan);
        Ok(QueryExplain {
            query: query.to_string(),
            plan,
            shape,
            session_hits: after.session_hits.saturating_sub(before.session_hits),
            session_misses: after.session_misses.saturating_sub(before.session_misses),
            store_intern_hits: after
                .store_intern_hits
                .saturating_sub(before.store_intern_hits),
            store_intern_misses: after
                .store_intern_misses
                .saturating_sub(before.store_intern_misses),
            store_op_hits: after.store_op_hits.saturating_sub(before.store_op_hits),
            store_op_misses: after.store_op_misses.saturating_sub(before.store_op_misses),
            extract_memo_hits: after
                .extract_memo_hits
                .saturating_sub(before.extract_memo_hits),
            extract_memo_misses: after
                .extract_memo_misses
                .saturating_sub(before.extract_memo_misses),
            recommendations,
        })
    }

    /// Statically analyzes this session's program: predicted per-rule
    /// costs, cardinality bounds, DNF widths and `P37xx` prediction
    /// diagnostics — all computed **without evaluating anything** (see
    /// [`p3_analyze`]). Pass a query atom to additionally predict
    /// per-query-class work for its predicate.
    ///
    /// The returned plan's rule ranking mirrors the EXPLAIN plane's
    /// measured [`ExplainPlan`](p3_datalog::explain::ExplainPlan) shape,
    /// so `p3 analyze --calibrate` can correlate the two row-for-row.
    /// Observation-only: analysis never touches the evaluation cores or
    /// caches, so DnfIds and probabilities are bit-identical with or
    /// without it.
    pub fn analyze(&self, query: Option<&str>) -> p3_analyze::AnalyzePlan {
        match query {
            Some(q) => p3_analyze::analyze_query(self.p3.program(), q),
            None => p3_analyze::analyze(self.p3.program()),
        }
    }

    /// Answers many probability queries concurrently over this session
    /// (`threads = 0` means [`parallel::default_threads`]). Results are in
    /// query order; all workers share this session's caches, so duplicate
    /// queries in the batch are computed once.
    pub fn batch_probabilities(
        &self,
        queries: &[&str],
        method: ProbMethod,
        threads: usize,
    ) -> Vec<Result<f64, P3Error>> {
        let threads = parallel::resolve_threads(threads).min(queries.len().max(1));
        let mut striped: Vec<Vec<(usize, Result<f64, P3Error>)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let session = self.clone();
                        scope.spawn(move |_| {
                            queries
                                .iter()
                                .enumerate()
                                .skip(t)
                                .step_by(threads)
                                .map(|(i, q)| (i, session.probability(q, method)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            })
            .expect("batch scope panicked");
        let mut out: Vec<Option<Result<f64, P3Error>>> = (0..queries.len()).map(|_| None).collect();
        for stripe in striped.drain(..) {
            for (i, r) in stripe {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::influence::influence_query;
    use crate::query::modification::modification_query;
    use p3_prob::McConfig;

    const ACQ: &str = r#"
        r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
        r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
        r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
        t1 1.0: live("Steve","DC").
        t2 1.0: live("Elena","DC").
        t3 1.0: live("Mary","NYC").
        t4 0.4: like("Steve","Veggies").
        t5 0.6: like("Elena","Veggies").
        t6 1.0: know("Ben","Steve").
    "#;

    const Q: &str = r#"know("Ben","Elena")"#;

    #[test]
    fn session_probability_matches_fresh_and_caches() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session();
        let fresh = p3.probability(Q, ProbMethod::Exact).unwrap();
        let first = session.probability(Q, ProbMethod::Exact).unwrap();
        assert_eq!(first, fresh);
        let misses_after_first = session.stats().misses;
        let second = session.probability(Q, ProbMethod::Exact).unwrap();
        assert_eq!(second, first);
        assert_eq!(
            session.stats().misses,
            misses_after_first,
            "pure cache hits"
        );
        assert!(session.stats().hits >= 2, "extraction + probability hits");
    }

    #[test]
    fn session_influence_matches_direct_query() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session();
        let dnf = p3.provenance(Q).unwrap();
        for method in [
            InfluenceMethod::Exact,
            InfluenceMethod::Mc(McConfig {
                samples: 50_000,
                seed: 3,
            }),
        ] {
            let opts = InfluenceOptions {
                method,
                ..Default::default()
            };
            let direct = influence_query(&dnf, p3.vars(), &opts);
            let via_session = session.influence(Q, &opts).unwrap();
            assert_eq!(direct.len(), via_session.len());
            for (d, s) in direct.iter().zip(&via_session) {
                assert_eq!(d.var, s.var, "{method:?}");
                assert!((d.influence - s.influence).abs() < 1e-12, "{method:?}");
            }
        }
    }

    #[test]
    fn repeated_influence_is_a_cache_hit() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session();
        let opts = InfluenceOptions {
            method: InfluenceMethod::Exact,
            ..Default::default()
        };
        let first = session.influence(Q, &opts).unwrap();
        let store_misses = p3.store().stats().op_misses;
        let misses = session.stats().misses;
        let second = session.influence(Q, &opts).unwrap();
        assert_eq!(first, second);
        assert_eq!(session.stats().misses, misses, "no recomputation");
        assert_eq!(
            p3.store().stats().op_misses,
            store_misses,
            "no new restrictions"
        );
        // A different top_k is a new ranking key but shares all
        // restrictions and probabilities through the store.
        let top1 = session
            .influence(
                Q,
                &InfluenceOptions {
                    top_k: Some(1),
                    method: InfluenceMethod::Exact,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0], first[0]);
        assert_eq!(
            p3.store().stats().op_misses,
            store_misses,
            "restrictions reused"
        );
    }

    #[test]
    fn session_sufficient_provenance_matches_direct() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session();
        let dnf = p3.provenance(Q).unwrap();
        for algo in [DerivationAlgo::NaiveGreedy, DerivationAlgo::ReSuciu] {
            let direct = crate::query::derivation::sufficient_provenance(
                &dnf,
                p3.vars(),
                0.01,
                algo,
                ProbMethod::Exact,
            );
            let s = session
                .sufficient_provenance(Q, 0.01, algo, ProbMethod::Exact)
                .unwrap();
            assert_eq!(s.polynomial, direct.polynomial, "{algo:?}");
            assert_eq!(s.probability, direct.probability, "{algo:?}");
            // Second call: cache hit.
            let misses = session.stats().misses;
            let again = session
                .sufficient_provenance(Q, 0.01, algo, ProbMethod::Exact)
                .unwrap();
            assert_eq!(again.polynomial, s.polynomial);
            assert_eq!(session.stats().misses, misses, "{algo:?}");
        }
    }

    #[test]
    fn session_modification_matches_direct() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session();
        let dnf = p3.provenance(Q).unwrap();
        let opts = ModificationOptions {
            tolerance: 1e-9,
            ..Default::default()
        };
        let direct = modification_query(&dnf, p3.vars(), 0.5, &opts);
        let s = session.modification(Q, 0.5, &opts).unwrap();
        assert_eq!(s.steps.len(), direct.steps.len());
        for (a, b) in s.steps.iter().zip(&direct.steps) {
            assert_eq!(a.var, b.var);
            assert!((a.to - b.to).abs() < 1e-12);
        }
        assert!((s.achieved_probability - direct.achieved_probability).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_sequential() {
        let p3 = P3::from_source(ACQ).unwrap();
        let queries = [
            Q,
            r#"know("Ben","Steve")"#,
            r#"know("Steve","Elena")"#,
            "bogus(",
            r#"know("Mary","Elena")"#,
            Q, // duplicate: shares the first query's cache entries
        ];
        let batch = p3.batch_probabilities(&queries, ProbMethod::Exact, 4);
        assert_eq!(batch.len(), queries.len());
        for (q, r) in queries.iter().zip(&batch) {
            match p3.probability(q, ProbMethod::Exact) {
                Ok(expected) => {
                    assert_eq!(*r.as_ref().unwrap(), expected, "{q}");
                }
                Err(_) => assert!(r.is_err(), "{q}"),
            }
        }
    }

    #[test]
    fn capped_session_evicts_but_stays_correct() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session_with(SessionOptions {
            max_entries: Some(2),
            ..Default::default()
        });
        let queries = [
            Q,
            r#"know("Ben","Steve")"#,
            r#"know("Steve","Elena")"#,
            r#"know("Elena","Steve")"#,
        ];
        // Two passes over four distinct queries against a 2-entry cap:
        // eviction must kick in, and every answer must still match the
        // uncached facade.
        for _ in 0..2 {
            for q in queries {
                let expected = p3.probability(q, ProbMethod::Exact).unwrap();
                assert_eq!(session.probability(q, ProbMethod::Exact).unwrap(), expected);
            }
        }
        let stats = session.stats();
        assert!(stats.evictions > 0, "cap of 2 over 4 queries: {stats:?}");
        // Each table respects the cap.
        assert!(stats.resident <= 2 * 4, "{stats:?}");
        // An unbounded session over the same traffic never evicts.
        let unbounded = p3.session();
        for q in queries {
            unbounded.probability(q, ProbMethod::Exact).unwrap();
        }
        assert_eq!(unbounded.stats().evictions, 0);
    }

    #[test]
    fn explain_attributes_cost_in_both_modes_without_changing_answers() {
        let p3 = P3::from_source(ACQ).unwrap();
        // ACQ is recursive, so the default session explains in demand mode.
        let session = p3.session();
        assert_eq!(session.eval_mode(), EvalMode::Demand);
        let ex = session.explain(Q).unwrap();
        assert_eq!(ex.mode(), "demand");
        assert_eq!(ex.query, Q);
        assert!(ex.plan.total_cost() > 0);
        assert!(
            ex.plan.magic.is_some(),
            "demand plans report magic overhead"
        );
        // The recursive closure rule r3 does the join work in ACQ.
        assert_eq!(ex.plan.rules[0].label, "r3", "{:?}", ex.plan.rules);
        assert!(ex.plan.rules[0].recursive);
        // know(Ben,Elena) has two derivations (via r1/live and r2/like).
        assert_eq!(ex.shape.monomials, 2);
        // Explaining is observation-only: the session still answers
        // exactly as an unexplained run.
        let p = session.probability(Q, ProbMethod::Exact).unwrap();
        assert!((p - 0.16384).abs() < 1e-12);
        // Naive-mode explain carries the whole-program plan, no magic.
        let naive = p3.session_with(SessionOptions {
            eval_mode: EvalMode::Naive,
            ..Default::default()
        });
        let nex = naive.explain(Q).unwrap();
        assert_eq!(nex.mode(), "naive");
        assert!(nex.plan.magic.is_none());
        assert_eq!(nex.shape, ex.shape, "shape is mode-independent");
        // Renderings cover the three surfaces.
        let text = nex.render_text();
        assert!(text.contains("explain: know"), "{text}");
        assert!(text.contains("r3"), "{text}");
        let folded = nex.to_folded();
        assert!(
            folded.lines().any(|l| l.starts_with("p3;naive;r3 ")),
            "{folded}"
        );
        let json = ex.to_json_string();
        assert!(json.contains("\"mode\":\"demand\""), "{json}");
        assert!(json.contains("\"rule\":\"r3\""), "{json}");
        assert!(json.contains("\"magic\":{"), "{json}");
        // Second explain of the same query hits the session caches.
        let warm = session.explain(Q).unwrap();
        assert!(warm.session_hits > 0, "{warm:?}");
        assert_eq!(warm.plan.total_cost(), ex.plan.total_cost());
    }

    #[test]
    fn profile_reports_stages_and_matches_unprofiled_result() {
        let p3 = P3::from_source(ACQ).unwrap();
        // ACQ is recursive, so the default (auto) session runs in demand
        // mode and the profile carries a `transform` stage.
        let session = p3.session();
        assert_eq!(session.eval_mode(), EvalMode::Demand);
        let profile = session
            .profile(
                Q,
                &ProfileTarget::Probability(ProbMethod::Exact),
                ExtractOptions::unbounded(),
            )
            .unwrap();
        assert_eq!(profile.class, "probability");
        assert_eq!(profile.query, Q);
        assert!((profile.probability.unwrap() - 0.16384).abs() < 1e-12);
        let names: Vec<&str> = profile.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["parse", "transform", "extract", "probability"]);
        // A naive session profiles without the transform stage.
        let naive = p3.session_with(SessionOptions {
            eval_mode: EvalMode::Naive,
            ..Default::default()
        });
        let naive_profile = naive
            .profile(
                Q,
                &ProfileTarget::Probability(ProbMethod::Exact),
                ExtractOptions::unbounded(),
            )
            .unwrap();
        let naive_names: Vec<&str> = naive_profile.stages.iter().map(|s| s.name).collect();
        assert_eq!(naive_names, ["parse", "extract", "probability"]);
        assert_eq!(naive_profile.probability, profile.probability);
        // The cold run misses in extract and probability; a second profiled
        // run of the same query is served from the session caches.
        let cold_misses: u64 = profile.stages.iter().map(|s| s.session_misses).sum();
        assert!(cold_misses >= 2, "{profile:?}");
        let warm = session
            .profile(
                Q,
                &ProfileTarget::Probability(ProbMethod::Exact),
                ExtractOptions::unbounded(),
            )
            .unwrap();
        assert_eq!(warm.probability, profile.probability);
        let warm_misses: u64 = warm.stages.iter().map(|s| s.session_misses).sum();
        let warm_hits: u64 = warm.stages.iter().map(|s| s.session_hits).sum();
        assert_eq!(warm_misses, 0, "{warm:?}");
        assert!(warm_hits >= 2, "{warm:?}");
    }

    #[test]
    fn profile_covers_every_query_class() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session();
        let targets: Vec<(ProfileTarget, &str, &str)> = vec![
            (
                ProfileTarget::Explanation(ProbMethod::Exact),
                "explanation",
                "render",
            ),
            (
                ProfileTarget::Derivation {
                    eps: 0.01,
                    algo: DerivationAlgo::NaiveGreedy,
                    method: ProbMethod::Exact,
                },
                "derivation",
                "derivation",
            ),
            (
                ProfileTarget::Influence(InfluenceOptions {
                    method: InfluenceMethod::Exact,
                    ..Default::default()
                }),
                "influence",
                "influence",
            ),
            (
                ProfileTarget::Modification {
                    target: 0.5,
                    opts: ModificationOptions {
                        tolerance: 1e-9,
                        ..Default::default()
                    },
                },
                "modification",
                "modification",
            ),
        ];
        for (target, class, last_stage) in targets {
            let profile = session
                .profile(Q, &target, ExtractOptions::unbounded())
                .unwrap();
            assert_eq!(profile.class, class);
            assert_eq!(profile.stages.last().unwrap().name, last_stage, "{class}");
            assert!(profile.stages.len() >= 3, "{class}: {profile:?}");
            // Influence has no single probability; every other class does.
            assert_eq!(profile.probability.is_none(), class == "influence");
        }
        // Bad queries surface the parse error, not a panic.
        assert!(session
            .profile(
                "bogus(",
                &ProfileTarget::Probability(ProbMethod::Exact),
                ExtractOptions::unbounded(),
            )
            .is_err());
    }

    #[test]
    fn load_program_gate_rejects_unsafe_programs_with_spanned_diagnostics() {
        let src = "t1 0.5: edge(a,b).\nr1 0.9: path(X,Y) :- edge(X,Z), Y != Z.\n";
        let err = match QuerySession::load_program(src) {
            Err(e) => e,
            Ok(_) => panic!("unsafe program must be rejected"),
        };
        match err {
            P3Error::Lint(diags) => {
                assert!(!diags.is_empty());
                assert_eq!(diags[0].code, "P3101");
                let span = diags[0].span.expect("spanned");
                assert_eq!(&src[span.start..span.end], "path(X,Y)");
                assert!(diags[0].line > 0, "located");
            }
            other => panic!("expected lint rejection, got {other}"),
        }
    }

    #[test]
    fn load_program_gate_rejects_unstratified_negation() {
        let src = "t1 0.5: p(a).\nr1 0.9: win(X) :- p(X), \\+ win(X).\n";
        let err = match QuerySession::load_program(src) {
            Err(e) => e,
            Ok(_) => panic!("unstratified program must be rejected"),
        };
        match err {
            P3Error::Lint(diags) => {
                assert!(diags.iter().any(|d| d.code == "P3201"), "{diags:?}");
            }
            other => panic!("expected lint rejection, got {other}"),
        }
    }

    #[test]
    fn load_program_gate_opt_out_falls_back_to_validation() {
        let src = "t1 0.5: edge(a,b).\nr1 0.9: path(X,Y) :- edge(X,Z), Y != Z.\n";
        let opts = LoadOptions {
            lint: false,
            session: SessionOptions::default(),
        };
        let err = match QuerySession::load_program_with(src, opts) {
            Err(e) => e,
            Ok(_) => panic!("validation must still reject"),
        };
        assert!(
            matches!(err, P3Error::Program(_)),
            "validation still rejects: {err}"
        );
    }

    #[test]
    fn load_program_accepts_clean_sources_and_answers_queries() {
        let session = QuerySession::load_program(ACQ).unwrap();
        let p = session.probability(Q, ProbMethod::Exact).unwrap();
        assert!((p - 0.16384).abs() < 1e-12);
    }

    #[test]
    fn demand_session_answers_without_forcing_full_evaluation() {
        let p3 = P3::from_source(ACQ).unwrap();
        let session = p3.session_with(SessionOptions {
            eval_mode: EvalMode::Demand,
            ..Default::default()
        });
        let p = session.probability(Q, ProbMethod::Exact).unwrap();
        assert!((p - 0.16384).abs() < 1e-12);
        assert!(
            !p3.fully_evaluated(),
            "demand queries must not materialise the full model"
        );
        assert_eq!(p3.demand_evaluations(), 1);
        // Underivable and malformed queries keep their error types.
        assert!(matches!(
            session.probability(r#"know("Mary","Elena")"#, ProbMethod::Exact),
            Err(P3Error::NotDerivable(_))
        ));
        assert!(matches!(
            session.probability("know(", ProbMethod::Exact),
            Err(P3Error::BadQuery(_))
        ));
    }

    #[test]
    fn demand_and_naive_sessions_intern_the_same_polynomial() {
        let p3 = P3::from_source(ACQ).unwrap();
        let demand = p3.session_with(SessionOptions {
            eval_mode: EvalMode::Demand,
            ..Default::default()
        });
        let naive = p3.session_with(SessionOptions {
            eval_mode: EvalMode::Naive,
            ..Default::default()
        });
        // Same canonical polynomial → same id in the shared store, so
        // DnfId-keyed caches (probability, influence, …) are shared
        // across modes.
        let d = demand.provenance_id(Q).unwrap();
        let n = naive.provenance_id(Q).unwrap();
        assert_eq!(d, n);
        // Hop limits behave identically too.
        for depth in 0..4 {
            let opts = ExtractOptions::with_max_depth(depth);
            assert_eq!(
                demand.provenance_id_with(Q, opts).unwrap(),
                naive.provenance_id_with(Q, opts).unwrap(),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn sessions_share_nothing_across_what_if_copies() {
        // A what-if copy shares the store/analysis but must not share
        // probability caches — its session is keyed to its own table.
        let p3 = P3::from_source(ACQ).unwrap();
        let r3 = p3.program().clause_by_label("r3").unwrap();
        let var = p3_provenance::vars::var_of(r3);
        let modified = p3.with_probabilities(&[(var, 1.0)]).unwrap();
        let s1 = p3.session();
        let s2 = modified.session();
        let p_orig = s1.probability(Q, ProbMethod::Exact).unwrap();
        let p_mod = s2.probability(Q, ProbMethod::Exact).unwrap();
        assert!((p_orig - 0.16384).abs() < 1e-12);
        assert!((p_mod - 0.8192).abs() < 1e-12);
    }
}
