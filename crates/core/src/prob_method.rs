//! Selecting how `P[λ]` is computed.
//!
//! The paper evaluates polynomial probabilities by Monte-Carlo simulation
//! (the general case is #P-hard); this crate additionally offers the exact
//! Shannon/BDD backends, which double as test oracles and as fast paths for
//! small formulas.

use p3_prob::{bdd::Bdd, exact, mc, parallel, Dnf, McConfig, VarTable};

/// A probability computation strategy.
///
/// `Eq`/`Hash` hold because every variant's payload is integral; query
/// sessions key probability memo tables on `(DnfId, ProbMethod)`. This is
/// sound for the Monte-Carlo variants because estimates are deterministic
/// per [`McConfig::seed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbMethod {
    /// Shannon expansion with independence factoring. Exact; may be
    /// expensive on large, tangled formulas.
    Exact,
    /// Compile to a reduced ordered BDD and weighted-model-count. Exact.
    Bdd,
    /// Naive Monte-Carlo sampling.
    MonteCarlo(McConfig),
    /// The Karp–Luby coverage estimator (better relative error for small
    /// probabilities).
    KarpLuby(McConfig),
    /// Naive Monte-Carlo split across the given number of threads.
    ParallelMc(McConfig, usize),
}

impl Default for ProbMethod {
    fn default() -> Self {
        ProbMethod::MonteCarlo(McConfig::default())
    }
}

impl ProbMethod {
    /// Computes `P[λ]` with this strategy.
    pub fn probability(self, dnf: &Dnf, vars: &VarTable) -> f64 {
        match self {
            ProbMethod::Exact => exact::probability(dnf, vars),
            ProbMethod::Bdd => {
                let mut bdd = Bdd::new();
                let node = bdd.from_dnf(dnf);
                bdd.wmc(node, vars)
            }
            ProbMethod::MonteCarlo(cfg) => mc::estimate(dnf, vars, cfg),
            ProbMethod::KarpLuby(cfg) => mc::karp_luby(dnf, vars, cfg),
            ProbMethod::ParallelMc(cfg, threads) => parallel::estimate(dnf, vars, cfg, threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_prob::Monomial;

    fn setup() -> (Dnf, VarTable) {
        let mut vars = VarTable::new();
        let a = vars.add("a", 0.5);
        let b = vars.add("b", 0.4);
        let c = vars.add("c", 0.2);
        let dnf = Dnf::new(vec![Monomial::new(vec![a, b]), Monomial::new(vec![a, c])]);
        (dnf, vars)
    }

    #[test]
    fn all_methods_agree_within_tolerance() {
        let (dnf, vars) = setup();
        let exact = ProbMethod::Exact.probability(&dnf, &vars);
        let bdd = ProbMethod::Bdd.probability(&dnf, &vars);
        assert!((exact - bdd).abs() < 1e-12);
        let cfg = McConfig {
            samples: 200_000,
            seed: 1,
        };
        for m in [
            ProbMethod::MonteCarlo(cfg),
            ProbMethod::KarpLuby(cfg),
            ProbMethod::ParallelMc(cfg, 4),
        ] {
            let est = m.probability(&dnf, &vars);
            assert!((est - exact).abs() < 0.01, "{m:?}: {est} vs {exact}");
        }
    }

    #[test]
    fn default_is_monte_carlo() {
        assert!(matches!(ProbMethod::default(), ProbMethod::MonteCarlo(_)));
    }
}
