//! Micro-bench: semi-naive evaluation with and without provenance capture
//! (the Criterion companion to Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3_datalog::engine::{Engine, NoopSink};
use p3_provenance::capture::CaptureSink;
use p3_workloads::trust::{self, NetworkConfig};

fn bench_engine(c: &mut Criterion) {
    let net = trust::generate(NetworkConfig {
        nodes: 2000,
        edges: 10_000,
        seed: 5,
        ..NetworkConfig::default()
    });
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &size in &[30usize, 60, 90] {
        let program = net.sample_bfs(size, 11).to_program();
        group.bench_with_input(BenchmarkId::new("no_provenance", size), &size, |b, _| {
            b.iter(|| Engine::new(&program).run(&mut NoopSink))
        });
        group.bench_with_input(BenchmarkId::new("with_capture", size), &size, |b, _| {
            b.iter(|| {
                let mut sink = CaptureSink::new();
                let db = Engine::new(&program).run(&mut sink);
                (db, sink.into_graph())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
