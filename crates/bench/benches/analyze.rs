//! Static-analysis calibration: does `p3 analyze` predict where the cost
//! goes, and is the prediction itself close to free?
//!
//! The workload is a sparse sampled trust network whose transitive-closure
//! rule `r2` dominates measured cost under both eval modes — the regime a
//! mode-independent static prediction can be held to. The bench measures
//! the analysis itself (median over many runs), one cold query per eval
//! mode (fresh system + session, engine evaluation + provenance
//! extraction), and compares the predicted per-rule ranking against the
//! EXPLAIN-measured one. Headline numbers go to `BENCH_analyze.json` at
//! the repository root.
//!
//! Acceptance: predicted top rule matches the measured top rule in both
//! eval modes, Spearman rank correlation against the naive (whole-program)
//! measurement is ≥ 0.6, and analysis wall time is ≤ 5% of one cold query.

use criterion::{criterion_group, Criterion};
use p3_core::{rank_correlation, EvalMode, SessionOptions, P3};
use p3_datalog::program::Program;
use p3_provenance::extract::ExtractOptions;
use p3_workloads::random_programs::all_derived_queries;
use p3_workloads::trust;
use std::time::Instant;

/// The calibration workload: sparse enough that r2 (the recursive
/// trustPath rule) tops the measured plan under naive *and* demand.
fn workload() -> (Program, String) {
    let net = trust::generate(trust::NetworkConfig {
        nodes: 200,
        edges: 260,
        seed: 7,
        ..trust::NetworkConfig::default()
    });
    let sample = net.sample_bfs(80, 11);
    let program = sample.to_program();
    let query = all_derived_queries(&program)
        .into_iter()
        .find(|q| q.starts_with("mutualTrustPath("))
        .expect("sample derives a mutualTrustPath tuple");
    (program, query)
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// One cold query: fresh system, fresh session, engine evaluation and
/// provenance extraction for the queried atom.
fn cold_query(program: &Program, query: &str, mode: EvalMode) {
    let p3 = P3::from_program(program.clone()).expect("workload evaluates");
    let session = p3.session_with(SessionOptions {
        eval_mode: mode,
        ..Default::default()
    });
    session
        .provenance_id_with(query, ExtractOptions::unbounded())
        .expect("query derives");
}

fn bench_analysis(c: &mut Criterion) {
    let (program, query) = workload();
    let mut group = c.benchmark_group("analyze");
    group.bench_function("analyze_program", |b| {
        b.iter(|| p3_analyze::analyze(&program).total_cost())
    });
    group.bench_function("analyze_with_query", |b| {
        b.iter(|| p3_analyze::analyze_query(&program, &query).total_cost())
    });
    group.finish();
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    let (program, query) = workload();

    const ANALYSIS_RUNS: usize = 200;
    let analysis_ns = median_ns(ANALYSIS_RUNS, || {
        p3_analyze::analyze_query(&program, &query);
    });

    const QUERY_RUNS: usize = 15;
    let cold_naive_ns = median_ns(QUERY_RUNS, || cold_query(&program, &query, EvalMode::Naive));
    let cold_demand_ns = median_ns(QUERY_RUNS, || {
        cold_query(&program, &query, EvalMode::Demand)
    });
    // Held to the naive cold query: the whole-program evaluation is what
    // the static model predicts (and what auto mode uses the prediction
    // to avoid). The demand ratio is reported alongside for context.
    let analysis_pct = 100.0 * analysis_ns / cold_naive_ns.max(1.0);
    let analysis_pct_demand = 100.0 * analysis_ns / cold_demand_ns.max(1.0);

    // Prediction vs measurement, per mode.
    let plan = p3_analyze::analyze_query(&program, &query);
    let predicted_top = plan.top_rule().expect("plan has rules").label.clone();
    let predicted: Vec<(String, u64)> = plan
        .rules
        .iter()
        .map(|r| (r.label.clone(), r.cost()))
        .collect();
    let mut measured_top = Vec::new();
    let mut rho_naive = 0.0f64;
    let mut rho_demand = 0.0f64;
    for mode in [EvalMode::Naive, EvalMode::Demand] {
        let p3 = P3::from_program(program.clone()).expect("workload evaluates");
        let session = p3.session_with(SessionOptions {
            eval_mode: mode,
            ..Default::default()
        });
        let explained = session.explain(&query).expect("query explains");
        let measured: Vec<(String, u64)> = explained
            .plan
            .rules
            .iter()
            .map(|r| (r.label.clone(), r.cost()))
            .collect();
        let top = measured
            .iter()
            .find(|(_, c)| *c > 0)
            .or_else(|| measured.first())
            .map(|(l, _)| l.clone())
            .expect("explain has rules");
        let rho = rank_correlation(&predicted, &measured);
        match mode {
            EvalMode::Naive => rho_naive = rho,
            _ => rho_demand = rho,
        }
        measured_top.push((mode.as_str(), top));
    }
    let match_naive = measured_top[0].1 == predicted_top;
    let match_demand = measured_top[1].1 == predicted_top;
    let achieved = match_naive && match_demand && rho_naive >= 0.6 && analysis_pct <= 5.0;

    let json = format!(
        r#"{{
  "workload": {{
    "program": "trust(nodes=200, edges=260, seed=7).sample_bfs(80, 11)",
    "query": "{query}"
  }},
  "analysis_ns": {analysis_ns:.0},
  "cold_query_ns": {{
    "naive": {cold_naive_ns:.0},
    "demand": {cold_demand_ns:.0}
  }},
  "analysis_pct_of_cold_query": {analysis_pct:.3},
  "analysis_pct_of_cold_demand_query": {analysis_pct_demand:.3},
  "top_rule": {{
    "predicted": "{predicted_top}",
    "measured_naive": "{m_naive}",
    "measured_demand": "{m_demand}",
    "match_naive": {match_naive},
    "match_demand": {match_demand}
  }},
  "rank_correlation": {{
    "naive": {rho_naive:.3},
    "demand": {rho_demand:.3}
  }},
  "acceptance": {{
    "top_rule_match_both_modes": {top_match},
    "min_rank_correlation_naive": 0.6,
    "max_analysis_pct_of_cold_query": 5.0,
    "achieved": {achieved}
  }}
}}
"#,
        m_naive = measured_top[0].1,
        m_demand = measured_top[1].1,
        top_match = match_naive && match_demand,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analyze.json");
    std::fs::write(path, &json).expect("write BENCH_analyze.json");
    println!("wrote {path}:\n{json}");
    assert!(
        match_naive && match_demand,
        "predicted top rule '{predicted_top}' must match the measured top \
         rule in both modes (naive '{}', demand '{}')",
        measured_top[0].1,
        measured_top[1].1,
    );
    assert!(
        rho_naive >= 0.6,
        "predicted/measured rank correlation must be >= 0.6 (got {rho_naive:.3})"
    );
    assert!(
        analysis_pct <= 5.0,
        "analysis must cost <= 5% of one cold query (got {analysis_pct:.3}%)"
    );
}

criterion_group!(benches, bench_analysis);

fn main() {
    benches();
    record_json();
}
