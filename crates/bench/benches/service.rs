//! Service throughput: warm-cache requests per second over a Unix-domain
//! socket, 1 client versus 8 concurrent clients against one in-process
//! server (the same accept/queue/worker code path `p3-serve` runs).
//!
//! Every request is a cache hit after warmup, so this measures the wire +
//! dispatch overhead and how well the worker pool overlaps independent
//! connections. Results go to `BENCH_service.json` at the repository
//! root. The ≥3× 8-vs-1 scaling criterion is only asserted when the
//! machine actually has the parallelism for it (≥4 cores) — the JSON
//! records the core count either way.

use p3_core::P3;
use p3_service::client::Client;
use p3_service::protocol::Status;
use p3_service::server::{Server, ServerConfig};
use p3_workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use std::path::Path;
use std::time::Instant;

const CLIENTS_MANY: usize = 8;
/// Round-trips per client per timed run.
const REQUESTS: usize = 400;
const RUNS: usize = 5;

/// A random program plus a bundle of warm request lines mixing the query
/// classes (weighted towards the cheap ones so the bench stresses the
/// transport, not the solver).
fn workload() -> (P3, Vec<String>) {
    let program = generate(RandomConfig {
        domain: 4,
        facts: 14,
        rules: 7,
        recursion_bias: 0.6,
        seed: 20_200_817,
    });
    let queries = all_derived_queries(&program);
    let p3 = P3::from_program(program).expect("workload program evaluates");
    let esc = |q: &str| q.replace('"', "\\\"");
    let mut lines = Vec::new();
    for q in queries.iter().take(6) {
        lines.push(format!(r#"{{"op":"probability","query":"{}"}}"#, esc(q)));
    }
    if let Some(q) = queries.first() {
        lines.push(format!(
            r#"{{"op":"derivation","query":"{}","eps":0.05}}"#,
            esc(q)
        ));
        lines.push(format!(
            r#"{{"op":"influence","query":"{}","method":"exact"}}"#,
            esc(q)
        ));
    }
    assert!(!lines.is_empty(), "workload derives at least one tuple");
    (p3, lines)
}

/// Total wall time for `clients` connections to each push `REQUESTS`
/// round-trips, best (min) of `RUNS` runs; returns requests/second.
fn throughput(socket: &Path, lines: &[String], clients: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || {
                    let mut client = Client::connect_unix(socket).expect("connect");
                    for i in 0..REQUESTS {
                        let line = &lines[(c + i) % lines.len()];
                        let resp = client.request(line).expect("round-trip");
                        assert_eq!(resp.status, Status::Ok, "{line}");
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
    }
    (clients * REQUESTS) as f64 / best
}

fn main() {
    let (p3, lines) = workload();
    let socket = std::env::temp_dir().join(format!("p3-bench-{}.sock", std::process::id()));
    let server = Server::start(
        p3,
        ServerConfig {
            unix: Some(socket.clone()),
            workers: CLIENTS_MANY,
            ..Default::default()
        },
    )
    .expect("start server");

    // Warm every cache: after this pass each request line is a memo hit.
    {
        let mut client = Client::connect_unix(&socket).expect("connect");
        for line in &lines {
            let resp = client.request(line).expect("warmup");
            assert_eq!(resp.status, Status::Ok, "warmup {line}");
        }
    }

    let single = throughput(&socket, &lines, 1);
    let many = throughput(&socket, &lines, CLIENTS_MANY);
    let ratio = many / single.max(1.0);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // 8 clients ping-ponging on one core cannot beat 1 client by parallel
    // execution; only hold the scaling criterion where it is physical.
    let scaling_applicable = cores >= 4;
    let achieved = !scaling_applicable || ratio >= 3.0;

    let json = format!(
        r#"{{
  "transport": "unix",
  "workers": {workers},
  "requests_per_client": {REQUESTS},
  "request_mix": {mix},
  "warm_rps_1_client": {single:.0},
  "warm_rps_{CLIENTS_MANY}_clients": {many:.0},
  "scaling_8_vs_1": {ratio:.2},
  "cores": {cores},
  "acceptance": {{
    "required_scaling": 3.0,
    "applicable": {scaling_applicable},
    "achieved": {achieved}
  }}
}}
"#,
        workers = CLIENTS_MANY,
        mix = lines.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("wrote {path}:\n{json}");

    server.shutdown();
    server.join();

    assert!(
        achieved,
        "8-client warm throughput must be >= 3x single-client on a \
         >=4-core machine (got {ratio:.2}x on {cores} cores)"
    );
}
