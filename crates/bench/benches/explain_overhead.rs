//! EXPLAIN-plane overhead on the paths that pay for it.
//!
//! Per-rule stat collection (firings, join fan-out, per-iteration deltas)
//! is always on by default and accumulates inside the semi-naive join
//! loop — the one place the EXPLAIN plane touches evaluation. This bench
//! measures the real served request path — `load-program` followed by a
//! burst of cold demand queries, so every request forces engine work —
//! with collection disabled and enabled, interleaved against the same
//! live server so clock drift cancels out, plus an engine-level
//! microbench of one full evaluation under both settings. The headline
//! numbers go to `BENCH_explain.json` at the repository root.
//! Acceptance: explain-enabled evaluation costs ≤ 5% of served cold-query
//! latency.

use criterion::{criterion_group, Criterion};
use p3_datalog::engine::{set_rule_stat_collection, Engine};
use p3_datalog::program::Program;
use p3_service::client::Client;
use p3_service::json::Value;
use p3_service::protocol::Status;
use p3_service::server::{Server, ServerConfig};
use p3_workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use std::time::Instant;

/// A tangled recursive workload: enough join and fixpoint work per cold
/// evaluation that collection overhead has something to show up in.
fn workload() -> (Program, Vec<String>) {
    let program = generate(RandomConfig {
        domain: 4,
        facts: 14,
        rules: 7,
        recursion_bias: 0.6,
        seed: 20_200_817,
    });
    let queries = all_derived_queries(&program);
    assert!(!queries.is_empty(), "workload derives tuples");
    (program, queries)
}

fn request_line(pairs: Vec<(&str, Value)>) -> String {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_json()
}

/// One in-process server plus a connected client. Each timed run reloads
/// the program (dropping every warm core and memo) and then answers a
/// burst of demand queries — so the run's cost is dominated by engine
/// evaluation, the only path rule-stat collection touches.
struct ServedSetup {
    server: Server,
    client: Client,
    load_line: String,
    query_lines: Vec<String>,
    socket: std::path::PathBuf,
}

impl ServedSetup {
    fn start() -> ServedSetup {
        let (program, queries) = workload();
        let source = program.to_source();
        let p3 = p3_core::P3::from_program(program).expect("workload program evaluates");
        let socket =
            std::env::temp_dir().join(format!("p3-explain-overhead-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let server = Server::start(
            p3,
            ServerConfig {
                unix: Some(socket.clone()),
                workers: 2,
                ..Default::default()
            },
        )
        .expect("start server");
        let client = Client::connect_unix(&socket).expect("connect");
        let load_line = request_line(vec![
            ("op", Value::from("load-program")),
            ("source", Value::from(source)),
            ("lint", Value::Bool(false)),
        ]);
        let query_lines = queries
            .iter()
            .map(|q| {
                request_line(vec![
                    ("op", Value::from("probability")),
                    ("query", Value::from(q.as_str())),
                    ("eval_mode", Value::from("demand")),
                ])
            })
            .collect();
        let mut setup = ServedSetup {
            server,
            client,
            load_line,
            query_lines,
            socket,
        };
        for _ in 0..5 {
            setup.one_run();
        }
        setup
    }

    /// One cold burst: reload, then answer every workload query on demand.
    fn one_run(&mut self) {
        let resp = self.client.request(&self.load_line).expect("load");
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
        for line in &self.query_lines {
            let resp = self.client.request(line).expect("round-trip");
            assert_eq!(resp.status, Status::Ok, "{line}: {:?}", resp.error);
        }
    }

    /// ns per query over `runs` cold bursts.
    fn run_ns(&mut self, runs: usize) -> f64 {
        let start = Instant::now();
        for _ in 0..runs {
            self.one_run();
        }
        start.elapsed().as_nanos() as f64 / (runs * self.query_lines.len()) as f64
    }

    fn stop(self) {
        drop(self.client);
        self.server.shutdown();
        self.server.join();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_engine_eval(c: &mut Criterion) {
    let (program, _) = workload();
    let mut group = c.benchmark_group("explain_overhead");
    set_rule_stat_collection(false);
    group.bench_function("engine_eval_collection_off", |b| {
        b.iter(|| {
            let mut e = Engine::new(&program);
            e.run_plain();
            e.stats().tuples
        })
    });
    set_rule_stat_collection(true);
    group.bench_function("engine_eval_collection_on", |b| {
        b.iter(|| {
            let mut e = Engine::new(&program);
            e.run_plain();
            e.stats().tuples
        })
    });
    group.finish();
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    let (program, queries) = workload();

    // One full engine evaluation, collection off then on (median).
    const ENGINE_RUNS: usize = 300;
    set_rule_stat_collection(false);
    let engine_off = median_ns(ENGINE_RUNS, || {
        let mut e = Engine::new(&program);
        e.run_plain();
    });
    set_rule_stat_collection(true);
    let engine_on = median_ns(ENGINE_RUNS, || {
        let mut e = Engine::new(&program);
        e.run_plain();
    });
    let engine_overhead_pct = 100.0 * (engine_on - engine_off) / engine_off.max(1.0);

    // The served cold-query path, interleaved best-of against one live
    // server with the toggle flipped between runs, so drift cancels out.
    let mut setup = ServedSetup::start();
    const RUNS_PER_MEASUREMENT: usize = 6;
    const MEASUREMENTS: usize = 9;
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..MEASUREMENTS {
        set_rule_stat_collection(false);
        best_off = best_off.min(setup.run_ns(RUNS_PER_MEASUREMENT));
        set_rule_stat_collection(true);
        best_on = best_on.min(setup.run_ns(RUNS_PER_MEASUREMENT));
    }
    setup.stop();
    set_rule_stat_collection(true);
    let served_overhead_pct = 100.0 * (best_on - best_off) / best_off.max(1.0);

    let json = format!(
        r#"{{
  "workload": {{
    "program": "random_programs(domain=4, facts=14, rules=7, recursion_bias=0.6, seed=20200817)",
    "queries_per_cold_burst": {queries}
  }},
  "engine_eval_ns": {{
    "collection_off": {engine_off:.0},
    "collection_on": {engine_on:.0},
    "overhead_pct": {engine_overhead_pct:.3}
  }},
  "served_cold_query_ns": {{
    "collection_off": {best_off:.0},
    "collection_on": {best_on:.0},
    "overhead_pct": {served_overhead_pct:.3}
  }},
  "acceptance": {{
    "max_explain_overhead_pct": 5.0,
    "achieved": {achieved}
  }}
}}
"#,
        queries = queries.len(),
        achieved = served_overhead_pct <= 5.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explain.json");
    std::fs::write(path, &json).expect("write BENCH_explain.json");
    println!("wrote {path}:\n{json}");
    assert!(
        served_overhead_pct <= 5.0,
        "per-rule stat collection must cost <= 5% of served cold-query \
         latency (got {served_overhead_pct:.3}%)"
    );
}

criterion_group!(benches, bench_engine_eval);

fn main() {
    benches();
    record_json();
}
