//! Micro-bench: influence estimation — exact vs sequential MC vs
//! thread-parallel MC (the Criterion companion to Table 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3_core::query::influence::exact_influence;
use p3_prob::{mc, parallel, Dnf, McConfig, Monomial, VarId, VarTable};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn random_dnf(nvars: usize, nmono: usize, seed: u64) -> (Dnf, VarTable) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut vars = VarTable::new();
    for i in 0..nvars {
        vars.add(format!("x{i}"), rng.random::<f64>());
    }
    let monomials = (0..nmono)
        .map(|_| {
            let len = rng.random_range(2..=4usize);
            Monomial::new(
                (0..len)
                    .map(|_| VarId(rng.random_range(0..nvars) as u32))
                    .collect(),
            )
        })
        .collect();
    (Dnf::new(monomials), vars)
}

fn bench_influence(c: &mut Criterion) {
    let (dnf, vars) = random_dnf(40, 60, 17);
    let cfg = McConfig {
        samples: 5_000,
        seed: 3,
    };
    let x = dnf.vars()[0];

    let mut group = c.benchmark_group("influence");
    group.bench_function("single_exact", |b| {
        b.iter(|| exact_influence(&dnf, &vars, x))
    });
    group.bench_function("single_mc_5k", |b| {
        b.iter(|| mc::influence(&dnf, &vars, x, cfg))
    });
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("all_literals_mc", threads),
            &threads,
            |b, &t| b.iter(|| parallel::influence_all(&dnf, &vars, cfg, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_influence);
criterion_main!(benches);
