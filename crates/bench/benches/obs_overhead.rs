//! Observability overhead on the warm query path.
//!
//! Metric counters are always on (relaxed atomics); span collection
//! defaults off and is only switched on by `p3-serve` or `--trace-out`.
//! This bench measures warm-session query latency with span collection
//! disabled and enabled, counts how many metric-hook updates one warm
//! query triggers, microbenches the cost of a single disabled hook and
//! of one audit-log append (the synchronous framed write `--audit-dir`
//! adds to every request), then measures the real served request path —
//! warm round-trips over a Unix socket against an in-process server —
//! with the audit log off and on. The headline numbers go to
//! `BENCH_obs.json` at the repository root. Acceptance: turning the
//! audit log on costs ≤ 5% of warm served-request latency.

use criterion::{criterion_group, Criterion};
use p3_audit::{AuditConfig, AuditLog, AuditRecord, Outcome, StageTiming};
use p3_core::{ProbMethod, P3};
use p3_service::client::Client;
use p3_service::protocol::Status;
use p3_service::server::{Server, ServerConfig};
use p3_workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use std::time::Instant;

/// Same tangled random workload as the query_session bench: the derived
/// tuple with the largest provenance polynomial.
fn workload() -> (P3, String) {
    let program = generate(RandomConfig {
        domain: 4,
        facts: 14,
        rules: 7,
        recursion_bias: 0.6,
        seed: 20_200_817,
    });
    let queries = all_derived_queries(&program);
    let p3 = P3::from_program(program).expect("workload program evaluates");
    let query = queries
        .iter()
        .max_by_key(|q| p3.provenance(q).map(|d| d.monomials().len()).unwrap_or(0))
        .expect("workload derives at least one tuple")
        .clone();
    (p3, query)
}

/// A representative audit record: realistic string fields and a stage
/// split, so the append microbench pays the same encode cost the
/// server does.
fn audit_record() -> AuditRecord {
    AuditRecord {
        ts_ms: 1_700_000_000_000,
        trace: "bench-trace-0001".into(),
        class: "probability".into(),
        eval_mode: "naive".into(),
        query_hash: p3_audit::fnv1a_64("bench(1,2)"),
        outcome: Outcome::Ok,
        queue_wait_us: 10,
        execute_us: 900,
        total_us: 950,
        stages: vec![
            StageTiming {
                name: "extract".into(),
                wall_us: 700,
            },
            StageTiming {
                name: "probability".into(),
                wall_us: 200,
            },
        ],
        derived_tuples: 40,
        dnf_monomials: 6,
        dnf_literals: 18,
        session_hits: 1,
        session_misses: 0,
        store_records: 0,
        extract_memo_hits: 3,
        extract_memo_misses: 1,
        rule_cost: 120,
        top_rules: vec![("r2".into(), 90), ("r1".into(), 30)],
    }
}

/// Fresh audit log in a scratch directory under the target temp dir.
fn scratch_log(tag: &str) -> (AuditLog, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("p3_obs_overhead_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch audit dir");
    let log = AuditLog::open(AuditConfig::new(&dir)).expect("open scratch audit log");
    (log, dir)
}

/// Monte-Carlo samples per served request: enough that each request does
/// real inference work, small enough to keep the bench fast.
const SERVED_MC_SAMPLES: u64 = 2000;

/// One in-process server plus a connected warm client, ready to time.
struct ServedSetup {
    server: Server,
    client: Client,
    query: String,
    /// Monotonic Monte-Carlo seed, so every request is a distinct piece
    /// of work rather than a session-cache hit. An identical-request
    /// ping-pong would measure audit cost against a request that does
    /// nothing but transport; a stream of distinct inferences is what the
    /// server is for. The raw append cost stays in the JSON so the
    /// transport-only worst case is still visible.
    seed: u64,
    socket: std::path::PathBuf,
}

impl ServedSetup {
    fn start(tag: &str, audit: Option<AuditConfig>) -> ServedSetup {
        let (p3, query) = workload();
        let socket =
            std::env::temp_dir().join(format!("p3-obs-overhead-{tag}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let server = Server::start(
            p3,
            ServerConfig {
                unix: Some(socket.clone()),
                workers: 2,
                audit,
                ..Default::default()
            },
        )
        .expect("start server");
        let client = Client::connect_unix(&socket).expect("connect");
        let mut setup = ServedSetup {
            server,
            client,
            query: query.replace('"', "\\\""),
            seed: 0,
            socket,
        };
        for _ in 0..50 {
            setup.one_request();
        }
        setup
    }

    fn one_request(&mut self) {
        self.seed += 1;
        let line = format!(
            r#"{{"op":"probability","query":"{}","method":"mc","samples":{SERVED_MC_SAMPLES},"seed":{}}}"#,
            self.query, self.seed
        );
        let resp = self.client.request(&line).expect("round-trip");
        assert_eq!(resp.status, Status::Ok, "{line}");
    }

    /// ns per round-trip over one timed run.
    fn run_ns(&mut self, round_trips: usize) -> f64 {
        let start = Instant::now();
        for _ in 0..round_trips {
            self.one_request();
        }
        start.elapsed().as_nanos() as f64 / round_trips as f64
    }

    fn stop(self) {
        drop(self.client);
        self.server.shutdown();
        self.server.join();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Warm request latency with the audit log off and on, measured as
/// best-of interleaved runs against two live servers so clock-speed
/// drift between the measurements cancels out.
fn served_latency_off_on_ns(audit: AuditConfig) -> (f64, f64) {
    let mut off = ServedSetup::start("off", None);
    let mut on = ServedSetup::start("on", Some(audit));
    const ROUND_TRIPS: usize = 400;
    const RUNS: usize = 9;
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..RUNS {
        best_off = best_off.min(off.run_ns(ROUND_TRIPS));
        best_on = best_on.min(on.run_ns(ROUND_TRIPS));
    }
    off.stop();
    on.stop();
    (best_off, best_on)
}

/// Sum of every counter sample and histogram count in the metric
/// registry — the delta across a block of work counts its hook updates.
fn hook_activity() -> f64 {
    p3_obs::metrics::prometheus_text()
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .filter(|line| {
            let name = line.split(['{', ' ']).next().unwrap_or("");
            name.ends_with("_total") || name.ends_with("_count")
        })
        .map(|line| {
            line.rsplit(' ')
                .next()
                .unwrap()
                .parse::<f64>()
                .unwrap_or(0.0)
        })
        .sum()
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_hooks");
    group.bench_function("counter_inc", |b| {
        let counter =
            p3_obs::counter!("bench_obs_counter_total", "obs_overhead microbench counter");
        b.iter(|| counter.inc())
    });
    group.bench_function("histogram_observe", |b| {
        let hist = p3_obs::histogram!("bench_obs_latency", "obs_overhead microbench histogram");
        b.iter(|| hist.observe(17))
    });
    p3_obs::span::set_enabled(false);
    group.bench_function("span_disabled", |b| b.iter(|| p3_obs::span::span("bench")));
    p3_obs::span::set_enabled(true);
    group.bench_function("span_enabled", |b| b.iter(|| p3_obs::span::span("bench")));
    p3_obs::span::set_enabled(false);
    p3_obs::span::clear();
    group.finish();
}

fn bench_audit_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_audit");
    let (log, dir) = scratch_log("bench");
    let record = audit_record();
    group.bench_function("audit_append", |b| b.iter(|| log.append(record.clone())));
    group.finish();
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_warm_queries(c: &mut Criterion) {
    let (p3, query) = workload();
    let session = p3.session();
    session.probability(&query, ProbMethod::Exact).unwrap();

    let mut group = c.benchmark_group("obs_overhead");
    p3_obs::span::set_enabled(false);
    group.bench_function("warm_probability_spans_off", |b| {
        b.iter(|| session.probability(&query, ProbMethod::Exact).unwrap())
    });
    p3_obs::span::set_enabled(true);
    group.bench_function("warm_probability_spans_on", |b| {
        b.iter(|| session.probability(&query, ProbMethod::Exact).unwrap())
    });
    p3_obs::span::set_enabled(false);
    p3_obs::span::clear();
    group.finish();
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    let (p3, query) = workload();
    let session = p3.session();
    session.probability(&query, ProbMethod::Exact).unwrap();
    const RUNS: usize = 2000;

    // Hook updates one warm query triggers, measured over a block.
    const BLOCK: usize = 1000;
    let before = hook_activity();
    for _ in 0..BLOCK {
        session.probability(&query, ProbMethod::Exact).unwrap();
    }
    let hooks_per_query = (hook_activity() - before) / BLOCK as f64;

    // Single-hook costs.
    let counter = p3_obs::counter!("bench_obs_json_total", "obs_overhead record_json counter");
    let counter_ns = median_ns(50, || {
        for _ in 0..1000 {
            counter.inc();
        }
    }) / 1000.0;
    p3_obs::span::set_enabled(false);
    let span_disabled_ns = median_ns(50, || {
        for _ in 0..1000 {
            drop(p3_obs::span::span("bench"));
        }
    }) / 1000.0;

    // Warm query latency, spans off then on.
    let warm_off = median_ns(RUNS, || {
        session.probability(&query, ProbMethod::Exact).unwrap();
    });
    p3_obs::span::set_enabled(true);
    let warm_on = median_ns(RUNS, || {
        session.probability(&query, ProbMethod::Exact).unwrap();
    });
    p3_obs::span::set_enabled(false);
    p3_obs::span::clear();

    // One audit-log append: the synchronous framed write that
    // `--audit-dir` adds to every request.
    let (log, audit_dir) = scratch_log("json");
    let record = audit_record();
    let audit_append_ns = median_ns(200, || {
        for _ in 0..50 {
            log.append(record.clone()).expect("audit append");
        }
    }) / 50.0;
    drop(log);
    let _ = std::fs::remove_dir_all(&audit_dir);

    // Disabled-mode cost estimate vs a build with no hooks at all: every
    // hook a warm query touches is a counter-class update (disabled spans
    // are cheaper still), priced at the measured single-hook cost.
    let hook_ns_per_query = hooks_per_query * counter_ns.max(span_disabled_ns);
    let disabled_overhead_pct = 100.0 * hook_ns_per_query / warm_off.max(1.0);
    let spans_on_overhead_pct = 100.0 * (warm_on - warm_off) / warm_off.max(1.0);

    // The real served request path, audit off then on. The in-process
    // query above is a bare memo hit; a request additionally pays parse,
    // dispatch, queue, and socket costs, and that full path is what the
    // audit append rides on — so the acceptance ratio uses it.
    let serve_dir =
        std::env::temp_dir().join(format!("p3_obs_overhead_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_dir);
    std::fs::create_dir_all(&serve_dir).expect("serve audit dir");
    let (served_off_ns, served_on_ns) = served_latency_off_on_ns(AuditConfig::new(&serve_dir));
    let _ = std::fs::remove_dir_all(&serve_dir);
    let audit_on_overhead_pct = 100.0 * (served_on_ns - served_off_ns) / served_off_ns.max(1.0);

    let json = format!(
        r#"{{
  "workload": {{
    "program": "random_programs(domain=4, facts=14, rules=7, recursion_bias=0.6, seed=20200817)",
    "query": "{query}"
  }},
  "warm_probability_ns": {{
    "spans_disabled": {warm_off:.0},
    "spans_enabled": {warm_on:.0},
    "spans_enabled_overhead_pct": {spans_on_overhead_pct:.2}
  }},
  "disabled_hook_cost_ns": {{
    "counter_inc": {counter_ns:.2},
    "span_disabled": {span_disabled_ns:.2}
  }},
  "hooks_per_warm_query": {hooks_per_query:.1},
  "audit_append_ns": {audit_append_ns:.0},
  "served_request_ns": {{
    "audit_off": {served_off_ns:.0},
    "audit_on": {served_on_ns:.0}
  }},
  "acceptance": {{
    "max_audit_overhead_pct": 5.0,
    "disabled_overhead_pct_estimate": {disabled_overhead_pct:.3},
    "audit_on_overhead_pct": {audit_on_overhead_pct:.3},
    "achieved": {achieved}
  }}
}}
"#,
        achieved = audit_on_overhead_pct <= 5.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}:\n{json}");
    assert!(
        audit_on_overhead_pct <= 5.0,
        "turning the audit log on must cost <= 5% of warm served-request \
         latency (got {audit_on_overhead_pct:.3}%)"
    );
}

criterion_group!(benches, bench_hooks, bench_audit_append, bench_warm_queries);

fn main() {
    benches();
    record_json();
}
