//! Observability overhead on the warm query path.
//!
//! Metric counters are always on (relaxed atomics); span collection
//! defaults off and is only switched on by `p3-serve` or `--trace-out`.
//! This bench measures warm-session query latency with span collection
//! disabled and enabled, counts how many metric-hook updates one warm
//! query triggers, microbenches the cost of a single disabled hook, and
//! writes the headline numbers to `BENCH_obs.json` at the repository
//! root. Acceptance: the estimated disabled-mode overhead (hook cost ×
//! hooks per query) stays ≤ 5% of the warm query latency.

use criterion::{criterion_group, Criterion};
use p3_core::{ProbMethod, P3};
use p3_workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use std::time::Instant;

/// Same tangled random workload as the query_session bench: the derived
/// tuple with the largest provenance polynomial.
fn workload() -> (P3, String) {
    let program = generate(RandomConfig {
        domain: 4,
        facts: 14,
        rules: 7,
        recursion_bias: 0.6,
        seed: 20_200_817,
    });
    let queries = all_derived_queries(&program);
    let p3 = P3::from_program(program).expect("workload program evaluates");
    let query = queries
        .iter()
        .max_by_key(|q| p3.provenance(q).map(|d| d.monomials().len()).unwrap_or(0))
        .expect("workload derives at least one tuple")
        .clone();
    (p3, query)
}

/// Sum of every counter sample and histogram count in the metric
/// registry — the delta across a block of work counts its hook updates.
fn hook_activity() -> f64 {
    p3_obs::metrics::prometheus_text()
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .filter(|line| {
            let name = line.split(['{', ' ']).next().unwrap_or("");
            name.ends_with("_total") || name.ends_with("_count")
        })
        .map(|line| {
            line.rsplit(' ')
                .next()
                .unwrap()
                .parse::<f64>()
                .unwrap_or(0.0)
        })
        .sum()
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_hooks");
    group.bench_function("counter_inc", |b| {
        let counter =
            p3_obs::counter!("bench_obs_counter_total", "obs_overhead microbench counter");
        b.iter(|| counter.inc())
    });
    group.bench_function("histogram_observe", |b| {
        let hist = p3_obs::histogram!("bench_obs_latency", "obs_overhead microbench histogram");
        b.iter(|| hist.observe(17))
    });
    p3_obs::span::set_enabled(false);
    group.bench_function("span_disabled", |b| b.iter(|| p3_obs::span::span("bench")));
    p3_obs::span::set_enabled(true);
    group.bench_function("span_enabled", |b| b.iter(|| p3_obs::span::span("bench")));
    p3_obs::span::set_enabled(false);
    p3_obs::span::clear();
    group.finish();
}

fn bench_warm_queries(c: &mut Criterion) {
    let (p3, query) = workload();
    let session = p3.session();
    session.probability(&query, ProbMethod::Exact).unwrap();

    let mut group = c.benchmark_group("obs_overhead");
    p3_obs::span::set_enabled(false);
    group.bench_function("warm_probability_spans_off", |b| {
        b.iter(|| session.probability(&query, ProbMethod::Exact).unwrap())
    });
    p3_obs::span::set_enabled(true);
    group.bench_function("warm_probability_spans_on", |b| {
        b.iter(|| session.probability(&query, ProbMethod::Exact).unwrap())
    });
    p3_obs::span::set_enabled(false);
    p3_obs::span::clear();
    group.finish();
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    let (p3, query) = workload();
    let session = p3.session();
    session.probability(&query, ProbMethod::Exact).unwrap();
    const RUNS: usize = 2000;

    // Hook updates one warm query triggers, measured over a block.
    const BLOCK: usize = 1000;
    let before = hook_activity();
    for _ in 0..BLOCK {
        session.probability(&query, ProbMethod::Exact).unwrap();
    }
    let hooks_per_query = (hook_activity() - before) / BLOCK as f64;

    // Single-hook costs.
    let counter = p3_obs::counter!("bench_obs_json_total", "obs_overhead record_json counter");
    let counter_ns = median_ns(50, || {
        for _ in 0..1000 {
            counter.inc();
        }
    }) / 1000.0;
    p3_obs::span::set_enabled(false);
    let span_disabled_ns = median_ns(50, || {
        for _ in 0..1000 {
            drop(p3_obs::span::span("bench"));
        }
    }) / 1000.0;

    // Warm query latency, spans off then on.
    let warm_off = median_ns(RUNS, || {
        session.probability(&query, ProbMethod::Exact).unwrap();
    });
    p3_obs::span::set_enabled(true);
    let warm_on = median_ns(RUNS, || {
        session.probability(&query, ProbMethod::Exact).unwrap();
    });
    p3_obs::span::set_enabled(false);
    p3_obs::span::clear();

    // Disabled-mode cost estimate vs a build with no hooks at all: every
    // hook a warm query touches is a counter-class update (disabled spans
    // are cheaper still), priced at the measured single-hook cost.
    let hook_ns_per_query = hooks_per_query * counter_ns.max(span_disabled_ns);
    let disabled_overhead_pct = 100.0 * hook_ns_per_query / warm_off.max(1.0);
    let spans_on_overhead_pct = 100.0 * (warm_on - warm_off) / warm_off.max(1.0);

    let json = format!(
        r#"{{
  "workload": {{
    "program": "random_programs(domain=4, facts=14, rules=7, recursion_bias=0.6, seed=20200817)",
    "query": "{query}"
  }},
  "warm_probability_ns": {{
    "spans_disabled": {warm_off:.0},
    "spans_enabled": {warm_on:.0},
    "spans_enabled_overhead_pct": {spans_on_overhead_pct:.2}
  }},
  "disabled_hook_cost_ns": {{
    "counter_inc": {counter_ns:.2},
    "span_disabled": {span_disabled_ns:.2}
  }},
  "hooks_per_warm_query": {hooks_per_query:.1},
  "acceptance": {{
    "max_disabled_overhead_pct": 5.0,
    "disabled_overhead_pct_estimate": {disabled_overhead_pct:.3},
    "achieved": {achieved}
  }}
}}
"#,
        achieved = disabled_overhead_pct <= 5.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}:\n{json}");
    assert!(
        disabled_overhead_pct <= 5.0,
        "disabled-mode observability overhead must stay <= 5% of warm query \
         latency (got {disabled_overhead_pct:.3}%)"
    );
}

criterion_group!(benches, bench_hooks, bench_warm_queries);

fn main() {
    benches();
    record_json();
}
