//! Warm-restart workload: first-query latency of a cold session (full
//! extraction + exact probability) versus a session warm-booted from a
//! `p3-store` file backend written by a previous "process" (same directory,
//! same program fingerprint — exactly what `p3-serve --store-dir` replays).
//!
//! Besides the criterion group, `main` records cold-vs-warm first-query
//! wall times to `BENCH_warm_boot.json` at the repository root; the warm
//! first query must be ≥ 5× faster than the cold one.

use criterion::{criterion_group, Criterion};
use p3_core::{ProbMethod, QuerySession, P3};
use p3_store::{FileBackend, Record, StorageBackend};
use p3_workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CFG: RandomConfig = RandomConfig {
    domain: 4,
    facts: 14,
    rules: 7,
    recursion_bias: 0.6,
    seed: 20_200_817,
};

/// Stands in for the program content hash `p3-serve` would compute; the
/// writer and every reader agree on it, so the store is never stale.
const FINGERPRINT: u64 = 0x7033;

/// A fresh engine + session over the generated program, plus its derived
/// queries with the most tangled one (largest polynomial) first.
fn workload() -> (P3, Vec<String>) {
    let program = generate(CFG);
    let mut queries = all_derived_queries(&program);
    let p3 = P3::from_program(program).expect("workload program evaluates");
    queries.sort_by_key(|q| {
        std::cmp::Reverse(p3.provenance(q).map(|d| d.monomials().len()).unwrap_or(0))
    });
    assert!(!queries.is_empty(), "workload derives at least one tuple");
    (p3, queries)
}

/// Simulates the previous server run: journal every query through a file
/// backend in `dir`, compact, and return the records a warm boot replays.
fn write_store(dir: &PathBuf) -> Vec<Record> {
    let _ = std::fs::remove_dir_all(dir);
    let (p3, queries) = workload();
    let session = p3.session();
    let opened = FileBackend::open(dir, FINGERPRINT).expect("open store");
    let backend = std::sync::Arc::new(opened.backend);
    session.attach_store(backend.clone());
    for q in &queries {
        session.probability(q, ProbMethod::Exact).unwrap();
    }
    backend.flush().unwrap();
    let records = session.export_records();
    backend.snapshot(&records).unwrap();

    // What the next boot actually reads back off disk.
    let reopened = FileBackend::open(dir, FINGERPRINT).expect("reopen store");
    assert!(
        reopened.report.snapshot_records > 0,
        "compaction left no snapshot"
    );
    reopened.records
}

fn cold_session() -> QuerySession {
    let (p3, _) = workload();
    p3.session()
}

fn warm_session(records: &[Record]) -> QuerySession {
    let session = cold_session();
    let restored = session.restore_records(records);
    assert!(restored.memos() > 0, "warm boot restored no memos");
    session
}

fn bench_warm_boot(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("p3-bench-warm-{}", std::process::id()));
    let records = write_store(&dir);
    let (_, queries) = workload();
    let query = queries[0].clone();

    let mut group = c.benchmark_group("warm_boot");
    group.bench_function("first_query_cold", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let session = cold_session();
                let start = Instant::now();
                session.probability(&query, ProbMethod::Exact).unwrap();
                total += start.elapsed();
            }
            total
        })
    });
    group.bench_function("first_query_warm", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let session = warm_session(&records);
                let start = Instant::now();
                session.probability(&query, ProbMethod::Exact).unwrap();
                total += start.elapsed();
            }
            total
        })
    });
    group.bench_function("replay_records", |b| b.iter(|| warm_session(&records)));
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    let dir = std::env::temp_dir().join(format!("p3-bench-warm-json-{}", std::process::id()));
    let records = write_store(&dir);
    let (_, queries) = workload();
    let query = queries[0].clone();
    const RUNS: usize = 25;

    // Cold: a fresh engine answers its first query from scratch.
    let mut sessions: Vec<QuerySession> = (0..RUNS).map(|_| cold_session()).collect();
    let cold_first = median_ns(RUNS, || {
        let session = sessions.pop().unwrap();
        session.probability(&query, ProbMethod::Exact).unwrap();
    });

    // Warm: the replay itself, and the first query after it (a memo hit).
    let replay = median_ns(RUNS, || {
        warm_session(&records);
    });
    let mut sessions: Vec<QuerySession> = (0..RUNS).map(|_| warm_session(&records)).collect();
    let warm_first = median_ns(RUNS, || {
        let session = sessions.pop().unwrap();
        session.probability(&query, ProbMethod::Exact).unwrap();
    });

    let speedup = cold_first / warm_first.max(1.0);
    let json = format!(
        r#"{{
  "workload": {{
    "program": "random_programs(domain=4, facts=14, rules=7, recursion_bias=0.6, seed=20200817)",
    "query": "{query}",
    "queries_journaled": {journaled},
    "records_replayed": {replayed}
  }},
  "first_query_exact_ns": {{
    "cold": {cold_first:.0},
    "warm": {warm_first:.0},
    "replay_records": {replay:.0},
    "speedup_warm_vs_cold": {speedup:.1}
  }},
  "acceptance": {{
    "required_speedup": 5.0,
    "achieved": {achieved}
  }}
}}
"#,
        journaled = queries.len(),
        replayed = records.len(),
        achieved = speedup >= 5.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_warm_boot.json");
    std::fs::write(path, &json).expect("write BENCH_warm_boot.json");
    println!("wrote {path}:\n{json}");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        speedup >= 5.0,
        "warm first query must be >= 5x faster than cold (got {speedup:.1}x)"
    );
}

criterion_group!(benches, bench_warm_boot);

fn main() {
    benches();
    record_json();
}
