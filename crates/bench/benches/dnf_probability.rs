//! Micro-bench: `P[λ]` computation across backends (exact Shannon, BDD
//! weighted model counting, naive Monte-Carlo, Karp–Luby) on provenance
//! polynomials of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3_prob::{bdd::Bdd, exact, mc, Dnf, McConfig, Monomial, VarId, VarTable};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A random chain-structured DNF: `k` monomials of 3 literals over `2k`
/// variables with 1-variable overlap between neighbours (keeps exact
/// computation tractable at all sizes).
fn chain_dnf(k: usize, seed: u64) -> (Dnf, VarTable) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut vars = VarTable::new();
    for i in 0..(2 * k + 1) {
        vars.add(format!("x{i}"), rng.random::<f64>());
    }
    let monomials = (0..k)
        .map(|i| {
            Monomial::new(vec![
                VarId(2 * i as u32),
                VarId(2 * i as u32 + 1),
                VarId(2 * i as u32 + 2),
            ])
        })
        .collect();
    (Dnf::new(monomials), vars)
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnf_probability");
    for &k in &[4usize, 16, 64] {
        let (dnf, vars) = chain_dnf(k, 7);
        group.bench_with_input(BenchmarkId::new("exact_shannon", k), &k, |b, _| {
            b.iter(|| exact::probability(&dnf, &vars))
        });
        group.bench_with_input(BenchmarkId::new("bdd_wmc", k), &k, |b, _| {
            b.iter(|| {
                let mut bdd = Bdd::new();
                let node = bdd.from_dnf(&dnf);
                bdd.wmc(node, &vars)
            })
        });
        let cfg = McConfig {
            samples: 10_000,
            seed: 3,
        };
        group.bench_with_input(BenchmarkId::new("mc_naive_10k", k), &k, |b, _| {
            b.iter(|| mc::estimate(&dnf, &vars, cfg))
        });
        group.bench_with_input(BenchmarkId::new("karp_luby_10k", k), &k, |b, _| {
            b.iter(|| mc::karp_luby(&dnf, &vars, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
