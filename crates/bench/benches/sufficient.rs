//! Micro-bench: sufficient-provenance algorithms — naive greedy vs the
//! Ré–Suciu recursion (the Criterion companion to Figure 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3_core::{sufficient_provenance, DerivationAlgo, ProbMethod};
use p3_prob::{Dnf, McConfig, Monomial, VarId, VarTable};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn random_dnf(nvars: usize, nmono: usize, seed: u64) -> (Dnf, VarTable) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut vars = VarTable::new();
    for i in 0..nvars {
        vars.add(format!("x{i}"), rng.random::<f64>());
    }
    let monomials = (0..nmono)
        .map(|_| {
            let len = rng.random_range(2..=4usize);
            Monomial::new(
                (0..len)
                    .map(|_| VarId(rng.random_range(0..nvars) as u32))
                    .collect(),
            )
        })
        .collect();
    (Dnf::new(monomials), vars)
}

fn bench_sufficient(c: &mut Criterion) {
    let mut group = c.benchmark_group("sufficient_provenance");
    group.sample_size(10);
    let method = ProbMethod::MonteCarlo(McConfig {
        samples: 5_000,
        seed: 4,
    });
    for &nmono in &[20usize, 80] {
        let (dnf, vars) = random_dnf(30, nmono, 23);
        for (name, algo) in [
            ("naive_greedy", DerivationAlgo::NaiveGreedy),
            ("re_suciu", DerivationAlgo::ReSuciu),
        ] {
            group.bench_with_input(BenchmarkId::new(name, nmono), &nmono, |b, _| {
                b.iter(|| sufficient_provenance(&dnf, &vars, 0.02, algo, method))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sufficient);
criterion_main!(benches);
