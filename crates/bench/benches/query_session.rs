//! Repeated-query workload: the same tuple queried N times, directly (the
//! uncached seed path: extract + rank per call) versus through a
//! [`QuerySession`] (hash-consed store + memo tables; the first call pays,
//! later calls are lookups).
//!
//! Besides the criterion groups, `main` records first-vs-repeat wall times
//! to `BENCH_query_session.json` at the repository root; the repeat path
//! must be ≥ 5× faster than the uncached path.

use criterion::{criterion_group, Criterion};
use p3_core::{InfluenceMethod, InfluenceOptions, ProbMethod, P3};
use p3_workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use std::time::{Duration, Instant};

/// A random program with a reasonably tangled derived tuple: the query
/// whose polynomial has the most monomials.
fn workload() -> (P3, String) {
    let program = generate(RandomConfig {
        domain: 4,
        facts: 14,
        rules: 7,
        recursion_bias: 0.6,
        seed: 20_200_817,
    });
    let queries = all_derived_queries(&program);
    let p3 = P3::from_program(program).expect("workload program evaluates");
    let query = queries
        .iter()
        .max_by_key(|q| p3.provenance(q).map(|d| d.monomials().len()).unwrap_or(0))
        .expect("workload derives at least one tuple")
        .clone();
    (p3, query)
}

fn influence_opts() -> InfluenceOptions {
    InfluenceOptions {
        method: InfluenceMethod::Exact,
        ..Default::default()
    }
}

fn bench_repeated_queries(c: &mut Criterion) {
    let (p3, query) = workload();
    let opts = influence_opts();

    let mut group = c.benchmark_group("query_session");
    // Seed path: every call re-extracts the polynomial and re-ranks
    // every literal from scratch.
    group.bench_function("influence_uncached", |b| {
        b.iter(|| {
            let dnf = p3.provenance(&query).unwrap();
            p3_core::influence_query(&dnf, p3.vars(), &opts)
        })
    });
    // Session first call: extraction + ranking once, through the store.
    group.bench_function("influence_session_first", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let session = p3.session();
                let start = Instant::now();
                session.influence(&query, &opts).unwrap();
                total += start.elapsed();
            }
            total
        })
    });
    // Session repeat: pure cache hit.
    let warm = p3.session();
    warm.influence(&query, &opts).unwrap();
    group.bench_function("influence_session_repeat", |b| {
        b.iter(|| warm.influence(&query, &opts).unwrap())
    });
    group.bench_function("probability_uncached", |b| {
        b.iter(|| p3.probability(&query, ProbMethod::Exact).unwrap())
    });
    group.bench_function("probability_session_repeat", |b| {
        b.iter(|| warm.probability(&query, ProbMethod::Exact).unwrap())
    });
    group.finish();
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    let (p3, query) = workload();
    let opts = influence_opts();
    const RUNS: usize = 25;

    // Uncached seed path, per call.
    let uncached_influence = median_ns(RUNS, || {
        let dnf = p3.provenance(&query).unwrap();
        p3_core::influence_query(&dnf, p3.vars(), &opts);
    });
    let uncached_probability = median_ns(RUNS, || {
        p3.probability(&query, ProbMethod::Exact).unwrap();
    });

    // Session: first call per fresh session, then repeats on a warm one.
    let first_influence = median_ns(RUNS, || {
        p3.session().influence(&query, &opts).unwrap();
    });
    let session = p3.session();
    session.influence(&query, &opts).unwrap();
    session.probability(&query, ProbMethod::Exact).unwrap();
    let repeat_influence = median_ns(RUNS * 40, || {
        session.influence(&query, &opts).unwrap();
    });
    let repeat_probability = median_ns(RUNS * 40, || {
        session.probability(&query, ProbMethod::Exact).unwrap();
    });

    let speedup_vs_uncached = uncached_influence / repeat_influence.max(1.0);
    let speedup_vs_first = first_influence / repeat_influence.max(1.0);
    let json = format!(
        r#"{{
  "workload": {{
    "program": "random_programs(domain=4, facts=14, rules=7, recursion_bias=0.6, seed=20200817)",
    "query": "{query}",
    "monomials": {monomials},
    "literals": {literals}
  }},
  "influence_exact_ns": {{
    "uncached_per_call": {uncached_influence:.0},
    "session_first_call": {first_influence:.0},
    "session_repeat_call": {repeat_influence:.0},
    "speedup_repeat_vs_uncached": {speedup_vs_uncached:.1},
    "speedup_repeat_vs_first": {speedup_vs_first:.1}
  }},
  "probability_exact_ns": {{
    "uncached_per_call": {uncached_probability:.0},
    "session_repeat_call": {repeat_probability:.0},
    "speedup_repeat_vs_uncached": {speedup_prob:.1}
  }},
  "acceptance": {{
    "required_speedup": 5.0,
    "achieved": {achieved}
  }}
}}
"#,
        query = query,
        monomials = p3.provenance(&query).unwrap().monomials().len(),
        literals = p3.provenance(&query).unwrap().vars().len(),
        speedup_prob = uncached_probability / repeat_probability.max(1.0),
        achieved = speedup_vs_uncached >= 5.0,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_query_session.json"
    );
    std::fs::write(path, &json).expect("write BENCH_query_session.json");
    println!("wrote {path}:\n{json}");
    assert!(
        speedup_vs_uncached >= 5.0,
        "repeat influence must be >= 5x faster than the uncached path \
         (got {speedup_vs_uncached:.1}x)"
    );
}

criterion_group!(benches, bench_repeated_queries);

fn main() {
    benches();
    record_json();
}
