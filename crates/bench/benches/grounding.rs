//! Grounding workload: naive whole-model evaluation versus query-directed
//! (demand) evaluation on the synthetic trust network, at growing BFS
//! sample sizes.
//!
//! Naive evaluation materializes the full transitive-closure model —
//! every `trustPath` pair — before any query can be answered; demand
//! evaluation magic-transforms the program for one ground query and only
//! derives the query-relevant fragment (plus the magic/demand tuples that
//! steer it). Besides the criterion groups, `main` records derived-tuple
//! counts and wall times per size to `BENCH_grounding.json` at the
//! repository root; at the largest size the demand engine must derive at
//! most half the tuples of the naive engine, in less wall time.

use criterion::{criterion_group, BenchmarkId, Criterion};
use p3_datalog::ast::Const;
use p3_datalog::engine::Database;
use p3_datalog::program::Program;
use p3_datalog::symbol::Symbol;
use p3_provenance::capture::evaluate_with_provenance;
use p3_provenance::demand::evaluate_query_with_provenance;
use p3_workloads::trust::{self, NetworkConfig};
use std::time::Instant;

const SIZES: &[usize] = &[30, 60, 90];

fn programs() -> Vec<(usize, Program)> {
    let net = trust::generate(NetworkConfig {
        nodes: 2000,
        edges: 10_000,
        seed: 5,
        ..NetworkConfig::default()
    });
    SIZES
        .iter()
        .map(|&size| (size, net.sample_bfs(size, 11).to_program()))
        .collect()
}

/// The benchmark query for one program: the last `trustPath` tuple the
/// naive engine derives — deterministically the "deepest" entry in
/// insertion order, so demand evaluation cannot shortcut via a base fact.
fn pick_query(program: &Program, db: &Database) -> (Symbol, Vec<Const>) {
    let pred = program.symbols().get("trustPath").expect("trust rules");
    let tuples = db.relation(pred).expect("closure is non-empty").tuples();
    let last = *tuples.last().expect("closure is non-empty");
    (pred, db.tuple(last).args.to_vec())
}

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding");
    group.sample_size(10);
    for (size, program) in programs() {
        let (naive_db, _) = evaluate_with_provenance(&program);
        let (pred, args) = pick_query(&program, &naive_db);
        group.bench_with_input(BenchmarkId::new("naive", size), &size, |b, _| {
            b.iter(|| evaluate_with_provenance(&program))
        });
        group.bench_with_input(BenchmarkId::new("demand", size), &size, |b, _| {
            b.iter(|| evaluate_query_with_provenance(&program, pred, &args).unwrap())
        });
    }
    group.finish();
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Records the headline numbers the acceptance criteria care about.
fn record_json() {
    const RUNS: usize = 9;
    let mut entries = Vec::new();
    let mut largest_ratio = 0.0f64;
    let mut largest_speedup = 0.0f64;
    for (size, program) in programs() {
        let (naive_db, _) = evaluate_with_provenance(&program);
        let (pred, args) = pick_query(&program, &naive_db);
        let demand = evaluate_query_with_provenance(&program, pred, &args).unwrap();

        let naive_tuples = naive_db.len();
        // Everything the demand engine materialized: the query-relevant
        // source fragment plus the magic tuples that steered it.
        let demand_tuples = demand.stats.relevant_tuples + demand.stats.magic_tuples;
        let naive_ns = median_ns(RUNS, || {
            evaluate_with_provenance(&program);
        });
        let demand_ns = median_ns(RUNS, || {
            evaluate_query_with_provenance(&program, pred, &args).unwrap();
        });
        let ratio = naive_tuples as f64 / demand_tuples.max(1) as f64;
        let speedup = naive_ns / demand_ns.max(1.0);
        entries.push(format!(
            r#"    {{
      "nodes": {size},
      "naive": {{ "derived_tuples": {naive_tuples}, "wall_ns": {naive_ns:.0} }},
      "demand": {{
        "derived_tuples": {demand_tuples},
        "relevant_tuples": {relevant},
        "magic_tuples": {magic},
        "wall_ns": {demand_ns:.0}
      }},
      "tuple_ratio": {ratio:.1},
      "speedup": {speedup:.1}
    }}"#,
            relevant = demand.stats.relevant_tuples,
            magic = demand.stats.magic_tuples,
        ));
        largest_ratio = ratio;
        largest_speedup = speedup;
    }

    let achieved = largest_ratio >= 2.0 && largest_speedup > 1.0;
    let json = format!(
        r#"{{
  "workload": "trust network sample_bfs(seed=11) of a 2000-node/10000-edge synthetic OTC graph",
  "query": "deepest naive-derived trustPath tuple per size",
  "sizes": [
{sizes}
  ],
  "acceptance": {{
    "required_tuple_ratio": 2.0,
    "largest_size_tuple_ratio": {largest_ratio:.1},
    "largest_size_speedup": {largest_speedup:.1},
    "achieved": {achieved}
  }}
}}
"#,
        sizes = entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grounding.json");
    std::fs::write(path, &json).expect("write BENCH_grounding.json");
    println!("wrote {path}:\n{json}");
    assert!(
        largest_ratio >= 2.0,
        "demand must derive at most half the tuples of naive at the \
         largest size (got {largest_ratio:.1}x)"
    );
    assert!(
        largest_speedup > 1.0,
        "demand must be faster than naive at the largest size \
         (got {largest_speedup:.1}x)"
    );
}

criterion_group!(benches, bench_grounding);

fn main() {
    benches();
    record_json();
}
