//! Micro-bench: provenance-polynomial extraction under varying hop limits
//! (the Criterion companion to Figure 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3_core::P3;
use p3_provenance::extract::{ExtractOptions, Extractor};
use p3_workloads::trust::{self, NetworkConfig};

fn bench_extraction(c: &mut Criterion) {
    let net = trust::generate(NetworkConfig {
        nodes: 2000,
        edges: 10_000,
        seed: 5,
        ..NetworkConfig::default()
    });
    let sample = net.sample_bfs(80, 13);
    let p3 = P3::from_program(sample.to_program()).expect("negation-free program");
    let Some(pred) = p3.program().symbols().get("trustPath") else {
        return;
    };
    let Some(rel) = p3.database().relation(pred) else {
        return;
    };
    let tuples: Vec<_> = rel.tuples().iter().copied().take(20).collect();

    let mut group = c.benchmark_group("extraction");
    for &depth in &[2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("hop_limited", depth), &depth, |b, &d| {
            let extractor = Extractor::new(p3.graph());
            b.iter(|| {
                tuples
                    .iter()
                    .map(|&t| {
                        extractor
                            .polynomial(t, ExtractOptions::with_max_depth(d))
                            .len()
                    })
                    .sum::<usize>()
            })
        });
    }
    // Extractor construction itself (SCC analysis).
    group.bench_function("extractor_build", |b| b.iter(|| Extractor::new(p3.graph())));
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
