//! # p3-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§4–§6), each runnable standalone (`cargo run -p p3-bench
//! --bin exp_fig9 --release`) or together (`exp_all`). Results print as
//! console tables and are written as CSV under `EXPERIMENTS-output/`.
//!
//! Scale control: experiments accept a [`Scale`]; `--full` reproduces the
//! paper's exact parameter ranges (slow), the default is a reduced sweep
//! with the same shape, `--quick` is a smoke test.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;

/// Sweep sizes for the performance experiments.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Node counts for the Fig 9/10 sweep (paper: 50,100,…,500).
    pub fig9_sizes: Vec<usize>,
    /// Repetitions per point (paper: 10).
    pub repeats: usize,
    /// Monte-Carlo samples for probability estimates.
    pub mc_samples: usize,
    /// Base-network seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's full parameter ranges.
    pub fn full() -> Self {
        Self {
            fig9_sizes: (1..=10).map(|i| i * 50).collect(),
            repeats: 10,
            mc_samples: 100_000,
            seed: 0xb17c01,
        }
    }

    /// A reduced sweep with the same shape (default).
    pub fn default_scale() -> Self {
        Self {
            fig9_sizes: vec![50, 100, 150, 200, 250, 300],
            repeats: 3,
            mc_samples: 50_000,
            seed: 0xb17c01,
        }
    }

    /// A fast smoke test.
    pub fn quick() -> Self {
        Self {
            fig9_sizes: vec![50, 100],
            repeats: 1,
            mc_samples: 10_000,
            seed: 0xb17c01,
        }
    }

    /// Parses `--full` / `--quick` from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            Self::full()
        } else if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::default_scale()
        }
    }
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_sane_shapes() {
        let full = Scale::full();
        assert_eq!(full.fig9_sizes.last(), Some(&500));
        assert_eq!(full.repeats, 10);
        let quick = Scale::quick();
        assert!(quick.fig9_sizes.len() < full.fig9_sizes.len());
    }

    #[test]
    fn time_measures_something() {
        let (value, d) = time(|| (0..10_000u64).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(d.as_nanos() > 0);
    }
}
