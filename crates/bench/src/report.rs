//! Console tables and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A tabular experiment result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment identifier, e.g. `fig9`.
    pub name: String,
    /// Human title, e.g. `Figure 9: runtime with and without provenance`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders an aligned console table.
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders CSV (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }

    /// Prints the console table and writes `EXPERIMENTS-output/<name>.csv`.
    pub fn emit(&self) {
        println!("{}", self.to_console());
        let dir = output_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            p3_obs::warn!("cannot create output dir", dir = dir.display(), err = e);
            return;
        }
        let path = dir.join(format!("{}.csv", self.name));
        if let Err(e) = std::fs::write(&path, self.to_csv()) {
            p3_obs::warn!("cannot write report csv", path = path.display(), err = e);
        } else {
            println!("[written {}]", path.display());
        }
    }
}

/// The CSV output directory: `EXPERIMENTS-output/` next to the workspace
/// root when identifiable, else the current directory.
pub fn output_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("EXPERIMENTS-output")
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t", "Test", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["30".into(), "4".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn console_table_is_aligned() {
        let text = sample().to_console();
        assert!(text.contains("== Test =="));
        assert!(text.contains("note: hello"));
        // Both rows and header present.
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut r = Report::new("t", "T", &["x"]);
        r.row(vec!["a,b".into()]);
        r.row(vec!["say \"hi\"".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(f4(0.123456), "0.1235");
    }
}
