//! Regenerates the `fig12` experiment (see p3-bench's experiments::fig12).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::fig12::run(&scale).emit();
}
