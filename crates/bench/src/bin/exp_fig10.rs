//! Regenerates the `fig10` experiment (see p3-bench's experiments::fig10).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::fig10::run(&scale).emit();
}
