//! Regenerates the `tables5_7` experiment (see p3-bench's experiments::tables5_7).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::tables5_7::run(&scale).emit();
}
