//! Regenerates the `table2` experiment (see p3-bench's experiments::table2).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::table2::run(&scale).emit();
}
