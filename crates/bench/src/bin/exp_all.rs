//! Runs every experiment in sequence, writing all CSVs under
//! `EXPERIMENTS-output/`. Accepts `--full` (paper-scale), `--quick`, and
//! `--trace-out FILE` (Chrome trace-event JSON of all pipeline spans).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).cloned().expect("--trace-out needs a FILE"));
    if trace_out.is_some() {
        p3_obs::span::set_enabled(true);
    }
    let scale = p3_bench::Scale::from_args();
    use p3_bench::experiments as e;
    type Runner = fn(&p3_bench::Scale) -> p3_bench::report::Report;
    let experiments: Vec<(&str, Runner)> = vec![
        ("table2", e::table2::run),
        ("modification_example", e::modification_example::run),
        ("tables5_7", e::tables5_7::run),
        ("vqa_case", e::vqa_case::run),
        ("fig9", e::fig9::run),
        ("fig10", e::fig10::run),
        ("fig11", e::fig11::run),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("table8", e::table8::run),
        ("table9", e::table9::run),
    ];
    for (name, run) in experiments {
        eprintln!(">>> running {name}");
        let start = std::time::Instant::now();
        run(&scale).emit();
        eprintln!("<<< {name} done in {:.1}s\n", start.elapsed().as_secs_f64());
    }
    if let Some(path) = trace_out {
        let json = p3_obs::span::chrome_trace_json();
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("trace written to {path} (open in chrome://tracing)"),
            Err(e) => p3_obs::warn!("cannot write trace", path = path, err = e),
        }
    }
}
