//! Runs every experiment in sequence, writing all CSVs under
//! `EXPERIMENTS-output/`. Accepts `--full` (paper-scale) and `--quick`.

fn main() {
    let scale = p3_bench::Scale::from_args();
    use p3_bench::experiments as e;
    type Runner = fn(&p3_bench::Scale) -> p3_bench::report::Report;
    let experiments: Vec<(&str, Runner)> = vec![
        ("table2", e::table2::run),
        ("modification_example", e::modification_example::run),
        ("tables5_7", e::tables5_7::run),
        ("vqa_case", e::vqa_case::run),
        ("fig9", e::fig9::run),
        ("fig10", e::fig10::run),
        ("fig11", e::fig11::run),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("table8", e::table8::run),
        ("table9", e::table9::run),
    ];
    for (name, run) in experiments {
        eprintln!(">>> running {name}");
        let start = std::time::Instant::now();
        run(&scale).emit();
        eprintln!("<<< {name} done in {:.1}s\n", start.elapsed().as_secs_f64());
    }
}
