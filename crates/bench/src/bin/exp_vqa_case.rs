//! Regenerates the `vqa_case` experiment (see p3-bench's experiments::vqa_case).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::vqa_case::run(&scale).emit();
}
