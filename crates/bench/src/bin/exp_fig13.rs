//! Regenerates the `fig13` experiment (see p3-bench's experiments::fig13).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::fig13::run(&scale).emit();
}
