//! Regenerates the `fig11` experiment (see p3-bench's experiments::fig11).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::fig11::run(&scale).emit();
}
