//! Regenerates the `table9` experiment (see p3-bench's experiments::table9).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::table9::run(&scale).emit();
}
