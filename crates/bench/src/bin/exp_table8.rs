//! Regenerates the `table8` experiment (see p3-bench's experiments::table8).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::table8::run(&scale).emit();
}
