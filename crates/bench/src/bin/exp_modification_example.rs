//! Regenerates the `modification_example` experiment (see p3-bench's experiments::modification_example).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::modification_example::run(&scale).emit();
}
