//! Regenerates the `fig14` experiment (see p3-bench's experiments::fig14).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::fig14::run(&scale).emit();
}
