//! Regenerates the `fig9` experiment (see p3-bench's experiments::fig9).

fn main() {
    let scale = p3_bench::Scale::from_args();
    p3_bench::experiments::fig9::run(&scale).emit();
}
