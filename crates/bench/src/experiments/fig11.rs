//! Figure 11: compression ratio of sufficient provenance as the
//! approximation error ε grows from 0.1% to 10% (of `P[λ]`).
//!
//! The paper observes ~50% monomial reduction already at ε = 0.1% and
//! ≈99.8% reduction at 10%.

use crate::experiments::common::trust_query_setup;
use crate::report::{f4, secs, Report};
use crate::{time, Scale};
use p3_core::{sufficient_provenance, DerivationAlgo, ProbMethod};
use p3_prob::McConfig;

/// The ε sweep, as fractions of `P[λ]` (the paper's "X% of P[λ]").
pub const EPS_SWEEP: [f64; 8] = [0.001, 0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.1];

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let setup = trust_query_setup(scale);
    let dnf = &setup.polynomial;
    let vars = setup.p3.vars();
    let method = ProbMethod::MonteCarlo(McConfig {
        samples: scale.mc_samples,
        seed: 11,
    });

    let mut report = Report::new(
        "fig11",
        "Figure 11: sufficient-provenance compression ratio vs approximation error",
        &[
            "eps (% of P)",
            "monomials kept",
            "of",
            "compression ratio %",
            "error",
            "time (s)",
        ],
    );
    report.note(format!(
        "queried tuple: {} — polynomial has {} monomials over {} distinct literals",
        setup.query,
        dnf.len(),
        dnf.vars().len()
    ));

    for &eps_frac in &EPS_SWEEP {
        let p_full = method.probability(dnf, vars);
        let eps = eps_frac * p_full;
        let (suff, t) =
            time(|| sufficient_provenance(dnf, vars, eps, DerivationAlgo::NaiveGreedy, method));
        report.row(vec![
            format!("{:.1}", eps_frac * 100.0),
            suff.polynomial.len().to_string(),
            dnf.len().to_string(),
            format!("{:.1}", suff.compression_ratio * 100.0),
            f4(suff.error),
            secs(t),
        ]);
    }
    report.note(
        "paper: ~50% reduction at 0.1% error, ~99.8% reduction at 10%; computation stays \
         under a second and shrinks as eps grows",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_is_monotone_in_eps() {
        let report = run(&Scale::quick());
        let kept: Vec<usize> = report.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(!kept.is_empty());
        for w in kept.windows(2) {
            assert!(w[1] <= w[0], "larger eps keeps fewer monomials: {kept:?}");
        }
    }
}
