//! Tables 5–7: the Mutual Trust case study (§5.2).
//!
//! * Table 5 — initial probabilities of the base tuples;
//! * Query 2B — `trust(6,2)` is the most influential literal (paper: 0.51),
//!   `trust(2,6)` second (paper: 0.48);
//! * Table 6 — the greedy plan to lift `P[mutualTrustPath(1,6)]` from
//!   ≈0.35 to 0.7 (paper: trust(6,2)→1.0, trust(2,6)→1.0,
//!   trust(2,1)→0.93, total change 0.58);
//! * Table 7 — the random-strategy baseline (paper total change: 1.36).

use crate::report::{f4, Report};
use crate::Scale;
use p3_core::{
    influence_query, modification_query, InfluenceMethod, InfluenceOptions, ModificationOptions,
    Strategy, P3,
};
use p3_workloads::trust;

/// Runs the case study and returns one combined report.
pub fn run(_scale: &Scale) -> Report {
    let p3 = P3::from_source(&trust::case_study_source()).expect("case study loads");
    let dnf = p3
        .provenance(trust::CASE_STUDY_QUERY)
        .expect("query derivable");

    let mut report = Report::new(
        "tables5_7",
        "Tables 5-7: trust case study (influence + greedy vs random modification)",
        &["section", "entry", "value", "paper"],
    );

    // Query 2B: influence ranking over the trust literals.
    let influences = influence_query(
        &dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            ..Default::default()
        },
    );
    let trust_only: Vec<_> = influences
        .iter()
        .filter(|e| p3.vars().name(e.var).starts_with('t'))
        .collect();
    let paper_influence = [("trust(6,2)", "0.51"), ("trust(2,6)", "0.48")];
    for (i, e) in trust_only.iter().take(2).enumerate() {
        let label = p3.vars().name(e.var).to_string();
        let tuple = clause_tuple(&p3, &label);
        report.row(vec![
            "influence".into(),
            tuple,
            f4(e.influence),
            format!("{}={}", paper_influence[i].0, paper_influence[i].1),
        ]);
    }

    // Table 6: the greedy plan towards 0.7. As in the paper, only base
    // tuples (the trust facts) may be modified — rule weights stay fixed.
    let base_tuples: Vec<p3_prob::VarId> = p3
        .program()
        .iter()
        .filter(|(_, c)| c.is_fact())
        .map(|(id, _)| p3_provenance::vars::var_of(id))
        .collect();
    let greedy = modification_query(
        &dnf,
        p3.vars(),
        0.7,
        &ModificationOptions {
            modifiable: Some(base_tuples.clone()),
            tolerance: 1e-6,
            ..Default::default()
        },
    );
    for (i, s) in greedy.steps.iter().enumerate() {
        let tuple = clause_tuple(&p3, p3.vars().name(s.var));
        report.row(vec![
            format!("greedy step {}", i + 1),
            tuple,
            format!(
                "{} -> {} (P={})",
                f4(s.from),
                f4(s.to),
                f4(s.resulting_probability)
            ),
            paper_greedy_row(i),
        ]);
    }
    report.row(vec![
        "greedy total".into(),
        "Σ|Δp|".into(),
        f4(greedy.total_cost),
        "0.58".into(),
    ]);

    // Table 7: the random baseline (averaged over seeds; the paper shows a
    // single draw costing 1.36).
    let mut costs = Vec::new();
    for seed in 0..10u64 {
        let plan = modification_query(
            &dnf,
            p3.vars(),
            0.7,
            &ModificationOptions {
                modifiable: Some(base_tuples.clone()),
                strategy: Strategy::Random { seed },
                tolerance: 1e-6,
                ..Default::default()
            },
        );
        if plan.reached_target {
            costs.push(plan.total_cost);
        }
    }
    let avg = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
    let worst = costs.iter().cloned().fold(f64::NAN, f64::max);
    report.row(vec![
        "random avg total".into(),
        "Σ|Δp|".into(),
        f4(avg),
        "1.36".into(),
    ]);
    report.row(vec![
        "random worst total".into(),
        "Σ|Δp|".into(),
        f4(worst),
        "1.36".into(),
    ]);
    report.note(format!(
        "initial P = {} (paper: 0.3524 by MC; exact 0.354942); greedy reached {}",
        f4(greedy.initial_probability),
        f4(greedy.achieved_probability)
    ));
    report
}

/// Renders the head tuple of the labelled clause, e.g. `trust(6,2)`.
fn clause_tuple(p3: &P3, label: &str) -> String {
    let id = p3.program().clause_by_label(label).expect("label exists");
    let clause = p3.program().clause(id);
    format!("{}", clause.head.display(p3.program().symbols()))
}

fn paper_greedy_row(step: usize) -> String {
    match step {
        0 => "trust(6,2): 0.7->1.0 (P=0.51)".into(),
        1 => "trust(2,6): 0.75->1.0 (P=0.68)".into(),
        2 => "trust(2,1): 0.9->0.93 (P=0.7)".into(),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_reproduces_paper_tables() {
        let report = run(&Scale::quick());
        // Influence ranking: trust(6,2) then trust(2,6).
        assert!(
            report.rows[0][1].contains("trust(6,2)"),
            "{:?}",
            report.rows[0]
        );
        assert_eq!(report.rows[0][2], "0.5071", "paper: 0.51");
        assert!(
            report.rows[1][1].contains("trust(2,6)"),
            "{:?}",
            report.rows[1]
        );
        assert_eq!(report.rows[1][2], "0.4733", "paper: 0.48");
        // Greedy plan: same three steps as Table 6.
        let steps: Vec<&Vec<String>> = report
            .rows
            .iter()
            .filter(|r| r[0].starts_with("greedy step"))
            .collect();
        assert_eq!(steps.len(), 3);
        assert!(steps[0][1].contains("trust(6,2)"));
        assert!(steps[1][1].contains("trust(2,6)"));
        assert!(steps[2][1].contains("trust(2,1)"));
        // Total cost ≈ 0.58.
        let total = report.rows.iter().find(|r| r[0] == "greedy total").unwrap();
        let cost: f64 = total[2].parse().unwrap();
        assert!((cost - 0.58).abs() < 0.02, "cost {cost}");
        // Random baseline is more expensive.
        let avg = report
            .rows
            .iter()
            .find(|r| r[0] == "random avg total")
            .unwrap();
        let avg_cost: f64 = avg[2].parse().unwrap();
        assert!(avg_cost > cost, "random {avg_cost} vs greedy {cost}");
    }
}
