//! §4.4's modification example: raise `P[know("Ben","Elena")]` from its
//! initial value to at least 0.5 with minimal cost. The paper (with its own
//! arithmetic) changes `r3` to 0.56 at total cost 0.36; with the exact Fig 2
//! numbers the same single-variable plan sets `r3 ≈ 0.61` at cost ≈ 0.41.

use crate::report::{f4, Report};
use crate::Scale;
use p3_core::{modification_query, ModificationOptions, P3};
use p3_workloads::acquaintance;

/// Runs the experiment.
pub fn run(_scale: &Scale) -> Report {
    let p3 = P3::from_source(acquaintance::SOURCE).expect("acquaintance program loads");
    let dnf = p3.provenance(acquaintance::QUERY).expect("query derivable");
    let plan = modification_query(
        &dnf,
        p3.vars(),
        0.5,
        &ModificationOptions {
            tolerance: 1e-9,
            ..Default::default()
        },
    );

    let mut report = Report::new(
        "modification_example",
        "§4.4 example: raise P[know(\"Ben\",\"Elena\")] to 0.5",
        &["step", "variable", "from", "to", "P after step"],
    );
    for (i, s) in plan.steps.iter().enumerate() {
        report.row(vec![
            (i + 1).to_string(),
            p3.vars().name(s.var).to_string(),
            f4(s.from),
            f4(s.to),
            f4(s.resulting_probability),
        ]);
    }
    report.note(format!(
        "initial P = {}, achieved P = {}, total cost = {} (paper: r3 → 0.56, cost 0.36 \
         under its arithmetic)",
        f4(plan.initial_probability),
        f4(plan.achieved_probability),
        f4(plan.total_cost)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_changes_r3() {
        let report = run(&Scale::quick());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0][1], "r3");
        // 0.5 / 0.8192 ≈ 0.6104.
        assert_eq!(report.rows[0][3], "0.6104");
    }
}
