//! Figure 12: rank stability of the top-5 most influential literals as the
//! sufficient-provenance error limit grows.
//!
//! The paper observes that the top-5 ranking is unchanged below ε ≈ 2% and
//! that the single most influential literal survives even ε = 10%.

use crate::experiments::common::trust_query_setup;
use crate::experiments::fig11::EPS_SWEEP;
use crate::report::Report;
use crate::Scale;
use p3_core::{influence_query, InfluenceMethod, InfluenceOptions};
use p3_prob::{McConfig, VarId};

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let setup = trust_query_setup(scale);
    let dnf = &setup.polynomial;
    let vars = setup.p3.vars();
    let cfg = McConfig {
        samples: scale.mc_samples,
        seed: 12,
    };

    // Reference ranking on the full polynomial.
    let reference = influence_query(
        dnf,
        vars,
        &InfluenceOptions {
            method: InfluenceMethod::Mc(cfg),
            top_k: Some(5),
            ..Default::default()
        },
    );
    let top5: Vec<VarId> = reference.iter().map(|e| e.var).collect();

    let mut headers: Vec<String> = vec!["eps (% of P)".into()];
    headers.extend(top5.iter().map(|&v| vars.name(v).to_string()));
    let mut report = Report::new(
        "fig12",
        "Figure 12: rank of the top-5 influential literals vs approximation error",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    report.note(format!("queried tuple: {}", setup.query));

    for &eps_frac in &EPS_SWEEP {
        let p_full = p3_prob::mc::estimate(dnf, vars, cfg);
        let ranked = influence_query(
            dnf,
            vars,
            &InfluenceOptions {
                method: InfluenceMethod::Mc(cfg),
                preprocess_epsilon: Some(eps_frac * p_full),
                ..Default::default()
            },
        );
        let mut row = vec![format!("{:.1}", eps_frac * 100.0)];
        for v in &top5 {
            let rank = ranked.iter().position(|e| e.var == *v);
            row.push(
                rank.map(|r| (r + 1).to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        report.row(row);
    }
    report.note(
        "paper: ranks stable below ~2% error; the most influential literal unchanged even \
         at 10% ('-' marks a literal compressed out of the polynomial)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_literal_survives_small_eps() {
        let report = run(&Scale::quick());
        // At the smallest eps the reference top-1 is still rank 1.
        assert_eq!(report.rows[0][1], "1", "{:?}", report.rows[0]);
    }
}
