//! Figure 14: total influence-query time when preprocessing with
//! sufficient provenance — the compression time plus the influence time on
//! the compressed polynomial, as ε grows.
//!
//! The paper observes an order-of-magnitude total-time reduction around
//! ε = 2% while the top influential literals stay unchanged (cf. Fig 12).

use crate::experiments::common::trust_query_setup;
use crate::experiments::fig11::EPS_SWEEP;
use crate::report::Report;
use crate::{time, Scale};
use p3_core::{sufficient_provenance, DerivationAlgo, ProbMethod};
use p3_prob::{mc, McConfig};

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let setup = trust_query_setup(scale);
    let dnf = &setup.polynomial;
    let vars = setup.p3.vars();
    let cfg = McConfig {
        samples: scale.mc_samples,
        seed: 14,
    };
    let method = ProbMethod::MonteCarlo(cfg);

    let mut report = Report::new(
        "fig14",
        "Figure 14: total influence-query time on sufficient provenance",
        &[
            "eps (% of P)",
            "suff. prov. time (ms)",
            "influence time (ms)",
            "total (ms)",
        ],
    );
    report.note(format!("queried tuple: {}", setup.query));

    let p_full = mc::estimate(dnf, vars, cfg);
    // Baseline: influence on the full polynomial (no preprocessing).
    let (_, t_baseline) = time(|| mc::influence_all(dnf, vars, cfg));
    report.row(vec![
        "0.0 (none)".into(),
        "0.000".into(),
        format!("{:.3}", t_baseline.as_secs_f64() * 1000.0),
        format!("{:.3}", t_baseline.as_secs_f64() * 1000.0),
    ]);

    for &eps_frac in &EPS_SWEEP {
        let (suff, t_suff) = time(|| {
            sufficient_provenance(
                dnf,
                vars,
                eps_frac * p_full,
                DerivationAlgo::NaiveGreedy,
                method,
            )
        });
        let (_, t_influence) = if suff.polynomial.is_false() {
            ((), std::time::Duration::ZERO)
        } else {
            time(|| {
                mc::influence_all(&suff.polynomial, vars, cfg);
            })
        };
        let suff_ms = t_suff.as_secs_f64() * 1000.0;
        let inf_ms = t_influence.as_secs_f64() * 1000.0;
        report.row(vec![
            format!("{:.1}", eps_frac * 100.0),
            format!("{suff_ms:.3}"),
            format!("{inf_ms:.3}"),
            format!("{:.3}", suff_ms + inf_ms),
        ]);
    }
    report.note(
        "paper: for large polynomials even a small error limit reduces total query time \
         substantially (an order of magnitude around eps = 2%)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_baseline_plus_sweep() {
        let report = run(&Scale::quick());
        assert_eq!(report.rows.len(), 1 + EPS_SWEEP.len());
    }
}
