//! Table 8: sequential vs parallel influence-query time (total and per
//! literal) over a trust-sample polynomial.
//!
//! The paper's parallel implementation runs Monte-Carlo on four GPUs and
//! reports a ~10× speedup (9.60 s → 0.85 s total); here the same
//! embarrassingly-parallel structure runs on CPU threads.

use crate::experiments::common::trust_query_setup;
use crate::report::Report;
use crate::{time, Scale};
use p3_prob::{mc, parallel, McConfig};

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let setup = trust_query_setup(scale);
    let dnf = &setup.polynomial;
    let vars = setup.p3.vars();
    let cfg = McConfig {
        samples: scale.mc_samples,
        seed: 8,
    };
    let threads = parallel::default_threads();
    let nvars = dnf.vars().len().max(1);

    let (_, t_seq) = time(|| mc::influence_all(dnf, vars, cfg));
    let (_, t_par) = time(|| parallel::influence_all(dnf, vars, cfg, threads));

    let mut report = Report::new(
        "table8",
        "Table 8: sequential vs parallel influence query",
        &["variant", "total (s)", "per-literal (s)", "speedup"],
    );
    let seq_s = t_seq.as_secs_f64();
    let par_s = t_par.as_secs_f64();
    report.row(vec![
        "sequential".into(),
        format!("{seq_s:.3}"),
        format!("{:.4}", seq_s / nvars as f64),
        "1.0x".into(),
    ]);
    report.row(vec![
        format!("parallel ({threads} threads)"),
        format!("{par_s:.3}"),
        format!("{:.4}", par_s / nvars as f64),
        format!("{:.1}x", seq_s / par_s.max(1e-9)),
    ]);
    report.note(format!(
        "queried tuple: {} — {} monomials, {} literals; paper (4x GTX 1080 Ti): 9.60 s \
         sequential vs 0.85 s parallel (~11x)",
        setup.query,
        dnf.len(),
        nvars
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_complete() {
        let report = run(&Scale::quick());
        assert_eq!(report.rows.len(), 2);
        let seq: f64 = report.rows[0][1].parse().unwrap();
        let par: f64 = report.rows[1][1].parse().unwrap();
        assert!(seq >= 0.0 && par >= 0.0);
    }
}
