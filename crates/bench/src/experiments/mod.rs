//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Reproduces |
//! |--------|-----------|
//! | [`table2`] | Table 2 — influence ranking on the Acquaintance example |
//! | [`modification_example`] | §4.4 — raise P\[know(Ben,Elena)\] to 0.5 |
//! | [`tables5_7`] | Tables 5–7 — trust case study: influence + greedy vs random modification |
//! | [`vqa_case`] | §5.1 / Tables 3–4 — VQA debugging narrative |
//! | [`fig9`] | Fig 9 — runtime with vs without provenance |
//! | [`fig10`] | Fig 10 — provenance query time vs maintenance time |
//! | [`fig11`] | Fig 11 — sufficient-provenance compression ratio vs ε |
//! | [`fig12`] | Fig 12 — rank stability of top-5 influential literals vs ε |
//! | [`fig13`] | Fig 13 — per-literal influence time and DNF size vs ε |
//! | [`fig14`] | Fig 14 — total influence-query time on sufficient provenance |
//! | [`table8`] | Table 8 — sequential vs parallel influence query |
//! | [`table9`] | Table 9 — modification query running times |

pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig9;
pub mod modification_example;
pub mod table2;
pub mod table8;
pub mod table9;
pub mod tables5_7;
pub mod vqa_case;
