//! Figure 10: provenance query time (hop limit 4) compared with
//! maintenance time, over the same sample sweep as Fig 9.
//!
//! The "query" is a generic Explanation Query: extract the provenance
//! polynomial of `mutualTrustPath` tuples under the hop limit. The paper
//! observes query time on the same order of magnitude as maintenance, but
//! growing more slowly thanks to the hop limit.

use crate::experiments::common::{base_network, mutual_tuples};
use crate::report::{secs, Report};
use crate::{time, Scale};
use p3_core::P3;
use p3_provenance::extract::{ExtractOptions, Extractor};

/// Tuples queried per sample (the paper queries the relation of interest;
/// we cap the count so a single point stays bounded).
const QUERIES_PER_SAMPLE: usize = 10;

/// Hop limit 4 → extraction depth 5 (r1 adds one nesting level, r3 one
/// more).
const DEPTH: usize = 5;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let net = base_network(scale);
    let mut report = Report::new(
        "fig10",
        "Figure 10: provenance query time vs maintenance time (hop limit 4)",
        &[
            "sample size",
            "maintenance (s)",
            "query total (s)",
            "#queries",
            "avg polynomial size",
        ],
    );

    for &size in &scale.fig9_sizes {
        let mut maintenance = 0.0f64;
        let mut query = 0.0f64;
        let mut queries = 0usize;
        let mut poly_sizes = 0usize;
        for rep in 0..scale.repeats {
            let sample = net.sample_bfs(size, scale.seed ^ (size as u64) ^ (rep as u64) << 21);
            let program = sample.to_program();
            let (p3, t_build) = time(|| P3::from_program(program));
            let p3 = p3.expect("negation-free program");
            maintenance += t_build.as_secs_f64();

            let tuples = mutual_tuples(&p3);
            let chosen: Vec<_> = tuples.iter().copied().take(QUERIES_PER_SAMPLE).collect();
            let (sizes, t_query) = time(|| {
                let extractor = Extractor::new(p3.graph());
                chosen
                    .iter()
                    .map(|&t| {
                        extractor
                            .polynomial(t, ExtractOptions::with_max_depth(DEPTH))
                            .len()
                    })
                    .collect::<Vec<_>>()
            });
            query += t_query.as_secs_f64();
            queries += sizes.len();
            poly_sizes += sizes.iter().sum::<usize>();
        }
        let avg_size = if queries > 0 {
            poly_sizes as f64 / queries as f64
        } else {
            0.0
        };
        report.row(vec![
            size.to_string(),
            secs(std::time::Duration::from_secs_f64(
                maintenance / scale.repeats as f64,
            )),
            secs(std::time::Duration::from_secs_f64(
                query / scale.repeats as f64,
            )),
            (queries / scale.repeats.max(1)).to_string(),
            format!("{avg_size:.1}"),
        ]);
    }
    report.note(
        "paper: query time is on the same order as maintenance time but grows more slowly \
         for larger graphs owing to the hop limit",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_times_are_recorded() {
        let scale = Scale {
            fig9_sizes: vec![40],
            repeats: 1,
            mc_samples: 1000,
            seed: 5,
        };
        let report = run(&scale);
        assert_eq!(report.rows.len(), 1);
        let maintenance: f64 = report.rows[0][1].parse().unwrap();
        assert!(maintenance >= 0.0);
    }
}
