//! Table 9: modification-query running time, three ways — sequential,
//! parallel, and sequential after sufficient-provenance preprocessing
//! (ε = 0.01).
//!
//! The paper runs on a polynomial of 366 monomials / 65 literals, lowering
//! `P[λ]` from 0.873 to 0.373, and reports 20.66 s / 1.55 s / 2.44 s with
//! all three variants returning the same change sequence.

use crate::experiments::common::trust_query_setup;
use crate::report::{f4, Report};
use crate::{time, Scale};
use p3_core::{
    modification_query, sufficient_provenance, DerivationAlgo, EvalMethod, ModificationOptions,
    ProbMethod,
};
use p3_prob::{parallel, McConfig};

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let setup = trust_query_setup(scale);
    let dnf = &setup.polynomial;
    let vars = setup.p3.vars();
    let cfg = McConfig {
        samples: scale.mc_samples,
        seed: 9,
    };
    let threads = parallel::default_threads();

    // The paper reduces P by 0.5; clamp so the target stays valid.
    let p0 = ProbMethod::MonteCarlo(cfg).probability(dnf, vars);
    let target = (p0 - 0.5).clamp(0.05, 1.0);
    let opts_base = ModificationOptions {
        tolerance: 0.01,
        eval: EvalMethod::Mc(cfg),
        ..Default::default()
    };

    let (plan_seq, t_seq) = time(|| modification_query(dnf, vars, target, &opts_base));
    let (plan_par, t_par) = time(|| {
        modification_query(
            dnf,
            vars,
            target,
            &ModificationOptions {
                eval: EvalMethod::McParallel(cfg, threads),
                ..opts_base.clone()
            },
        )
    });
    let ((plan_suff, suff_len), t_suff) = time(|| {
        let suff = sufficient_provenance(
            dnf,
            vars,
            0.01,
            DerivationAlgo::NaiveGreedy,
            ProbMethod::MonteCarlo(cfg),
        );
        let plan = modification_query(&suff.polynomial, vars, target, &opts_base);
        (plan, suff.polynomial.len())
    });

    let mut report = Report::new(
        "table9",
        "Table 9: modification query running times",
        &["variant", "time (s)", "steps", "achieved P", "paper (s)"],
    );
    report.note(format!(
        "queried tuple: {} — {} monomials, {} literals; P {} -> target {}",
        setup.query,
        dnf.len(),
        dnf.vars().len(),
        f4(p0),
        f4(target)
    ));
    report.row(vec![
        "sequential".into(),
        format!("{:.3}", t_seq.as_secs_f64()),
        plan_seq.steps.len().to_string(),
        f4(plan_seq.achieved_probability),
        "20.66".into(),
    ]);
    report.row(vec![
        format!("parallel ({threads} threads)"),
        format!("{:.3}", t_par.as_secs_f64()),
        plan_par.steps.len().to_string(),
        f4(plan_par.achieved_probability),
        "1.55".into(),
    ]);
    report.row(vec![
        format!("seq + suff. prov (kept {suff_len})"),
        format!("{:.3}", t_suff.as_secs_f64()),
        plan_suff.steps.len().to_string(),
        f4(plan_suff.achieved_probability),
        "2.44".into(),
    ]);

    // The paper stresses that all three variants return the same change
    // sequence; report whether ours do.
    let seq_vars: Vec<_> = plan_seq.steps.iter().map(|s| s.var).collect();
    let par_vars: Vec<_> = plan_par.steps.iter().map(|s| s.var).collect();
    let suff_vars: Vec<_> = plan_suff.steps.iter().map(|s| s.var).collect();
    report.note(format!(
        "change sequences agree (seq vs par): {}; (seq vs suff-prov): {}",
        seq_vars == par_vars,
        seq_vars == suff_vars
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_variants_run() {
        let report = run(&Scale::quick());
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            let t: f64 = row[1].parse().unwrap();
            assert!(t >= 0.0);
        }
    }
}
