//! Shared setup for the trust-network experiments.

use crate::Scale;
use p3_core::P3;
use p3_datalog::engine::TupleId;
use p3_prob::Dnf;
use p3_provenance::extract::{ExtractOptions, Extractor};
use p3_workloads::trust::{self, NetworkConfig, TrustNetwork};

/// The base synthetic OTC-like network (full Bitcoin-OTC dimensions).
pub fn base_network(scale: &Scale) -> TrustNetwork {
    trust::generate(NetworkConfig {
        seed: scale.seed,
        ..NetworkConfig::default()
    })
}

/// The §6.2 sample: ~150 nodes from the base network, evaluated with
/// provenance, plus the largest hop-limited `mutualTrustPath` (falling back
/// to `trustPath`) polynomial found in it.
pub struct TrustQuerySetup {
    /// The evaluated system.
    pub p3: P3,
    /// The chosen queried tuple.
    pub tuple: TupleId,
    /// Its provenance polynomial (hop limit 6 → extraction depth 7).
    pub polynomial: Dnf,
    /// Rendered form of the queried tuple.
    pub query: String,
}

/// Hop limit used by the §6.2 experiments (paper: 6). Depth adds one level
/// for the `r1` base case and one for `r3`.
pub const QUERY_DEPTH: usize = 7;

/// Builds the §6.2 setup: samples subgraphs until a reasonably large
/// polynomial is found (the paper queries "all possible mutual paths
/// between two specific users" on 150-node/150-edge samples).
pub fn trust_query_setup(scale: &Scale) -> TrustQuerySetup {
    let net = base_network(scale);
    let mut best: Option<TrustQuerySetup> = None;
    for attempt in 0..scale.repeats.max(3) as u64 {
        let sample = net.sample_bfs(150, scale.seed ^ (0xa5a5 + attempt));
        let program = sample.to_program();
        let p3 = P3::from_program(program).expect("negation-free program");
        let Some((tuple, polynomial)) = largest_polynomial(&p3) else {
            continue;
        };
        let query = format!(
            "{}",
            p3.database().display_tuple(tuple, p3.program().symbols())
        );
        let candidate = TrustQuerySetup {
            p3,
            tuple,
            polynomial,
            query,
        };
        let better = best
            .as_ref()
            .map(|b| candidate.polynomial.len() > b.polynomial.len())
            .unwrap_or(true);
        if better {
            best = Some(candidate);
        }
    }
    best.expect("some sample yields a non-trivial polynomial")
}

/// The tuple with the most monomials among `mutualTrustPath` tuples (else
/// `trustPath` tuples) under the hop limit.
fn largest_polynomial(p3: &P3) -> Option<(TupleId, Dnf)> {
    let extractor = Extractor::new(p3.graph());
    let opts = ExtractOptions::with_max_depth(QUERY_DEPTH);
    // Cap the scan: extracting for every tuple of a dense sample is
    // wasteful when we only need one representative large polynomial.
    const SCAN_CAP: usize = 400;
    let mut best: Option<(TupleId, Dnf)> = None;
    for pred_name in ["mutualTrustPath", "trustPath"] {
        let Some(pred) = p3.program().symbols().get(pred_name) else {
            continue;
        };
        let Some(rel) = p3.database().relation(pred) else {
            continue;
        };
        for &t in rel.tuples().iter().take(SCAN_CAP) {
            let dnf = extractor.polynomial(t, opts);
            if dnf.is_false() {
                continue;
            }
            if best
                .as_ref()
                .map(|(_, b)| dnf.len() > b.len())
                .unwrap_or(true)
            {
                best = Some((t, dnf));
            }
        }
        // Prefer mutualTrustPath when it yields anything non-trivial.
        if best.as_ref().map(|(_, d)| d.len() >= 4).unwrap_or(false) {
            break;
        }
    }
    best
}

/// All `mutualTrustPath` tuples of an evaluated sample (for Fig 10's query
/// workload).
pub fn mutual_tuples(p3: &P3) -> Vec<TupleId> {
    p3.program()
        .symbols()
        .get("mutualTrustPath")
        .and_then(|pred| p3.database().relation(pred))
        .map(|rel| rel.tuples().to_vec())
        .unwrap_or_default()
}
