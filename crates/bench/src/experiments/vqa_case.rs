//! The VQA debugging narrative (§5.1, Fig 4–6, Tables 3–4).
//!
//! 1. On the church photo (Table 3 scene) with the buggy similarity table,
//!    `ans("ID1","barn")` still scores above `ans("ID1","church")`.
//! 2. An Influence Query restricted to the `sim` literals that appear only
//!    in the church answer's provenance reproduces Table 4's ranking:
//!    `sim(church,cross)` first.
//! 3. A Modification Query computes the `sim(church,cross)` increase that
//!    lifts the church answer to the barn answer's score (paper: +0.42,
//!    landing at 0.51).
//! 4. With the fix applied, the program prefers "church".

use crate::report::{f4, Report};
use crate::Scale;
use p3_core::{
    influence_query, modification_query, InfluenceMethod, InfluenceOptions, ModificationOptions,
    ProbMethod, P3,
};
use p3_prob::VarId;
use p3_workloads::vqa;

/// Runs the experiment.
pub fn run(_scale: &Scale) -> Report {
    let buggy = vqa::church_image_buggy();
    let p3 = P3::from_program(buggy.to_program()).expect("negation-free program");

    let barn_dnf = p3.provenance(vqa::ANS_BARN).expect("barn answer derivable");
    let church_dnf = p3
        .provenance(vqa::ANS_CHURCH)
        .expect("church answer derivable");
    let p_barn = ProbMethod::Exact.probability(&barn_dnf, p3.vars());
    let p_church = ProbMethod::Exact.probability(&church_dnf, p3.vars());

    let mut report = Report::new(
        "vqa_case",
        "§5.1 VQA debugging: buggy sims, Table 4 ranking, the fix",
        &["step", "entry", "value"],
    );
    report.row(vec!["buggy".into(), "P[ans(barn)]".into(), f4(p_barn)]);
    report.row(vec!["buggy".into(), "P[ans(church)]".into(), f4(p_church)]);

    // Table 4: influence of sim literals unique to the church provenance.
    let unique: Vec<VarId> = {
        let barn_vars = barn_dnf.vars();
        church_dnf
            .vars()
            .into_iter()
            .filter(|v| barn_vars.binary_search(v).is_err())
            .filter(|&v| p3.vars().name(v).starts_with("sim_"))
            .collect()
    };
    let ranked = influence_query(
        &church_dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            restrict_to: Some(unique),
            top_k: Some(3),
            ..Default::default()
        },
    );
    for (i, e) in ranked.iter().enumerate() {
        report.row(vec![
            format!("table4 rank {}", i + 1),
            p3.vars().name(e.var).to_string(),
            f4(e.influence),
        ]);
    }

    // Query 1C's fix: raise P[ans(church)] to P[ans(barn)] by modifying
    // sim(church,cross) only.
    let sim_label = buggy
        .sim_label("church", "cross")
        .expect("planted sim exists");
    let sim_var = p3_provenance::vars::var_of(
        p3.program()
            .clause_by_label(&sim_label)
            .expect("sim clause exists"),
    );
    let plan = modification_query(
        &church_dnf,
        p3.vars(),
        p_barn,
        &ModificationOptions {
            modifiable: Some(vec![sim_var]),
            tolerance: 1e-6,
            ..Default::default()
        },
    );
    for s in &plan.steps {
        report.row(vec![
            "fix".into(),
            p3.vars().name(s.var).to_string(),
            format!("{} -> {} (Δ={})", f4(s.from), f4(s.to), f4(s.to - s.from)),
        ]);
    }

    // After the fix: church wins.
    let fixed =
        P3::from_program(vqa::church_image_fixed().to_program()).expect("negation-free program");
    let p_barn2 = fixed
        .probability(vqa::ANS_BARN, ProbMethod::Exact)
        .expect("derivable");
    let p_church2 = fixed
        .probability(vqa::ANS_CHURCH, ProbMethod::Exact)
        .expect("derivable");
    report.row(vec!["fixed".into(), "P[ans(barn)]".into(), f4(p_barn2)]);
    report.row(vec!["fixed".into(), "P[ans(church)]".into(), f4(p_church2)]);
    report.note(format!(
        "paper: sim(church,cross) raised by 0.42 to 0.51; our planted instance needs Δ={} \
         (the narrative — barn wins before the fix, church after — is reproduced)",
        plan.steps
            .first()
            .map(|s| f4(s.to - s.from))
            .unwrap_or_else(|| "-".into())
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrative_reproduces() {
        let report = run(&Scale::quick());
        let get = |step: &str, entry: &str| -> f64 {
            report
                .rows
                .iter()
                .find(|r| r[0] == step && r[1] == entry)
                .unwrap_or_else(|| panic!("row {step}/{entry}"))[2]
                .parse()
                .unwrap()
        };
        // Before the fix, barn outranks church.
        assert!(get("buggy", "P[ans(barn)]") > get("buggy", "P[ans(church)]"));
        // Table 4: sim(church,cross) is the top unique influential literal.
        let rank1 = report
            .rows
            .iter()
            .find(|r| r[0] == "table4 rank 1")
            .unwrap();
        assert_eq!(rank1[1], "sim_church_cross");
        // After the fix, church outranks barn.
        assert!(get("fixed", "P[ans(church)]") > get("fixed", "P[ans(barn)]"));
    }
}
