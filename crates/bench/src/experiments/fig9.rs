//! Figure 9: program running time with and without provenance maintenance,
//! over BFS samples of 50–500 nodes (10 repeats each in `--full`).
//!
//! The paper observes (a) super-linear growth with sample size and (b) a
//! maintenance overhead under ~10% of total running time.

use crate::experiments::common::base_network;
use crate::report::{secs, Report};
use crate::{time, Scale};
use p3_datalog::engine::{Engine, NoopSink};
use p3_provenance::capture::CaptureSink;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let net = base_network(scale);
    let mut report = Report::new(
        "fig9",
        "Figure 9: running time with and without provenance",
        &[
            "sample size",
            "no-prov time (s)",
            "with-prov time (s)",
            "overhead %",
            "tuples",
        ],
    );

    for &size in &scale.fig9_sizes {
        let mut no_prov = 0.0f64;
        let mut with_prov = 0.0f64;
        let mut tuples = 0usize;
        for rep in 0..scale.repeats {
            let sample = net.sample_bfs(size, scale.seed ^ (size as u64) ^ (rep as u64) << 17);
            let program = sample.to_program();

            // Warm up caches/allocator so the first timed variant is not
            // penalised.
            Engine::new(&program).run(&mut NoopSink);

            let (_, t_plain) = time(|| {
                let mut engine = Engine::new(&program);
                engine.run(&mut NoopSink)
            });
            no_prov += t_plain.as_secs_f64();

            let ((db, _graph), t_prov) = time(|| {
                let mut sink = CaptureSink::new();
                let mut engine = Engine::new(&program);
                let db = engine.run(&mut sink);
                (db, sink.into_graph())
            });
            with_prov += t_prov.as_secs_f64();
            tuples = db.len();
        }
        no_prov /= scale.repeats as f64;
        with_prov /= scale.repeats as f64;
        let overhead = if no_prov > 0.0 {
            (with_prov / no_prov - 1.0) * 100.0
        } else {
            0.0
        };
        report.row(vec![
            size.to_string(),
            secs(std::time::Duration::from_secs_f64(no_prov)),
            secs(std::time::Duration::from_secs_f64(with_prov)),
            format!("{overhead:.1}"),
            tuples.to_string(),
        ]);
    }
    report.note(
        "paper: growth is super-linear in sample size; provenance maintenance adds a small \
         constant-factor overhead (<10% of total runtime on their testbed)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_size_and_times_are_positive() {
        let scale = Scale {
            fig9_sizes: vec![30, 60],
            repeats: 1,
            mc_samples: 1000,
            seed: 3,
        };
        let report = run(&scale);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            let no_prov: f64 = row[1].parse().unwrap();
            let with_prov: f64 = row[2].parse().unwrap();
            assert!(no_prov >= 0.0);
            assert!(with_prov >= 0.0);
        }
        // Larger samples derive at least as many tuples.
        let t0: usize = report.rows[0][4].parse().unwrap();
        let t1: usize = report.rows[1][4].parse().unwrap();
        assert!(t1 >= t0);
    }
}
