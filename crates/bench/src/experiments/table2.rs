//! Table 2: the top-3 most influential literals for
//! `know("Ben","Elena")` in the Acquaintance program.

use crate::report::{f4, Report};
use crate::Scale;
use p3_core::{influence_query, InfluenceMethod, InfluenceOptions, P3};
use p3_prob::McConfig;
use p3_workloads::acquaintance;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let p3 = P3::from_source(acquaintance::SOURCE).expect("acquaintance program loads");
    let dnf = p3.provenance(acquaintance::QUERY).expect("query derivable");

    let mut report = Report::new(
        "table2",
        "Table 2: influence ranking for know(\"Ben\",\"Elena\")",
        &[
            "rank",
            "variable",
            "influence (exact)",
            "influence (MC)",
            "paper",
        ],
    );

    let exact = influence_query(
        &dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            top_k: Some(3),
            ..Default::default()
        },
    );
    let mc = influence_query(
        &dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Mc(McConfig {
                samples: scale.mc_samples,
                seed: 42,
            }),
            top_k: Some(3),
            ..Default::default()
        },
    );

    // Paper's reported values (its own arithmetic; see EXPERIMENTS.md).
    let paper = [("r3", 0.896), ("r1", 0.2), ("t6", 0.1792)];
    for (rank, (e, m)) in exact.iter().zip(&mc).enumerate() {
        let name = p3.vars().name(e.var).to_string();
        let paper_cell = paper
            .get(rank)
            .map(|(n, v)| format!("{n}={v}"))
            .unwrap_or_default();
        report.row(vec![
            (rank + 1).to_string(),
            name,
            f4(e.influence),
            f4(m.influence),
            paper_cell,
        ]);
    }
    report.note(
        "ranking matches the paper (r3 > r1 > t6); paper values use its own (slightly \
         inconsistent) arithmetic — exact values from Fig 2's probabilities are shown",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_matches_the_paper() {
        let report = run(&Scale::quick());
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0][1], "r3");
        assert_eq!(report.rows[1][1], "r1");
        assert_eq!(report.rows[2][1], "t6");
        // Exact values.
        assert_eq!(report.rows[0][2], "0.8192");
        assert_eq!(report.rows[1][2], "0.1808");
        assert_eq!(report.rows[2][2], "0.1638");
    }
}
