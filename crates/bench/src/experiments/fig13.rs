//! Figure 13: per-literal influence-query time (and DNF size) after
//! sufficient-provenance preprocessing, as ε grows.
//!
//! The paper observes both the monomial count and the per-literal time
//! dropping exponentially with the error limit.

use crate::experiments::common::trust_query_setup;
use crate::experiments::fig11::EPS_SWEEP;
use crate::report::Report;
use crate::{time, Scale};
use p3_core::{sufficient_provenance, DerivationAlgo, ProbMethod};
use p3_prob::{mc, McConfig};

/// Runs the experiment.
pub fn run(scale: &Scale) -> Report {
    let setup = trust_query_setup(scale);
    let dnf = &setup.polynomial;
    let vars = setup.p3.vars();
    let cfg = McConfig {
        samples: scale.mc_samples,
        seed: 13,
    };
    let method = ProbMethod::MonteCarlo(cfg);

    let mut report = Report::new(
        "fig13",
        "Figure 13: influence time per literal on sufficient provenance",
        &[
            "eps (% of P)",
            "monomials",
            "literals",
            "influence time per literal (ms)",
        ],
    );
    report.note(format!("queried tuple: {}", setup.query));

    // eps = 0 row (the full polynomial), then the sweep.
    let mut points: Vec<f64> = vec![0.0];
    points.extend_from_slice(&EPS_SWEEP);
    let p_full = mc::estimate(dnf, vars, cfg);

    for &eps_frac in &points {
        let target = if eps_frac == 0.0 {
            dnf.clone()
        } else {
            sufficient_provenance(
                dnf,
                vars,
                eps_frac * p_full,
                DerivationAlgo::NaiveGreedy,
                method,
            )
            .polynomial
        };
        let nvars = target.vars().len();
        if nvars == 0 {
            report.row(vec![
                format!("{:.1}", eps_frac * 100.0),
                target.len().to_string(),
                "0".into(),
                "-".into(),
            ]);
            continue;
        }
        let (_, t) = time(|| mc::influence_all(&target, vars, cfg));
        let per_literal_ms = t.as_secs_f64() * 1000.0 / nvars as f64;
        report.row(vec![
            format!("{:.1}", eps_frac * 100.0),
            target.len().to_string(),
            nvars.to_string(),
            format!("{per_literal_ms:.3}"),
        ]);
    }
    report.note("paper: per-literal time decreases exponentially as eps grows");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_eps_never_grows_the_polynomial() {
        let report = run(&Scale::quick());
        let sizes: Vec<usize> = report.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "{sizes:?}");
        }
    }
}
