//! The EXPLAIN cost model: turns measured per-rule evaluation cost into
//! the same `P3603`/`P3604` recommendations the static passes emit — but
//! with numbers instead of shape heuristics.
//!
//! The static strata pass guesses from program structure ("this program
//! has recursive cycles, demand mode probably pays off"). After a run the
//! guess is unnecessary: the [`ExplainPlan`] says exactly which rule
//! burned how many join candidates over how many iterations. These
//! recommendations quote those measurements, so `p3 explain` can tell a
//! user *this* rule is the cost cliff and *this* flag removes it.

use crate::messages::{DEMAND_MODE, WARM_RESTART};
use p3_datalog::diag::Diagnostic;
use p3_datalog::explain::{ExplainPlan, RuleCost};

/// Fraction of total plan cost a single recursive rule must account for
/// before the measured P3603 demand-mode recommendation fires.
const HOT_RULE_SHARE: f64 = 0.25;

/// Minimum fixpoint iterations (and minimum recursive cost) before the
/// measured P3604 warm-restart recommendation fires: below this,
/// re-deriving on boot is too cheap to bother journaling.
const STORE_MIN_ITERATIONS: usize = 3;
const STORE_MIN_COST: u64 = 64;

/// Recommendations derived from one evaluation's measured cost, most
/// impactful first. Diagnostics carry the hot rule's clause label but no
/// source span — the plan attributes cost, not text positions.
pub fn cost_recommendations(plan: &ExplainPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let total = plan.total_cost();
    if total == 0 {
        return out;
    }

    let hot_recursive: Option<&RuleCost> = plan.rules.iter().find(|r| r.recursive && r.cost() > 0);
    let share = |cost: u64| 100.0 * cost as f64 / total as f64;

    if plan.mode == "naive" {
        if let Some(rule) = hot_recursive {
            if rule.cost() as f64 >= HOT_RULE_SHARE * total as f64 {
                out.push(
                    DEMAND_MODE
                        .note(format!(
                            "recursive rule '{}' dominating naive evaluation ({} firings \
                             scanning {} join candidates over {} iterations, {:.0}% of \
                             measured cost)",
                            rule.label,
                            rule.firings,
                            rule.candidates,
                            rule.iterations,
                            share(rule.cost()),
                        ))
                        .with_clause(&rule.label),
                );
            }
        }
    }

    let recursive_cost: u64 = plan
        .rules
        .iter()
        .filter(|r| r.recursive)
        .map(RuleCost::cost)
        .sum();
    let recursive_tuples: u64 = plan
        .rules
        .iter()
        .filter(|r| r.recursive)
        .map(|r| r.new_tuples)
        .sum();
    if plan.stats.iterations >= STORE_MIN_ITERATIONS && recursive_cost >= STORE_MIN_COST {
        let labels: Vec<&str> = plan
            .rules
            .iter()
            .filter(|r| r.recursive && r.cost() > 0)
            .map(|r| r.label.as_str())
            .collect();
        let mut d = WARM_RESTART.note(format!(
            "re-deriving {} tuples through recursive rules {{{}}} over {} fixpoint \
             iterations ({:.0}% of measured cost, re-paid on every cold start)",
            recursive_tuples,
            labels.join(", "),
            plan.stats.iterations,
            share(recursive_cost),
        ));
        if let Some(first) = labels.first() {
            d = d.with_clause(*first);
        }
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_datalog::engine::Engine;
    use p3_datalog::program::Program;

    fn naive_plan(src: &str) -> ExplainPlan {
        let p = Program::parse(src).unwrap();
        let mut e = Engine::new(&p);
        e.run_plain();
        ExplainPlan::from_engine(&e)
    }

    #[test]
    fn hot_recursive_rule_yields_measured_p3603_and_p3604() {
        // A 10-node cycle: the recursive rule burns the vast majority of
        // the join work and fixpoint depth is well past the threshold.
        let mut src = String::from(
            "r1 1.0: path(X,Y) :- edge(X,Y).
             r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).\n",
        );
        for i in 0..10 {
            src.push_str(&format!("e{i} 0.5: edge({i},{}).\n", (i + 1) % 10));
        }
        let plan = naive_plan(&src);
        let recs = cost_recommendations(&plan);
        let codes: Vec<_> = recs.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["P3603", "P3604"], "{recs:?}");
        let p3603 = &recs[0];
        assert!(p3603.message.contains("'r2'"), "{}", p3603.message);
        assert!(p3603.message.contains("firings"), "{}", p3603.message);
        assert_eq!(p3603.clause.as_deref(), Some("r2"));
    }

    #[test]
    fn flat_programs_get_no_recommendations() {
        let plan = naive_plan(
            "r1 1.0: q(X) :- p(X).
             t1 0.5: p(a). t2 0.5: p(b).",
        );
        assert!(cost_recommendations(&plan).is_empty());
    }

    #[test]
    fn fact_only_plan_is_silent() {
        let plan = naive_plan("t1 0.5: p(a).");
        assert!(cost_recommendations(&plan).is_empty());
    }
}
