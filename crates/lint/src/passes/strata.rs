//! Graph-level checks: unstratified negation (P3201), negation outside the
//! provenance model (P3202), recursive-SCC cost notes (P3601), high rule
//! fan-in (P3602), the demand-mode recommendation (P3603) and the
//! persistent-store recommendation (P3604).

use crate::ctx::Ctx;
use crate::graph::DepGraph;
use crate::messages::{DEMAND_MODE, WARM_RESTART};
use p3_datalog::diag::Diagnostic;
use p3_datalog::symbol::Symbol;
use std::collections::HashMap;

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let graph = DepGraph::build(ctx.clauses);
    let sccs = graph.sccs();
    let mut scc_of: HashMap<usize, usize> = HashMap::new();
    for (k, component) in sccs.iter().enumerate() {
        for &v in component {
            scc_of.insert(v, k);
        }
    }

    negation(ctx, &graph, &scc_of);
    recursive_cost(ctx, &graph, &sccs);
    let heavy_fan_in = fan_in(ctx);
    demand_hint(ctx, &graph, &sccs, heavy_fan_in);
    store_hint(ctx, &graph, &sccs);
}

fn negation(ctx: &mut Ctx<'_>, graph: &DepGraph, scc_of: &HashMap<usize, usize>) {
    let mut first_negated: Option<(usize, usize)> = None;
    let mut unstratified = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        for (j, atom) in clause.negated().iter().enumerate() {
            if first_negated.is_none() {
                first_negated = Some((i, j));
            }
            let head = graph.id(clause.head.pred);
            let dep = graph.id(atom.pred);
            if let (Some(h), Some(d)) = (head, dep) {
                if scc_of.get(&h) == scc_of.get(&d) {
                    unstratified.push((i, j, atom.pred, clause.label.clone()));
                }
            }
        }
    }
    for (i, j, pred, label) in unstratified {
        let d = Diagnostic::error(
            "P3201",
            format!(
                "program is not stratified: predicate '{}' is negated within a recursive cycle",
                ctx.name(pred)
            ),
        )
        .with_span(ctx.negated_span(i, j))
        .with_clause(&label)
        .with_help(
            "negation through recursion has no least fixpoint; break the cycle or \
             move the negated predicate to a lower stratum",
        );
        ctx.emit(d);
    }
    if let Some((i, j)) = first_negated {
        let d = Diagnostic::warn(
            "P3202",
            "program uses negation: provenance queries will be rejected (the P3 model \
             is negation-free)"
                .to_string(),
        )
        .with_span(ctx.negated_span(i, j))
        .with_help(
            "the engine evaluates stratified negation, but Boolean provenance and all \
             probability computations require a positive program",
        );
        ctx.emit(d);
    }
}

fn recursive_cost(ctx: &mut Ctx<'_>, graph: &DepGraph, sccs: &[Vec<usize>]) {
    for component in sccs {
        let recursive = component.len() > 1 || graph.self_loop(component[0]);
        if !recursive {
            continue;
        }
        let mut names: Vec<&str> = component
            .iter()
            .map(|&v| ctx.name(graph.preds[v]))
            .collect();
        names.sort_unstable();
        let listed = names.join(", ");
        // Anchor the note at the first rule whose head is in this SCC.
        let anchor = ctx
            .clauses
            .iter()
            .position(|c| c.is_rule() && component.iter().any(|&v| graph.preds[v] == c.head.pred));
        let (span, label) = match anchor {
            Some(i) => (ctx.clause_span(i), Some(ctx.clauses[i].label.clone())),
            None => (None, None),
        };
        // Softened since demand evaluation became the default for recursive
        // programs: the full-model cost described here is only paid under
        // --eval-mode naive.
        let mut d = Diagnostic::info("P3601", format!("recursive cycle through {{{listed}}}"))
            .with_span(span)
            .with_help(
                "cyclic derivations are cut by the hop-limited cycle elimination of \u{a7}3.3; \
             deep recursion grows grounding time and provenance size under naive \
             evaluation (auto mode already evaluates recursive programs on demand)",
            );
        if let Some(label) = label {
            d = d.with_clause(&label);
        }
        ctx.emit(d);
    }
}

/// Emits P3602 for high-fan-in predicates; returns whether any were found
/// (an input to the P3603 demand-mode recommendation).
fn fan_in(ctx: &mut Ctx<'_>) -> bool {
    const FAN_IN_NOTE: usize = 4;
    let mut rule_counts: HashMap<Symbol, usize> = HashMap::new();
    for clause in ctx.clauses.iter().filter(|c| c.is_rule()) {
        *rule_counts.entry(clause.head.pred).or_insert(0) += 1;
    }
    let mut flagged: Vec<(usize, Symbol, usize, String)> = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        if !clause.is_rule() {
            continue;
        }
        let count = rule_counts[&clause.head.pred];
        if count >= FAN_IN_NOTE && !flagged.iter().any(|f| f.1 == clause.head.pred) {
            flagged.push((i, clause.head.pred, count, clause.label.clone()));
        }
    }
    let any = !flagged.is_empty();
    for (i, pred, count, label) in flagged {
        let d = Diagnostic::info(
            "P3602",
            format!("predicate '{}' is defined by {count} rules", ctx.name(pred)),
        )
        .with_span(ctx.head_span(i))
        .with_clause(&label)
        .with_help(
            "each alternative multiplies the derivation DNF; consider splitting the \
             predicate if provenance extraction slows down",
        );
        ctx.emit(d);
    }
    any
}

/// P3603: one note per program when its shape (recursive SCCs or heavy rule
/// fan-in) makes query-directed evaluation pay off.
fn demand_hint(ctx: &mut Ctx<'_>, graph: &DepGraph, sccs: &[Vec<usize>], heavy_fan_in: bool) {
    let recursive = sccs.iter().any(|c| c.len() > 1 || graph.self_loop(c[0]));
    if !recursive && !heavy_fan_in {
        return;
    }
    let shape = match (recursive, heavy_fan_in) {
        (true, true) => "recursive cycles and high rule fan-in",
        (true, false) => "recursive cycles",
        (false, true) => "high rule fan-in",
        (false, false) => unreachable!(),
    };
    // Anchor at the first rule so the note lands on executable logic.
    let anchor = ctx.clauses.iter().position(|c| c.is_rule());
    let (span, label) = match anchor {
        Some(i) => (ctx.clause_span(i), Some(ctx.clauses[i].label.clone())),
        None => (None, None),
    };
    let mut d = DEMAND_MODE
        .note(format!("program shape ({shape})"))
        .with_span(span);
    if let Some(label) = label {
        d = d.with_clause(&label);
    }
    ctx.emit(d);
}

/// P3604: one note per program when its recursion is heavy enough (several
/// recursive SCCs, or one spanning ≥ 3 predicates) that re-deriving
/// provenance on every process start is the dominant cost of a restart —
/// recommend the persistent store, mirroring the P3603 demand-mode hint.
fn store_hint(ctx: &mut Ctx<'_>, graph: &DepGraph, sccs: &[Vec<usize>]) {
    let recursive: Vec<usize> = sccs
        .iter()
        .filter(|c| c.len() > 1 || graph.self_loop(c[0]))
        .map(|c| c.len())
        .collect();
    let widest = recursive.iter().copied().max().unwrap_or(0);
    if recursive.len() < 2 && widest < 3 {
        return;
    }
    let shape = if recursive.len() >= 2 {
        format!("{} recursive cycles", recursive.len())
    } else {
        format!("a recursive cycle spanning {widest} predicates")
    };
    // Anchor at the first rule so the note lands on executable logic.
    let anchor = ctx.clauses.iter().position(|c| c.is_rule());
    let (span, label) = match anchor {
        Some(i) => (ctx.clause_span(i), Some(ctx.clauses[i].label.clone())),
        None => (None, None),
    };
    let mut d = WARM_RESTART
        .note(format!("program shape ({shape})"))
        .with_span(span);
    if let Some(label) = label {
        d = d.with_clause(&label);
    }
    ctx.emit(d);
}
