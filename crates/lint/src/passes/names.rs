//! Name hygiene: duplicate labels (P3104), arity mismatches (P3105) and
//! undefined predicates with typo suggestions (P3501).

use crate::ctx::Ctx;
use p3_datalog::diag::Diagnostic;
use p3_datalog::parser::Span;
use p3_datalog::symbol::Symbol;
use std::collections::{HashMap, HashSet};

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    duplicate_labels(ctx);
    arities(ctx);
    undefined_predicates(ctx);
}

fn duplicate_labels(ctx: &mut Ctx<'_>) {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    let mut findings = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        if let Some(&first) = seen.get(clause.label.as_str()) {
            findings.push((i, first, clause.label.clone()));
        } else {
            seen.insert(&clause.label, i);
        }
    }
    for (i, first, label) in findings {
        let d = Diagnostic::error("P3104", format!("duplicate clause label '{label}'"))
            .with_span(ctx.clause_span(i))
            .with_clause(&label)
            .with_help(format!(
                "the label was first used by clause {}; labels name the Boolean \
                 random variables, so each must be unique",
                first + 1
            ));
        ctx.emit(d);
    }
}

fn arities(ctx: &mut Ctx<'_>) {
    let mut arities: HashMap<Symbol, usize> = HashMap::new();
    let mut findings: Vec<(Symbol, usize, usize, Option<Span>, String)> = Vec::new();
    let mut check = |arities: &mut HashMap<Symbol, usize>,
                     pred: Symbol,
                     arity: usize,
                     span: Option<Span>,
                     label: &str| {
        match arities.get(&pred) {
            Some(&expected) if expected != arity => {
                findings.push((pred, expected, arity, span, label.to_string()));
            }
            Some(_) => {}
            None => {
                arities.insert(pred, arity);
            }
        }
    };
    for (i, clause) in ctx.clauses.iter().enumerate() {
        check(
            &mut arities,
            clause.head.pred,
            clause.head.args.len(),
            ctx.head_span(i),
            &clause.label,
        );
        for (j, atom) in clause.body().iter().enumerate() {
            check(
                &mut arities,
                atom.pred,
                atom.args.len(),
                ctx.body_span(i, j),
                &clause.label,
            );
        }
        for (j, atom) in clause.negated().iter().enumerate() {
            check(
                &mut arities,
                atom.pred,
                atom.args.len(),
                ctx.negated_span(i, j),
                &clause.label,
            );
        }
    }
    for (pred, expected, found, span, label) in findings {
        let d = Diagnostic::error(
            "P3105",
            format!(
                "predicate '{}' used with arity {found} but previously with arity {expected}",
                ctx.name(pred)
            ),
        )
        .with_span(span)
        .with_clause(&label);
        ctx.emit(d);
    }
}

fn undefined_predicates(ctx: &mut Ctx<'_>) {
    let defined: HashSet<Symbol> = ctx.clauses.iter().map(|c| c.head.pred).collect();
    let mut reported: HashSet<Symbol> = HashSet::new();
    let mut findings = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        let atoms = clause
            .body()
            .iter()
            .enumerate()
            .map(|(j, a)| (a, ctx.body_span(i, j)))
            .chain(
                clause
                    .negated()
                    .iter()
                    .enumerate()
                    .map(|(j, a)| (a, ctx.negated_span(i, j))),
            );
        for (atom, span) in atoms {
            if !defined.contains(&atom.pred) && reported.insert(atom.pred) {
                findings.push((atom.pred, span, clause.label.clone()));
            }
        }
    }
    for (pred, span, label) in findings {
        let name = ctx.name(pred);
        let suggestion = defined
            .iter()
            .map(|&d| ctx.name(d))
            .filter(|cand| edit_distance_at_most_one(name, cand))
            .min()
            .map(str::to_string);
        let mut d = Diagnostic::warn(
            "P3501",
            format!("predicate '{name}' is used in a body but never defined by any fact or rule"),
        )
        .with_span(span)
        .with_clause(&label);
        if let Some(candidate) = suggestion {
            d = d.with_help(format!("did you mean '{candidate}'?"));
        }
        ctx.emit(d);
    }
}

/// True when `a` and `b` differ by at most one insertion, deletion or
/// substitution (and are not equal).
fn edit_distance_at_most_one(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if long.len() - short.len() > 1 {
        return false;
    }
    let mut i = 0;
    while i < short.len() && short[i] == long[i] {
        i += 1;
    }
    if short.len() == long.len() {
        // One substitution: tails after the mismatch must agree.
        short[i + 1..] == long[i + 1..]
    } else {
        // One insertion in `long`: skip the extra char and compare tails.
        short[i..] == long[i + 1..]
    }
}

#[cfg(test)]
mod tests {
    use super::edit_distance_at_most_one;

    #[test]
    fn edit_distance_one() {
        assert!(edit_distance_at_most_one("edge", "edgs"));
        assert!(edit_distance_at_most_one("edge", "edg"));
        assert!(edit_distance_at_most_one("edg", "edge"));
        assert!(edit_distance_at_most_one("edge", "ledge"));
        assert!(!edit_distance_at_most_one("edge", "edge"));
        assert!(!edit_distance_at_most_one("edge", "node"));
        assert!(!edit_distance_at_most_one("edge", "ed"));
    }
}
