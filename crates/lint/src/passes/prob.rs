//! Probability checks: out-of-range (P3301), zero-probability clauses
//! (P3302) and duplicate ground facts combined by noisy-or (P3303).

use crate::ctx::Ctx;
use p3_datalog::ast::{Atom, Term};
use p3_datalog::diag::Diagnostic;
use std::collections::HashMap;

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    for (i, clause) in ctx.clauses.iter().enumerate() {
        if !(0.0..=1.0).contains(&clause.prob) {
            let d = Diagnostic::error(
                "P3301",
                format!(
                    "clause '{}' has probability {} outside [0, 1]",
                    clause.label, clause.prob
                ),
            )
            .with_span(ctx.prob_span(i))
            .with_clause(&clause.label);
            ctx.emit(d);
        } else if clause.prob == 0.0 {
            let d = Diagnostic::warn(
                "P3302",
                format!(
                    "clause '{}' has probability 0: it can never be present in a sampled world",
                    clause.label
                ),
            )
            .with_span(ctx.prob_span(i))
            .with_clause(&clause.label)
            .with_help("delete the clause, or give it a positive probability");
            ctx.emit(d);
        }
    }
    duplicate_facts(ctx);
}

/// Two facts with the same ground head are legal — their presence variables
/// are independent and the query probability noisy-ors them — but are most
/// often an accidental repetition, so flag the later occurrences.
fn duplicate_facts(ctx: &mut Ctx<'_>) {
    let mut seen: HashMap<(usize, Vec<Term>), usize> = HashMap::new();
    let mut findings = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        if !clause.is_fact() || !clause.head.is_ground() {
            continue;
        }
        let key = (clause.head.pred.index(), clause.head.args.clone());
        if let Some(&first) = seen.get(&key) {
            findings.push((i, first));
        } else {
            seen.insert(key, i);
        }
    }
    for (i, first) in findings {
        let head: &Atom = &ctx.clauses[i].head;
        let label = ctx.clauses[i].label.clone();
        let first_label = ctx.clauses[first].label.clone();
        let rendered = format!("{}", head.display(ctx.symbols));
        let d = Diagnostic::warn("P3303", format!("duplicate ground fact {rendered}"))
            .with_span(ctx.head_span(i))
            .with_clause(&label)
            .with_help(format!(
                "'{first_label}' already asserts this tuple; the duplicates are independent \
             variables and their probabilities combine by noisy-or"
            ));
        ctx.emit(d);
    }
}
