//! Range-restriction (safety) checks: P3101, P3102, P3103.
//!
//! These mirror `Program` validation but keep going after the first
//! finding, so one lint run reports every violation in the file.

use crate::ctx::Ctx;
use p3_datalog::ast::ClauseKind;
use p3_datalog::diag::Diagnostic;
use p3_datalog::symbol::Symbol;
use std::collections::HashSet;

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    for (i, clause) in ctx.clauses.iter().enumerate() {
        match &clause.kind {
            ClauseKind::Fact => {
                if !clause.head.is_ground() {
                    let d = Diagnostic::error(
                        "P3102",
                        format!("base tuple '{}' contains a variable", clause.label),
                    )
                    .with_span(ctx.head_span(i))
                    .with_clause(&clause.label)
                    .with_help("facts must be ground: replace each variable with a constant");
                    ctx.emit(d);
                }
            }
            ClauseKind::Rule {
                body,
                negated,
                constraints,
            } => {
                if body.is_empty() {
                    let d = Diagnostic::error(
                        "P3103",
                        format!("rule '{}' has no body atoms", clause.label),
                    )
                    .with_span(ctx.clause_span(i))
                    .with_clause(&clause.label)
                    .with_help(
                        "a rule needs at least one positive body atom to bind its variables",
                    );
                    ctx.emit(d);
                }
                let bound: HashSet<Symbol> = body.iter().flat_map(|a| a.vars()).collect();
                // Report each unbound variable once per clause, at the span
                // of the first part that uses it.
                let mut reported: HashSet<Symbol> = HashSet::new();
                let mut findings = Vec::new();
                for var in clause.head.vars() {
                    if !bound.contains(&var) && reported.insert(var) {
                        findings.push((var, ctx.head_span(i)));
                    }
                }
                for (j, constraint) in constraints.iter().enumerate() {
                    for var in constraint.vars() {
                        if !bound.contains(&var) && reported.insert(var) {
                            findings.push((var, ctx.constraint_span(i, j)));
                        }
                    }
                }
                for (j, atom) in negated.iter().enumerate() {
                    for var in atom.vars() {
                        if !bound.contains(&var) && reported.insert(var) {
                            findings.push((var, ctx.negated_span(i, j)));
                        }
                    }
                }
                for (var, span) in findings {
                    let d = Diagnostic::error(
                        "P3101",
                        format!(
                            "clause '{}' is unsafe: variable {} does not occur in any body atom",
                            clause.label,
                            ctx.name(var)
                        ),
                    )
                    .with_span(span)
                    .with_clause(&clause.label)
                    .with_help(
                        "every head, constraint and negated-atom variable must also appear \
                         in a positive body atom",
                    );
                    ctx.emit(d);
                }
            }
        }
    }
}
