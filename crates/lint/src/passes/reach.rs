//! Reachability analysis: dead rules (P3401) and unused fact predicates
//! (P3402), via a support fixpoint over predicates.

use crate::ctx::Ctx;
use p3_datalog::diag::Diagnostic;
use p3_datalog::symbol::Symbol;
use std::collections::HashSet;

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    // A predicate is *supported* when some derivation could produce a tuple
    // for it: it has a fact, or a rule all of whose positive body predicates
    // are supported. (Negated atoms need no support — a negated atom over an
    // empty predicate is trivially satisfied.)
    let mut supported: HashSet<Symbol> = ctx
        .clauses
        .iter()
        .filter(|c| c.is_fact())
        .map(|c| c.head.pred)
        .collect();
    loop {
        let mut changed = false;
        for clause in ctx.clauses.iter().filter(|c| c.is_rule()) {
            if supported.contains(&clause.head.pred) {
                continue;
            }
            if clause.body().iter().all(|a| supported.contains(&a.pred)) {
                supported.insert(clause.head.pred);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // P3401: a rule with an unsupported positive body atom can never fire.
    let mut findings = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        if !clause.is_rule() {
            continue;
        }
        if let Some((j, atom)) = clause
            .body()
            .iter()
            .enumerate()
            .find(|(_, a)| !supported.contains(&a.pred))
        {
            findings.push((i, j, atom.pred, clause.label.clone()));
        }
    }
    for (i, j, pred, label) in findings {
        let d = Diagnostic::warn(
            "P3401",
            format!(
                "rule '{}' can never fire: predicate '{}' has no derivable tuples",
                label,
                ctx.name(pred)
            ),
        )
        .with_span(ctx.body_span(i, j))
        .with_clause(&label)
        .with_help(
            "no fact or reachable rule produces this predicate, so the body is unsatisfiable",
        );
        ctx.emit(d);
    }

    // P3402: a predicate defined only by facts that no rule body ever reads
    // is dead weight (in a program that has rules at all).
    if !ctx.clauses.iter().any(|c| c.is_rule()) {
        return;
    }
    let rule_defined: HashSet<Symbol> = ctx
        .clauses
        .iter()
        .filter(|c| c.is_rule())
        .map(|c| c.head.pred)
        .collect();
    let read: HashSet<Symbol> = ctx
        .clauses
        .iter()
        .flat_map(|c| c.body().iter().chain(c.negated().iter()))
        .map(|a| a.pred)
        .collect();
    let mut reported: HashSet<Symbol> = HashSet::new();
    let mut findings = Vec::new();
    for (i, clause) in ctx.clauses.iter().enumerate() {
        let pred = clause.head.pred;
        if clause.is_fact()
            && !rule_defined.contains(&pred)
            && !read.contains(&pred)
            && reported.insert(pred)
        {
            findings.push((i, pred, clause.label.clone()));
        }
    }
    for (i, pred, label) in findings {
        let d = Diagnostic::info(
            "P3402",
            format!(
                "fact predicate '{}' is never used by any rule body",
                ctx.name(pred)
            ),
        )
        .with_span(ctx.head_span(i))
        .with_clause(&label)
        .with_help("its tuples are only reachable by querying the predicate directly");
        ctx.emit(d);
    }
}
