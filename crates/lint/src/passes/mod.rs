//! The lint passes, run in pipeline order by [`crate::lint_source`].

pub(crate) mod names;
pub(crate) mod prob;
pub(crate) mod reach;
pub(crate) mod safety;
pub(crate) mod strata;
