//! `p3-lint` — static analysis for probabilistic logic programs.
//!
//! A multi-pass analyzer over the parsed AST and the predicate dependency
//! graph. Passes, in order:
//!
//! 1. **safety** — range restriction: unsafe variables (`P3101`), non-ground
//!    facts (`P3102`), empty rule bodies (`P3103`).
//! 2. **names** — duplicate clause labels (`P3104`), arity mismatches
//!    (`P3105`), undefined predicates with edit-distance-1 typo suggestions
//!    (`P3501`).
//! 3. **prob** — probabilities outside `[0, 1]` (`P3301`), zero-probability
//!    clauses (`P3302`), duplicate ground facts (`P3303`).
//! 4. **reach** — dead rules that can never fire (`P3401`), unused fact
//!    predicates (`P3402`).
//! 5. **strata** — unstratified negation via Tarjan SCCs (`P3201`), negation
//!    outside the provenance model (`P3202`), recursive-SCC cost notes
//!    (`P3601`), high rule fan-in (`P3602`), demand-mode recommendation for
//!    programs whose shape suits query-directed evaluation (`P3603`),
//!    persistent-store recommendation for recursion-heavy programs whose
//!    provenance is worth journaling across restarts (`P3604`).
//!
//! Unlike [`Program`](p3_datalog::Program) validation — which stops at the
//! first error — a lint run reports *every* finding, each with a source
//! span, a severity, and a stable `P3xxx` code. [`LintReport::render`]
//! produces rustc-style text; [`LintReport::to_json`] a machine-readable
//! array.

pub mod cost;
mod ctx;
mod graph;
pub mod messages;
mod passes;

use ctx::Ctx;
use p3_datalog::ast::Clause;
use p3_datalog::parser::{self, ClauseSpans};
use p3_datalog::symbol::SymbolTable;
use p3_datalog::Program;

pub use p3_datalog::diag::{Diagnostic, Severity};

/// The outcome of linting one program: all findings, sorted by source
/// position then code.
#[derive(Debug)]
pub struct LintReport {
    /// The findings, located (line/column resolved) and sorted.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no finding has error severity.
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// True when at least one finding has error severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of info-severity findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The highest severity present, or `None` for a finding-free program.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Only the findings at or above `min` severity.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity >= min)
    }

    /// Renders every finding rustc-style against `src`, followed by a
    /// one-line summary. `path` labels the source in `-->` lines.
    pub fn render(&self, src: Option<&str>, path: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(src, path));
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// The `N errors, M warnings, K notes` summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} note(s)",
            self.error_count(),
            self.warn_count(),
            self.info_count()
        )
    }

    /// A JSON array of the findings (objects as produced by
    /// [`Diagnostic::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        out
    }
}

/// Lints source text. A parse failure yields a single-diagnostic report
/// (code `P3001`, or `P3301` for an out-of-range probability literal) —
/// the analyzer never returns `Err`.
pub fn lint_source(src: &str) -> LintReport {
    match parser::parse(src) {
        Ok(parsed) => {
            let mut report = lint_clauses(&parsed.clauses, &parsed.symbols, &parsed.spans);
            report.diagnostics = report
                .diagnostics
                .into_iter()
                .map(|d| d.locate(src))
                .collect();
            sort(&mut report);
            record_metrics(&report);
            report
        }
        Err(e) => {
            let report = LintReport {
                diagnostics: vec![e.to_diagnostic()],
            };
            record_metrics(&report);
            report
        }
    }
}

/// Lints an already-validated [`Program`]. Validation has ruled out the
/// error-level structural defects, so this surfaces the warning- and
/// info-level findings (plus any error findings a programmatically built
/// program might still carry).
pub fn lint_program(program: &Program) -> LintReport {
    let mut report = lint_clauses(program.clauses(), program.symbols(), program.spans());
    if let Some(src) = program.source() {
        report.diagnostics = report
            .diagnostics
            .into_iter()
            .map(|d| d.locate(src))
            .collect();
    }
    sort(&mut report);
    record_metrics(&report);
    report
}

/// Runs the pass pipeline over raw clauses. Spans may be empty (or shorter
/// than the clause list) for programmatically built programs.
fn lint_clauses(clauses: &[Clause], symbols: &SymbolTable, spans: &[ClauseSpans]) -> LintReport {
    let mut ctx = Ctx::new(clauses, symbols, spans);
    passes::safety::run(&mut ctx);
    passes::names::run(&mut ctx);
    passes::prob::run(&mut ctx);
    passes::reach::run(&mut ctx);
    passes::strata::run(&mut ctx);
    LintReport {
        diagnostics: ctx.diagnostics,
    }
}

fn sort(report: &mut LintReport) {
    report.diagnostics.sort_by(|a, b| {
        let pos = |d: &Diagnostic| d.span.map_or((usize::MAX, 0), |s| (s.start, s.end));
        pos(a).cmp(&pos(b)).then_with(|| a.code.cmp(b.code))
    });
}

fn record_metrics(report: &LintReport) {
    p3_obs::counter!("p3_lint_runs_total", "Lint runs executed").inc();
    for severity in [Severity::Error, Severity::Warn, Severity::Info] {
        let n = report.count(severity);
        if n == 0 {
            continue;
        }
        let labels = p3_obs::metrics::render_labels(&[("severity", severity.as_str())]);
        let counter = p3_obs::metrics::labeled_counter(
            "p3_lint_findings_total",
            "Lint findings reported, by severity",
            &labels,
        );
        for _ in 0..n {
            counter.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let report = lint_source(
            "e1 0.5: edge(a,b).\n\
             e2 0.6: edge(b,c).\n\
             r1 0.9: path(X,Y) :- edge(X,Y).\n\
             r2 0.9: path(X,Y) :- path(X,Z), edge(Z,Y).\n",
        );
        let serious: Vec<_> = report.at_least(Severity::Warn).collect();
        assert!(serious.is_empty(), "{:?}", serious);
        // The recursive path SCC is still noted.
        assert!(codes(&report).contains(&"P3601"));
    }

    #[test]
    fn lint_keeps_going_past_the_first_error() {
        let report = lint_source(
            "f(X).\n\
             g(a) :- X != a.\n",
        );
        let codes = codes(&report);
        assert!(codes.contains(&"P3102"), "{codes:?}");
        assert!(codes.contains(&"P3103"), "{codes:?}");
        assert!(codes.contains(&"P3101"), "{codes:?}");
        assert_eq!(report.error_count(), 3);
        assert!(report.has_errors());
        assert!(!report.is_clean());
    }

    #[test]
    fn parse_failure_becomes_a_single_diagnostic() {
        let report = lint_source("p(a) :-\n");
        assert_eq!(codes(&report), vec!["P3001"]);
        assert_eq!(report.worst(), Some(Severity::Error));
    }

    #[test]
    fn out_of_range_probability_literal_reports_p3301() {
        let report = lint_source("t1 1.5: p(a).\n");
        assert_eq!(codes(&report), vec!["P3301"]);
    }

    #[test]
    fn findings_are_sorted_by_source_position() {
        let report = lint_source(
            "p(a).\n\
             q(X) :- missing(X).\n\
             r(Y) :- p(Y), \\+ r(Y).\n",
        );
        let starts: Vec<_> = report
            .diagnostics
            .iter()
            .map(|d| d.span.map_or(usize::MAX, |s| s.start))
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn unstratified_negation_is_an_error() {
        let report = lint_source("p(a).\nwin(X) :- p(X), \\+ win(X).\n");
        assert!(codes(&report).contains(&"P3201"));
        assert!(codes(&report).contains(&"P3202"));
        assert!(report.has_errors());
    }

    #[test]
    fn stratified_negation_is_only_a_warning() {
        let report = lint_source("p(a).\nq(a).\ns(X) :- p(X), \\+ q(X).\n");
        assert!(!codes(&report).contains(&"P3201"));
        assert!(codes(&report).contains(&"P3202"));
        assert!(!report.has_errors());
    }

    #[test]
    fn lint_program_works_without_spans() {
        use p3_datalog::program::{ProgramBuilder, T};
        let mut b = ProgramBuilder::new();
        b.fact("t1", 0.5, "p", &[T::sym("a")]);
        b.fact("t2", 0.5, "orphan", &[T::sym("b")]);
        b.rule(
            "r1",
            0.9,
            ("q", &[T::var("X")][..]),
            &[("p", &[T::var("X")][..])],
            &[],
        );
        let program = b.build().expect("valid");
        let report = lint_program(&program);
        assert!(codes(&report).contains(&"P3402"));
        for d in &report.diagnostics {
            assert!(d.span.is_none());
            assert_eq!(d.line, 0, "no located line without source");
        }
    }

    #[test]
    fn json_output_is_an_array() {
        let report = lint_source("f(X).\n");
        let json = report.to_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"code\":\"P3102\""), "{json}");
    }

    #[test]
    fn render_includes_summary_line() {
        let report = lint_source("f(X).\n");
        let text = report.render(Some("f(X).\n"), Some("bad.pl"));
        assert!(text.contains("error[P3102]"), "{text}");
        assert!(text.contains("bad.pl:1:"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
    }
}
