//! Predicate dependency graph and strongly connected components.
//!
//! Nodes are predicate symbols; there is an edge `head -> p` for every
//! predicate `p` occurring in the body of a rule defining `head`. Positive
//! and negative occurrences are tracked separately so the stratification
//! pass can tell which SCC-internal edges go through negation.

use p3_datalog::ast::Clause;
use p3_datalog::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// The predicate dependency graph of a program.
pub(crate) struct DepGraph {
    /// Dense node ids, in first-occurrence order (heads first, then bodies).
    pub preds: Vec<Symbol>,
    index: HashMap<Symbol, usize>,
    /// `succ[u]` lists every node reachable by one (positive or negative)
    /// dependency edge from `u`, deduplicated.
    succ: Vec<Vec<usize>>,
    /// Edges induced by negated body atoms, as `(head, body_pred)` node pairs.
    pub neg_edges: HashSet<(usize, usize)>,
}

impl DepGraph {
    pub fn build(clauses: &[Clause]) -> Self {
        let mut graph = DepGraph {
            preds: Vec::new(),
            index: HashMap::new(),
            succ: Vec::new(),
            neg_edges: HashSet::new(),
        };
        for clause in clauses {
            graph.node(clause.head.pred);
        }
        for clause in clauses {
            let head = graph.node(clause.head.pred);
            for atom in clause.body() {
                let dep = graph.node(atom.pred);
                graph.edge(head, dep);
            }
            for atom in clause.negated() {
                let dep = graph.node(atom.pred);
                graph.edge(head, dep);
                graph.neg_edges.insert((head, dep));
            }
        }
        graph
    }

    /// The dense id for `pred`, if it occurs anywhere in the program.
    pub fn id(&self, pred: Symbol) -> Option<usize> {
        self.index.get(&pred).copied()
    }

    fn node(&mut self, pred: Symbol) -> usize {
        if let Some(&i) = self.index.get(&pred) {
            return i;
        }
        let i = self.preds.len();
        self.preds.push(pred);
        self.index.insert(pred, i);
        self.succ.push(Vec::new());
        i
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succ[from].contains(&to) {
            self.succ[from].push(to);
        }
    }

    /// Strongly connected components via iterative Tarjan, in reverse
    /// topological order (callees before callers). Each component lists its
    /// member node ids.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        const UNVISITED: usize = usize::MAX;
        let n = self.preds.len();
        let mut order = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_order = 0usize;
        let mut components = Vec::new();
        // Explicit DFS frames: (node, index of next successor to visit).
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if order[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut next)) = frames.last_mut() {
                if *next == 0 {
                    order[v] = next_order;
                    low[v] = next_order;
                    next_order += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = self.succ[v].get(*next) {
                    *next += 1;
                    if order[w] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(order[w]);
                    }
                    continue;
                }
                // All successors done: pop the frame, maybe emit an SCC.
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == order[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
        components
    }

    /// True when node `v` sits on a cycle: its SCC has more than one member,
    /// or it has a self-loop.
    pub fn self_loop(&self, v: usize) -> bool {
        self.succ[v].contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_datalog::Program;

    fn graph_of(src: &str) -> (DepGraph, Program) {
        let program = Program::parse(src).expect("parse");
        let graph = DepGraph::build(program.clauses());
        (graph, program)
    }

    #[test]
    fn sccs_group_mutual_recursion() {
        let (graph, program) = graph_of(
            "f(a).\n\
             p(X) :- q(X).\n\
             q(X) :- p(X).\n\
             r(X) :- p(X), f(X).\n",
        );
        let p = program.symbols().get("p").unwrap();
        let q = program.symbols().get("q").unwrap();
        let sccs = graph.sccs();
        let pq = sccs
            .iter()
            .find(|c| c.iter().any(|&v| graph.preds[v] == p))
            .unwrap();
        assert_eq!(pq.len(), 2);
        assert!(pq.iter().any(|&v| graph.preds[v] == q));
    }

    #[test]
    fn self_loop_detected() {
        let (graph, program) = graph_of("e(a,b).\nt(X,Y) :- e(X,Y).\nt(X,Y) :- t(X,Z), e(Z,Y).\n");
        let t = program.symbols().get("t").unwrap();
        let id = graph.id(t).unwrap();
        assert!(graph.self_loop(id));
        let sccs = graph.sccs();
        let t_scc = sccs.iter().find(|c| c.contains(&id)).unwrap();
        assert_eq!(t_scc.len(), 1, "self-recursive pred is its own SCC");
    }

    #[test]
    fn neg_edges_are_recorded() {
        let (graph, program) = graph_of("a(x).\nb(x).\ns(X) :- a(X), \\+ b(X).\n");
        let s = graph.id(program.symbols().get("s").unwrap()).unwrap();
        let b = graph.id(program.symbols().get("b").unwrap()).unwrap();
        assert!(graph.neg_edges.contains(&(s, b)));
        assert_eq!(graph.neg_edges.len(), 1);
    }
}
