//! The shared message table for recommendations that two planes emit.
//!
//! `P3603` (demand mode) and `P3604` (persistent store) are raised both
//! statically — from program shape, in [`crate::passes`] — and from
//! measured evaluation cost in [`crate::cost`]. Each plane supplies its
//! own *evidence* clause, but the code, the recommendation phrase it
//! leads into, and the `= help:` text come from this one table, so the
//! two renderings can never drift apart.

use p3_datalog::diag::Diagnostic;

/// One row of the table: a stable code, the canonical recommendation
/// phrase the evidence clause leads into, and the canonical help text.
pub struct Recommendation {
    /// The stable `P3xxx` code.
    pub code: &'static str,
    /// Canonical recommendation phrase; the rendered message is
    /// `"<evidence> <summary>"`.
    pub summary: &'static str,
    /// Canonical `= help:` text shared by every emitter of the code.
    pub help: &'static str,
}

impl Recommendation {
    /// Builds the info-severity diagnostic from one plane's evidence
    /// clause, e.g. `"program shape (recursive cycles)"` or
    /// `"recursive rule 'r2' dominating naive evaluation (…)"`.
    pub fn note(&self, evidence: impl AsRef<str>) -> Diagnostic {
        Diagnostic::info(self.code, format!("{} {}", evidence.as_ref(), self.summary))
            .with_help(self.help)
    }
}

/// `P3603`: query-directed (demand) evaluation pays off.
pub const DEMAND_MODE: Recommendation = Recommendation {
    code: "P3603",
    summary: "benefits from query-directed evaluation",
    help: "demand mode magic-transforms the program per query and derives only the \
           query-relevant fragment; pass --eval-mode demand (auto mode already \
           selects it for recursive and predicted-expensive programs)",
};

/// `P3604`: warm restarts via the persistent store pay off.
pub const WARM_RESTART: Recommendation = Recommendation {
    code: "P3604",
    summary: "makes warm restarts worthwhile",
    help: "recursive provenance is re-derived from scratch on every process start; \
           p3-serve --store-dir DIR journals interned formulas and query memos and \
           replays them on the next boot, skipping the re-derivation",
};

#[cfg(test)]
mod tests {
    use super::*;
    use p3_datalog::diag::Severity;

    #[test]
    fn both_planes_share_one_wording() {
        let from_shape = DEMAND_MODE.note("program shape (recursive cycles)");
        let from_measurement = DEMAND_MODE.note("recursive rule 'r2' dominating naive evaluation");
        assert_eq!(from_shape.code, from_measurement.code);
        assert_eq!(from_shape.help, from_measurement.help);
        assert!(from_shape
            .message
            .ends_with("benefits from query-directed evaluation"));
        assert!(from_measurement
            .message
            .ends_with("benefits from query-directed evaluation"));
        assert_eq!(from_shape.severity, Severity::Info);
    }

    #[test]
    fn store_row_matches_its_code() {
        let d = WARM_RESTART.note("evidence");
        assert_eq!(d.code, "P3604");
        assert!(d.message.ends_with("makes warm restarts worthwhile"));
        assert!(d.help.as_deref().unwrap().contains("--store-dir"));
    }
}
