//! The shared pass context: the parsed program plus span lookups and the
//! accumulating diagnostic list.

use p3_datalog::ast::Clause;
use p3_datalog::diag::Diagnostic;
use p3_datalog::parser::{ClauseSpans, Span};
use p3_datalog::symbol::{Symbol, SymbolTable};

/// Everything a pass needs: clauses, names, spans, and the sink.
pub(crate) struct Ctx<'a> {
    pub clauses: &'a [Clause],
    pub symbols: &'a SymbolTable,
    spans: &'a [ClauseSpans],
    pub diagnostics: Vec<Diagnostic>,
}

impl<'a> Ctx<'a> {
    pub fn new(clauses: &'a [Clause], symbols: &'a SymbolTable, spans: &'a [ClauseSpans]) -> Self {
        Self {
            clauses,
            symbols,
            spans,
            diagnostics: Vec::new(),
        }
    }

    /// Resolves a predicate or variable symbol to its name.
    pub fn name(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// Records one finding.
    pub fn emit(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Span accessors: all return `None` for programmatically built
    /// programs, which carry no spans.
    pub fn clause_span(&self, i: usize) -> Option<Span> {
        self.spans.get(i).map(|s| s.clause)
    }

    pub fn head_span(&self, i: usize) -> Option<Span> {
        self.spans.get(i).map(|s| s.head)
    }

    pub fn prob_span(&self, i: usize) -> Option<Span> {
        self.spans
            .get(i)
            .and_then(|s| s.prob)
            .or_else(|| self.clause_span(i))
    }

    pub fn body_span(&self, i: usize, j: usize) -> Option<Span> {
        self.spans.get(i).and_then(|s| s.body.get(j).copied())
    }

    pub fn negated_span(&self, i: usize, j: usize) -> Option<Span> {
        self.spans.get(i).and_then(|s| s.negated.get(j).copied())
    }

    pub fn constraint_span(&self, i: usize, j: usize) -> Option<Span> {
        self.spans
            .get(i)
            .and_then(|s| s.constraints.get(j).copied())
    }
}
