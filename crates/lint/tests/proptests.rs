//! Property-based tests: the analyzer must never panic, whatever program it
//! is handed, and generated workload programs must pass the error-severity
//! gate (they are valid by construction — warnings such as duplicate ground
//! facts are acceptable).

use p3_lint::{lint_program, lint_source};
use p3_workloads::random_programs::{generate, RandomConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_workloads_lint_clean_at_error_severity(
        domain in 2usize..6,
        facts in 1usize..30,
        rules in 0usize..12,
        recursion_bias in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let program = generate(RandomConfig { domain, facts, rules, recursion_bias, seed });

        // Lint the structured program (spanless path)...
        let report = lint_program(&program);
        prop_assert!(
            !report.has_errors(),
            "generated program has lint errors (seed {seed}):\n{}",
            report.render(program.source(), None)
        );

        // ...and its rendered source (full parse → lint pipeline). Both views
        // must agree that the program passes the gate.
        let src = program.source().expect("generated programs carry source");
        let report = lint_source(src);
        prop_assert!(
            !report.has_errors(),
            "generated source has lint errors (seed {seed}):\n{}",
            report.render(Some(src), None)
        );
    }

    #[test]
    fn linting_arbitrary_text_never_panics(src in "[a-zA-Z0-9_ (),.:%\\-\\\\+!=<>\n]{0,160}") {
        // Any byte soup must produce a report, not a panic: worst case is a
        // single P3001 parse diagnostic.
        let report = lint_source(&src);
        for d in &report.diagnostics {
            prop_assert!(!d.code.is_empty());
        }
    }
}
