% p is unary in the fact but binary in the rule body.
t1 0.5: p(a).
r1 0.9: q(X) :- p(X,X).
