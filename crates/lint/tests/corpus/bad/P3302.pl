% Probability 0: the clause can never be present.
t1 0.0: p(a).
r1 0.9: q(X) :- p(X).
