% A base tuple must be ground.
t1 0.5: p(X).
