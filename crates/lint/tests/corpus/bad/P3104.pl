% Labels name the Boolean random variables; t1 is used twice.
t1 0.5: p(a).
t1 0.5: p(b).
r1 0.9: q(X) :- p(X).
