% Transitive closure: a recursive SCC, cut by the hop limit.
t1 0.5: e(a,b).
r1 0.9: t(X,Y) :- e(X,Y).
r2 0.9: t(X,Y) :- t(X,Z), e(Z,Y).
