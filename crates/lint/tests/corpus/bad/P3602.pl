% Four alternatives for p: derivation DNF fan-in.
t1 0.5: a(x).
r1 0.9: p(X) :- a(X).
r2 0.8: p(X) :- a(X).
r3 0.7: p(X) :- a(X).
r4 0.6: p(X) :- a(X).
