% The same ground tuple asserted twice (noisy-or combines them).
t1 0.5: p(a).
t2 0.6: p(a).
r1 0.9: q(X) :- p(X).
