% Recursive closure: a query-directed (demand) evaluation candidate.
t1 0.5: e(a,b).
t2 0.5: e(b,c).
r1 0.9: t(X,Y) :- e(X,Y).
r2 0.9: t(X,Y) :- t(X,Z), e(Z,Y).
