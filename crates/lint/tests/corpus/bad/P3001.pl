% A clause that stops mid-rule: parse error.
t1 0.5: p(a).
r1 0.9: q(X) :- .
