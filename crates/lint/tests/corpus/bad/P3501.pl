% edgs is a typo for edge (edit distance 1).
t1 0.5: edge(a,b).
r1 0.9: path(X,Y) :- edgs(X,Y).
