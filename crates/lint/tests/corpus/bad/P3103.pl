% A rule body needs at least one positive atom.
r1 0.9: q(a) :- a = a.
