% Negation inside a recursive cycle: no stratification exists.
t1 0.5: p(a).
r1 0.9: win(X) :- p(X), \+ win(X).
