% Stratified negation: evaluable, but outside the provenance model.
t1 0.5: p(a).
t2 0.5: q(a).
r1 0.9: s(X) :- p(X), \+ q(X).
