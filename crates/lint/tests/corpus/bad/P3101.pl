% Y never occurs in a positive body atom: the rule is unsafe.
t1 0.5: e(a).
r1 0.9: p(X,Y) :- e(X), Y != b.
