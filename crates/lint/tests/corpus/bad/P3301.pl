% A probability literal outside [0, 1].
t1 1.5: p(a).
