% ghost has no base case, so neither rule can ever fire.
t1 0.5: p(a).
r1 0.9: q(X) :- p(X), ghost(X).
r2 0.9: ghost(X) :- ghost(X), p(X).
