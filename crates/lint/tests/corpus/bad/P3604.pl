t1 0.9: edge(a, b).
t2 0.8: edge(b, c).
t3 0.9: link(a, b).
r1 0.5: path(X, Y) :- edge(X, Y).
r2 0.5: path(X, Z) :- path(X, Y), edge(Y, Z).
r3 0.5: reach(X, Y) :- link(X, Y).
r4 0.5: reach(X, Z) :- reach(X, Y), link(Y, Z).
