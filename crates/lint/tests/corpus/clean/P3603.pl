% Flat program, low fan-in: naive evaluation is already cheap.
t1 0.5: p(a).
t2 0.5: q(b).
r1 0.9: r(X) :- p(X).
r2 0.8: r(X) :- q(X).
