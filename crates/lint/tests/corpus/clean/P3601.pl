t1 0.5: e(a,b).
r1 0.9: t(X,Y) :- e(X,Y).
