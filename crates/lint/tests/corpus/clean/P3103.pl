t1 0.5: w(a).
r1 0.9: q(X) :- w(X), X = a.
