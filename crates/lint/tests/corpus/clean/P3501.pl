t1 0.5: edge(a,b).
r1 0.9: path(X,Y) :- edge(X,Y).
