t1 0.5: p(a,a).
r1 0.9: q(X) :- p(X,X).
