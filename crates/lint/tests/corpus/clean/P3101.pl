t1 0.5: e(a).
t2 0.5: e(b).
r1 0.9: p(X,Y) :- e(X), e(Y), Y != b.
