t1 0.5: p(a).
t2 0.5: lost(a).
r1 0.9: win(X) :- p(X), \+ lost(X).
