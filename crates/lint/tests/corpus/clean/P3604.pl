t1 0.9: edge(a, b).
t2 0.8: edge(b, c).
r1 0.5: path(X, Y) :- edge(X, Y).
r2 0.5: path(X, Z) :- path(X, Y), edge(Y, Z).
