t1 0.5: p(a).
t2 0.5: orphan(b).
r1 0.9: q(X) :- p(X).
r2 0.9: q(X) :- orphan(X).
