t1 0.5: p(a).
t2 0.5: ghost(a).
r1 0.9: q(X) :- p(X), ghost(X).
