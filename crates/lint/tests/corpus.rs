//! Corpus tests: every lint code has a triggering program under
//! `tests/corpus/bad/` (with a snapshot of its expected diagnostics in the
//! matching `.expected` file) and a clean counterpart under
//! `tests/corpus/clean/` that must not produce the code.
//!
//! Regenerate snapshots after an intentional diagnostic change with
//! `P3_UPDATE_EXPECTED=1 cargo test -p p3-lint --test corpus`.

use p3_lint::{lint_source, LintReport};
use std::path::{Path, PathBuf};

/// All codes the analyzer can emit, one corpus pair each.
const CODES: &[&str] = &[
    "P3001", "P3101", "P3102", "P3103", "P3104", "P3105", "P3201", "P3202", "P3301", "P3302",
    "P3303", "P3401", "P3402", "P3501", "P3601", "P3602", "P3603", "P3604",
];

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// A compact, line-oriented snapshot of a report: one finding per line.
fn brief(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}[{}] {}:{} {}\n",
            d.severity.as_str(),
            d.code,
            d.line,
            d.column,
            d.message
        ));
    }
    out
}

#[test]
fn every_code_has_a_triggering_program_matching_its_snapshot() {
    let update = std::env::var_os("P3_UPDATE_EXPECTED").is_some();
    for code in CODES {
        let program = corpus_dir().join("bad").join(format!("{code}.pl"));
        let src = std::fs::read_to_string(&program)
            .unwrap_or_else(|e| panic!("missing corpus program {}: {e}", program.display()));
        let report = lint_source(&src);
        assert!(
            report.diagnostics.iter().any(|d| d.code == *code),
            "{code}: corpus program did not trigger its code; got:\n{}",
            brief(&report)
        );
        let snapshot = corpus_dir().join("bad").join(format!("{code}.expected"));
        let actual = brief(&report);
        if update {
            std::fs::write(&snapshot, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&snapshot).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {} (set P3_UPDATE_EXPECTED=1 to create): {e}",
                snapshot.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "{code}: diagnostics drifted from snapshot {}",
            snapshot.display()
        );
    }
}

#[test]
fn every_code_has_a_clean_counterpart() {
    for code in CODES {
        let program = corpus_dir().join("clean").join(format!("{code}.pl"));
        let src = std::fs::read_to_string(&program)
            .unwrap_or_else(|e| panic!("missing clean program {}: {e}", program.display()));
        let report = lint_source(&src);
        assert!(
            report.diagnostics.iter().all(|d| d.code != *code),
            "{code}: clean counterpart still triggers the code:\n{}",
            brief(&report)
        );
        assert!(
            report.is_clean(),
            "{code}: clean counterpart has error findings:\n{}",
            brief(&report)
        );
    }
}

#[test]
fn typo_findings_carry_a_suggestion() {
    let program = corpus_dir().join("bad").join("P3501.pl");
    let src = std::fs::read_to_string(&program).unwrap();
    let report = lint_source(&src);
    let typo = report
        .diagnostics
        .iter()
        .find(|d| d.code == "P3501")
        .expect("P3501 finding");
    assert_eq!(typo.help.as_deref(), Some("did you mean 'edge'?"));
}

#[test]
fn bad_programs_render_with_source_excerpts() {
    // Spot-check the rustc-style rendering on a spanned corpus finding.
    let program = corpus_dir().join("bad").join("P3101.pl");
    let src = std::fs::read_to_string(&program).unwrap();
    let report = lint_source(&src);
    let text = report.render(Some(&src), Some("P3101.pl"));
    assert!(text.contains("error[P3101]"), "{text}");
    assert!(text.contains("P3101.pl:3:"), "{text}");
    assert!(text.contains('^'), "caret underline expected:\n{text}");
}
