//! # p3-workloads
//!
//! Workload generators for the P3 evaluation:
//!
//! * [`acquaintance`] — the running example of §2.1 (Fig 2);
//! * [`trust`] — the Mutual Trust case study (§5.2) and the synthetic
//!   Bitcoin-OTC-like network behind the §6 performance experiments
//!   (the real SNAP dataset is unavailable offline; the generator matches
//!   its size, degree skew and weight range — see DESIGN.md);
//! * [`vqa`] — the Visual Question Answering case study (§5.1), with the
//!   paper's planted `sim` data bug;
//! * [`random_programs`] — random small PLP programs for oracle-based
//!   property testing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod acquaintance;
pub mod random_programs;
pub mod trust;
pub mod vqa;
