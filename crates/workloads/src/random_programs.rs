//! Random small PLP programs for oracle-based property testing.
//!
//! The generator emits programs that are always valid (safe rules, ground
//! facts, in-range probabilities) and small enough for the possible-worlds
//! oracle, with recursion allowed so cycle elimination is exercised.

use p3_datalog::program::Program;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Parameters for the random generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomConfig {
    /// Number of constants in the domain (small → dense joins).
    pub domain: usize,
    /// Number of probabilistic facts (also the oracle's 2^n cost driver).
    pub facts: usize,
    /// Number of rules.
    pub rules: usize,
    /// Probability that a rule is recursive (its own head predicate appears
    /// in the body).
    pub recursion_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        Self {
            domain: 3,
            facts: 6,
            rules: 4,
            recursion_bias: 0.5,
            seed: 0,
        }
    }
}

/// Generates a random program. The EDB predicate is binary `e/2`; IDB
/// predicates are binary `p0/2 … p2/2`, wired into chains and unions with
/// optional recursion.
pub fn generate(cfg: RandomConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut src = String::new();

    // Facts: random edges over the domain with random probabilities.
    let mut seen = std::collections::HashSet::new();
    let mut emitted = 0usize;
    let mut attempts = 0usize;
    while emitted < cfg.facts && attempts < cfg.facts * 20 {
        attempts += 1;
        let a = rng.random_range(0..cfg.domain);
        let b = rng.random_range(0..cfg.domain);
        if !seen.insert((a, b)) {
            continue;
        }
        let p = (rng.random::<f64>() * 100.0).round() / 100.0;
        let _ = writeln!(src, "f{emitted} {p}: e({a},{b}).");
        emitted += 1;
    }

    // Rules over a tiny IDB vocabulary.
    const IDB: [&str; 3] = ["p0", "p1", "p2"];
    for r in 0..cfg.rules {
        let head = IDB[rng.random_range(0..IDB.len())];
        let p = (rng.random::<f64>() * 100.0).round() / 100.0;
        let recursive = rng.random::<f64>() < cfg.recursion_bias && r > 0;
        match rng.random_range(0..3) {
            // Copy rule: head(X,Y) :- src(X,Y).
            0 => {
                let body = body_pred(&mut rng, head, recursive, r, &IDB);
                let _ = writeln!(src, "r{r} {p}: {head}(X,Y) :- {body}(X,Y).");
            }
            // Join rule: head(X,Z) :- b1(X,Y), b2(Y,Z).
            1 => {
                let b1 = body_pred(&mut rng, head, false, r, &IDB);
                let b2 = body_pred(&mut rng, head, recursive, r, &IDB);
                let _ = writeln!(src, "r{r} {p}: {head}(X,Z) :- {b1}(X,Y), {b2}(Y,Z).");
            }
            // Join with disequality.
            _ => {
                let b1 = body_pred(&mut rng, head, false, r, &IDB);
                let b2 = body_pred(&mut rng, head, recursive, r, &IDB);
                let _ = writeln!(
                    src,
                    "r{r} {p}: {head}(X,Z) :- {b1}(X,Y), {b2}(Y,Z), X != Z."
                );
            }
        }
    }

    Program::parse(&src).expect("generated program is valid")
}

/// Picks a body predicate: the EDB, an earlier IDB predicate, or (when
/// `recursive`) the head itself.
fn body_pred<'a>(
    rng: &mut SmallRng,
    head: &'a str,
    recursive: bool,
    rule_index: usize,
    idb: &[&'a str],
) -> &'a str {
    if recursive {
        return head;
    }
    // Bias towards the EDB so derivations usually bottom out.
    if rule_index == 0 || rng.random::<f64>() < 0.6 {
        "e"
    } else {
        idb[rng.random_range(0..idb.len())]
    }
}

/// Every derived tuple of the program, rendered as query strings — handy
/// for exhaustively cross-checking extraction against the oracle.
pub fn all_derived_queries(program: &Program) -> Vec<String> {
    let db = p3_datalog::engine::Engine::new(program).run_plain();
    let syms = program.symbols();
    let mut out = Vec::new();
    for pred in db.predicates() {
        let rel = db.relation(pred).expect("listed predicate has a relation");
        for &t in rel.tuples() {
            out.push(format!("{}", db.display_tuple(t, syms)));
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_valid_and_deterministic() {
        for seed in 0..20 {
            let cfg = RandomConfig {
                seed,
                ..Default::default()
            };
            let a = generate(cfg);
            let b = generate(cfg);
            assert_eq!(a.to_source(), b.to_source(), "seed {seed}");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn uncertain_clause_count_stays_oracle_sized() {
        for seed in 0..20 {
            let p = generate(RandomConfig {
                seed,
                ..Default::default()
            });
            let uncertain = p
                .clauses()
                .iter()
                .filter(|c| c.prob > 0.0 && c.prob < 1.0)
                .count();
            assert!(uncertain <= p3_datalog::worlds::MAX_UNCERTAIN_CLAUSES);
        }
    }

    #[test]
    fn derived_queries_are_derivable() {
        let p = generate(RandomConfig {
            seed: 5,
            ..Default::default()
        });
        for q in all_derived_queries(&p) {
            // parse_ground_query must succeed for every rendered tuple.
            p3_datalog::worlds::parse_ground_query(&p, &q).unwrap();
        }
    }
}
