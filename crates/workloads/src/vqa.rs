//! The Visual Question Answering case study (§5.1).
//!
//! The paper rewrites a PSL-based VQA pipeline into the four-rule ProbLog
//! program of Fig 5: image tuples (`hasImg`), parsed-question tuples
//! (`hasQ`), word-similarity tuples (`sim`) and a dictionary (`word`)
//! combine into scored answers (`ans`). Provenance queries then *debug* a
//! wrong answer: in the paper's narrative, a photo of a church (with a
//! cross) is still answered "barn" because the underlying Word2Vec
//! similarities are skewed — `sim("church","cross")` is far *below*
//! `sim("barn","cross")` — and a Modification Query computes the fix.
//!
//! The real inputs (Word2Vec vectors, an image-captioning system) are not
//! available offline; this module plants an equivalent synthetic instance:
//! the Table 3 scene, a small dictionary, and a similarity table with the
//! paper's exact bug (`sim(church,cross) = 0.09` vs `sim(barn,cross) =
//! 0.30`). The schema follows Fig 4: `hasImg(V, Object, Rel, Region)`,
//! `hasQ(V, Region, Subject, QType)` — so rule r4's three `sim` joins are
//! precisely the ones Fig 4 displays (`sim(barn,horse)`,
//! `sim(building,in)`, `sim(background,background)`).

use p3_datalog::program::Program;
use std::fmt::Write as _;

/// The four VQA rules (Fig 5, with the paper's OCR-damaged variable wiring
/// reconstructed; see the module docs and DESIGN.md).
pub const RULES: &str = r#"
r1 0.8: hasImgAns(V,Z,X1,R1,Y1) :- word(V,Z), hasImg(V,X1,R1,Y1), sim(Z,X1).
r2 0.1: candidate(V,Z) :- word(V,Z).
r3 0.9: candidate(V,Z) :- word(V,Z), hasQ(V,X,R,Q), hasImgAns(V,Z,X1,R1,Y1), sim(R,R1), sim(X,Y1).
r4 0.9: ans(V,Z) :- candidate(V,Z), hasQ(V,X,R,"WHAT"), hasImg(V,Z1,R1,X1), sim(Z,Z1), sim(R,R1), sim(X,X1).
"#;

/// The queried answer tuples.
pub const ANS_BARN: &str = r#"ans("ID1","barn")"#;
/// See [`ANS_BARN`].
pub const ANS_CHURCH: &str = r#"ans("ID1","church")"#;

/// A VQA input instance: scene, question, dictionary and similarities.
#[derive(Clone, Debug)]
pub struct VqaInstance {
    /// `(object, relation, region, confidence)` — the captioning output.
    pub scene: Vec<(String, String, String, f64)>,
    /// `(region, subject)` of the WHAT-question.
    pub question: (String, String),
    /// Dictionary words with prior confidence.
    pub words: Vec<(String, f64)>,
    /// `(a, b, similarity)` word-similarity entries.
    pub sims: Vec<(String, String, f64)>,
}

impl VqaInstance {
    /// Renders the instance plus the Fig 5 rules as program source.
    ///
    /// Fact labels are structured (`img_*`, `q_1`, `w_<word>`,
    /// `sim_<a>_<b>`) so case-study code can address clauses by name.
    pub fn to_source(&self) -> String {
        let mut src = String::from(RULES);
        for (i, (obj, rel, region, p)) in self.scene.iter().enumerate() {
            let _ = writeln!(
                src,
                "img_{i} {p}: hasImg(\"ID1\",\"{obj}\",\"{rel}\",\"{region}\")."
            );
        }
        let (region, subject) = &self.question;
        let _ = writeln!(
            src,
            "q_1 1.0: hasQ(\"ID1\",\"{region}\",\"{subject}\",\"WHAT\")."
        );
        for (word, p) in &self.words {
            let _ = writeln!(src, "w_{word} {p}: word(\"ID1\",\"{word}\").");
        }
        for (a, b, p) in &self.sims {
            let _ = writeln!(src, "sim_{a}_{b} {p}: sim(\"{a}\",\"{b}\").");
        }
        src
    }

    /// Parses the rendered program.
    pub fn to_program(&self) -> Program {
        Program::parse(&self.to_source()).expect("generated VQA program is valid")
    }

    /// The label of the similarity clause for `(a, b)`, if present.
    pub fn sim_label(&self, a: &str, b: &str) -> Option<String> {
        self.sims
            .iter()
            .find(|(x, y, _)| x == a && y == b)
            .map(|(x, y, _)| format!("sim_{x}_{y}"))
    }
}

fn s(x: &str) -> String {
    x.to_string()
}

/// The church photo of Fig 6 captured as Table 3, with the paper's buggy
/// similarity table: `ans("ID1","barn")` wins even though the image shows a
/// church with a cross.
pub fn church_image_buggy() -> VqaInstance {
    VqaInstance {
        scene: vec![
            // Table 3, verbatim.
            (s("horse"), s("color"), s("brown"), 1.0),
            (s("horse"), s("in"), s("field"), 0.88),
            (s("cloud"), s("in"), s("sky"), 0.85),
            (s("building"), s("with"), s("roof"), 0.5),
            (s("cross"), s("on"), s("building"), 1.0),
        ],
        question: (s("background"), s("building")),
        words: vec![(s("barn"), 0.5), (s("church"), 0.5), (s("house"), 0.5)],
        sims: buggy_sims(),
    }
}

/// The same instance with the Modification Query's fix applied:
/// `sim(church,cross)` raised from 0.09 by +0.42 to 0.51 (§5.1, Query 1C).
pub fn church_image_fixed() -> VqaInstance {
    let mut instance = church_image_buggy();
    for (a, b, p) in &mut instance.sims {
        if a == "church" && b == "cross" {
            *p = 0.51;
        }
    }
    instance
}

/// The original barn photo of Fig 4: a horse in the background makes
/// "barn" the (correct) top answer.
pub fn barn_image() -> VqaInstance {
    VqaInstance {
        scene: vec![
            (s("horse"), s("in"), s("background"), 0.9),
            (s("building"), s("in"), s("background"), 0.7),
        ],
        question: (s("background"), s("building")),
        words: vec![(s("barn"), 0.5), (s("church"), 0.5), (s("house"), 0.5)],
        sims: buggy_sims(),
    }
}

/// The similarity table with the paper's planted data bug: "barn" is
/// suspiciously similar to everything in the photo ("cross": 0.30,
/// "horse": 0.35, "cloud": 0.33) while "church" is not ("cross": 0.09,
/// "horse": 0.19, "cloud": 0.01).
fn buggy_sims() -> Vec<(String, String, f64)> {
    let mut sims: Vec<(String, String, f64)> = Vec::new();
    let mut add = |a: &str, b: &str, p: f64| sims.push((s(a), s(b), p));

    // Word ↔ image-object similarities (§5.1's reported values).
    add("barn", "cross", 0.30);
    add("barn", "horse", 0.35);
    add("barn", "cloud", 0.33);
    add("barn", "building", 0.40);
    add("church", "cross", 0.09); // ← the bug: far below sim(barn, cross)
    add("church", "horse", 0.19);
    add("church", "cloud", 0.01);
    add("church", "building", 0.35);
    add("house", "cross", 0.10);
    add("house", "horse", 0.15);
    add("house", "cloud", 0.05);
    add("house", "building", 0.45);

    // Question-subject ↔ image-relation similarities (Fig 4 shows
    // sim("building","in") participating in the top derivation).
    add("building", "in", 0.20);
    add("building", "on", 0.40);
    add("building", "with", 0.20);
    add("building", "color", 0.01);

    // Question-region ↔ image-region similarities.
    add("background", "background", 1.0);
    add("background", "field", 0.35);
    add("background", "sky", 0.25);
    add("background", "roof", 0.20);
    add("background", "building", 0.60);
    add("background", "brown", 0.05);

    sims
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_datalog::engine::Engine;

    fn derives(program: &Program, query: &str) -> bool {
        let db = Engine::new(program).run_plain();
        let (pred, args) = p3_datalog::worlds::parse_ground_query(program, query).unwrap();
        db.lookup(pred, &args).is_some()
    }

    #[test]
    fn programs_parse_and_derive_answers() {
        for instance in [barn_image(), church_image_buggy(), church_image_fixed()] {
            let p = instance.to_program();
            assert!(derives(&p, ANS_BARN), "barn answer derivable");
            assert!(derives(&p, ANS_CHURCH), "church answer derivable");
        }
    }

    #[test]
    fn sim_labels_resolve() {
        let instance = church_image_buggy();
        let label = instance.sim_label("church", "cross").unwrap();
        assert_eq!(label, "sim_church_cross");
        let p = instance.to_program();
        let id = p.clause_by_label(&label).unwrap();
        assert!((p.clause(id).prob - 0.09).abs() < 1e-12);
        assert!(instance.sim_label("church", "zebra").is_none());
    }

    #[test]
    fn fixed_instance_raises_the_similarity() {
        let fixed = church_image_fixed();
        let p = fixed.to_program();
        let id = p.clause_by_label("sim_church_cross").unwrap();
        assert!((p.clause(id).prob - 0.51).abs() < 1e-12);
    }
}
