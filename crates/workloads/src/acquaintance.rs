//! The Acquaintance running example (Fig 2 of the paper).

use p3_datalog::program::Program;

/// The Fig 2 source text, verbatim.
pub const SOURCE: &str = r#"
r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
t1 1.0: live("Steve","DC").
t2 1.0: live("Elena","DC").
t3 1.0: live("Mary","NYC").
t4 0.4: like("Steve","Veggies").
t5 0.6: like("Elena","Veggies").
t6 1.0: know("Ben","Steve").
"#;

/// The paper's flagship query.
pub const QUERY: &str = r#"know("Ben","Elena")"#;

/// Parses the Acquaintance program.
pub fn program() -> Program {
    Program::parse(SOURCE).expect("the Fig 2 program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_has_nine_clauses() {
        let p = program();
        assert_eq!(p.len(), 9);
        assert_eq!(p.clauses().iter().filter(|c| c.is_rule()).count(), 3);
    }

    #[test]
    fn exact_success_probability_is_within_the_oracle() {
        let p = program();
        let oracle = p3_datalog::worlds::success_probability_str(&p, QUERY).unwrap();
        assert!((oracle - 0.16384).abs() < 1e-9, "got {oracle}");
    }
}
