//! The Mutual Trust workload (§5.2 and §6).
//!
//! Two pieces:
//!
//! * the **case study** of §5.2 — the exact six-tuple scenario of Fig 8 and
//!   Table 5, whose influence and modification results the paper reports
//!   numerically;
//! * the **performance workload** of §6 — a who-trusts-whom network the
//!   size and shape of the Bitcoin OTC dataset (5,881 nodes, 35,592 signed
//!   weighted edges), sampled down to 50–500-node subgraphs by seeded BFS.
//!
//! The real SNAP dataset is not available offline, so [`generate`] builds a
//! synthetic stand-in by preferential attachment: a heavy-tailed directed
//! graph with OTC-like weights in `[-10, 10]`, rescaled to probabilities in
//! `[0, 1]` exactly as the paper rescales (`(w + 10) / 20`).

use p3_datalog::program::Program;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;

/// The Fig 7 Trust rules, verbatim.
pub const RULES: &str = r#"
r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).
"#;

/// A directed trust network with probability-scaled edge weights.
#[derive(Clone, Debug)]
pub struct TrustNetwork {
    /// Edges `(from, to, probability)`, probability already in `[0, 1]`.
    pub edges: Vec<(u32, u32, f64)>,
    /// Number of distinct nodes (node ids are not necessarily dense).
    pub num_nodes: usize,
}

/// Parameters for the synthetic OTC-like generator.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Number of nodes (OTC: 5,881).
    pub nodes: usize,
    /// Number of edges (OTC: 35,592).
    pub edges: usize,
    /// Probability that an edge is reciprocated (`a→b` spawns `b→a`).
    /// Trust ratings on OTC are frequently mutual; reciprocity is what
    /// makes `mutualTrustPath` derivable at all.
    pub reciprocity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // The Bitcoin OTC dimensions from §6; reciprocity matches the
        // strong mutual-rating bias of the real dataset.
        Self {
            nodes: 5_881,
            edges: 35_592,
            reciprocity: 0.4,
            seed: 0xb17c01,
        }
    }
}

/// Generates a synthetic Bitcoin-OTC-like trust network.
///
/// Preferential attachment gives the heavy-tailed degree distribution of
/// real trust networks; weights follow OTC's observed skew (most ratings
/// are small positive, a minority negative) and are rescaled from
/// `[-10, 10]` to `[0, 1]`.
pub fn generate(cfg: NetworkConfig) -> TrustNetwork {
    assert!(cfg.nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    let mut out: Vec<(u32, u32, f64)> = Vec::with_capacity(cfg.edges);
    // Endpoint pool: every endpoint of every edge, so sampling from it is
    // degree-proportional (the classic Barabási–Albert trick).
    let mut pool: Vec<u32> = vec![0, 1];
    let push_edge = |a: u32,
                     b: u32,
                     edges: &mut HashSet<(u32, u32)>,
                     out: &mut Vec<(u32, u32, f64)>,
                     pool: &mut Vec<u32>,
                     rng: &mut SmallRng|
     -> bool {
        if a == b || edges.contains(&(a, b)) {
            return false;
        }
        edges.insert((a, b));
        out.push((a, b, sample_weight(rng)));
        pool.push(a);
        pool.push(b);
        true
    };
    push_edge(0, 1, &mut edges, &mut out, &mut pool, &mut rng);

    // Bring in remaining nodes, each attaching to an existing node; a
    // reciprocal rating follows with probability `cfg.reciprocity`.
    for v in 2..cfg.nodes as u32 {
        let target = pool[rng.random_range(0..pool.len())];
        let (a, b) = if rng.random::<f64>() < 0.5 {
            (v, target)
        } else {
            (target, v)
        };
        push_edge(a, b, &mut edges, &mut out, &mut pool, &mut rng);
        if rng.random::<f64>() < cfg.reciprocity && out.len() < cfg.edges {
            push_edge(b, a, &mut edges, &mut out, &mut pool, &mut rng);
        }
    }
    // Densify to the edge target with degree-biased endpoints.
    let mut attempts = 0usize;
    while out.len() < cfg.edges && attempts < cfg.edges * 50 {
        attempts += 1;
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        if !push_edge(a, b, &mut edges, &mut out, &mut pool, &mut rng) {
            continue;
        }
        if rng.random::<f64>() < cfg.reciprocity && out.len() < cfg.edges {
            push_edge(b, a, &mut edges, &mut out, &mut pool, &mut rng);
        }
    }
    TrustNetwork {
        edges: out,
        num_nodes: cfg.nodes,
    }
}

/// OTC-like rating in `[-10, 10]`, rescaled to `[0, 1]`.
///
/// Roughly 89% of OTC ratings are positive, concentrated at 1–3, with a
/// long positive tail and a minority of strong negatives.
fn sample_weight(rng: &mut SmallRng) -> f64 {
    let raw: i32 = if rng.random::<f64>() < 0.89 {
        // Positive: geometric-ish mass at small ratings.
        let r = rng.random::<f64>();
        match r {
            r if r < 0.55 => rng.random_range(1..=2),
            r if r < 0.85 => rng.random_range(3..=5),
            _ => rng.random_range(6..=10),
        }
    } else {
        -rng.random_range(1..=10)
    };
    f64::from(raw + 10) / 20.0
}

impl TrustNetwork {
    /// Samples a connected-ish subgraph of `target_nodes` nodes by BFS from
    /// random seed nodes, collecting every traversed edge — the §6.1
    /// sampling protocol.
    pub fn sample_bfs(&self, target_nodes: usize, seed: u64) -> TrustNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let adjacency = self.adjacency();
        let mut visited: HashSet<u32> = HashSet::new();
        let mut collected: Vec<(u32, u32, f64)> = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut all_nodes: Vec<u32> = adjacency.keys().copied().collect();
        // HashMap iteration order is process-random; sort so that a given
        // (network, seed) pair always yields the same sample.
        all_nodes.sort_unstable();

        while visited.len() < target_nodes {
            // (Re-)seed when the frontier empties before the target is met.
            if queue.is_empty() {
                let Some(&seed_node) = pick_unvisited(&all_nodes, &visited, &mut rng) else {
                    break;
                };
                visited.insert(seed_node);
                queue.push_back(seed_node);
            }
            let Some(u) = queue.pop_front() else { break };
            let Some(neigh) = adjacency.get(&u) else {
                continue;
            };
            for &(v, w, forward) in neigh {
                if visited.len() >= target_nodes && !visited.contains(&v) {
                    continue;
                }
                let edge = if forward { (u, v, w) } else { (v, u, w) };
                if visited.insert(v) {
                    queue.push_back(v);
                    collected.push(edge);
                } else if !collected.contains(&edge) {
                    // Cross edge among sampled nodes: traversed, so kept.
                    collected.push(edge);
                }
            }
        }
        TrustNetwork {
            edges: collected,
            num_nodes: visited.len(),
        }
    }

    /// Samples a subgraph with (approximately) the given node **and** edge
    /// counts — the §6.2 "150 nodes and 150 edges" protocol: BFS discovery
    /// edges first, then cross edges until the edge budget is exhausted.
    pub fn sample_bfs_exact(
        &self,
        target_nodes: usize,
        target_edges: usize,
        seed: u64,
    ) -> TrustNetwork {
        let full = self.sample_bfs(target_nodes, seed);
        if full.edges.len() <= target_edges {
            return full;
        }
        TrustNetwork {
            edges: full.edges[..target_edges].to_vec(),
            num_nodes: full.num_nodes,
        }
    }

    /// Bidirectional adjacency: for node `u`, entries `(v, w, forward)`
    /// meaning edge `u→v` (forward) or `v→u` (backward) with weight `w`.
    fn adjacency(&self) -> std::collections::HashMap<u32, Vec<(u32, f64, bool)>> {
        let mut adj: std::collections::HashMap<u32, Vec<(u32, f64, bool)>> =
            std::collections::HashMap::new();
        for &(a, b, w) in &self.edges {
            adj.entry(a).or_default().push((b, w, true));
            adj.entry(b).or_default().push((a, w, false));
        }
        adj
    }

    /// Renders the network as `trust` facts plus the Fig 7 rules.
    pub fn to_source(&self) -> String {
        let mut src = String::from(RULES);
        for (i, &(a, b, w)) in self.edges.iter().enumerate() {
            let _ = writeln!(src, "t{} {:.4}: trust({a},{b}).", i + 1, w);
        }
        src
    }

    /// Parses the rendered program.
    pub fn to_program(&self) -> Program {
        Program::parse(&self.to_source()).expect("generated trust program is valid")
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

fn pick_unvisited<'a>(
    nodes: &'a [u32],
    visited: &HashSet<u32>,
    rng: &mut SmallRng,
) -> Option<&'a u32> {
    if visited.len() >= nodes.len() {
        return None;
    }
    for _ in 0..64 {
        let n = &nodes[rng.random_range(0..nodes.len())];
        if !visited.contains(n) {
            return Some(n);
        }
    }
    nodes.iter().find(|n| !visited.contains(n))
}

/// The §5.2 case-study scenario: the Fig 8 derivation structure with the
/// Table 5 initial probabilities.
pub fn case_study_source() -> String {
    let mut src = String::from(RULES);
    src.push_str(
        r#"
t1 0.9: trust(1,2).
t2 0.9: trust(2,1).
t3 0.65: trust(1,13).
t4 0.75: trust(2,6).
t5 0.7: trust(6,2).
t6 0.6: trust(13,2).
"#,
    );
    src
}

/// Parses the case-study program.
pub fn case_study_program() -> Program {
    Program::parse(&case_study_source()).expect("case study program is valid")
}

/// The case study's queried tuple.
pub const CASE_STUDY_QUERY: &str = "mutualTrustPath(1,6)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_hits_the_requested_size() {
        let net = generate(NetworkConfig {
            nodes: 200,
            edges: 1200,
            seed: 7,
            ..NetworkConfig::default()
        });
        assert_eq!(net.num_nodes, 200);
        assert_eq!(net.edges.len(), 1200);
        // No duplicate edges, no self-loops.
        let mut seen = HashSet::new();
        for &(a, b, w) in &net.edges {
            assert_ne!(a, b);
            assert!(seen.insert((a, b)));
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate(NetworkConfig {
            nodes: 100,
            edges: 400,
            seed: 1,
            ..NetworkConfig::default()
        });
        let b = generate(NetworkConfig {
            nodes: 100,
            edges: 400,
            seed: 1,
            ..NetworkConfig::default()
        });
        assert_eq!(a.edges, b.edges);
        let c = generate(NetworkConfig {
            nodes: 100,
            edges: 400,
            seed: 2,
            ..NetworkConfig::default()
        });
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn weights_are_skewed_positive() {
        let net = generate(NetworkConfig {
            nodes: 500,
            edges: 3000,
            seed: 3,
            ..NetworkConfig::default()
        });
        // Rescaled probability > 0.5 corresponds to a positive raw rating.
        let positive =
            net.edges.iter().filter(|&&(_, _, w)| w > 0.5).count() as f64 / net.edges.len() as f64;
        assert!(positive > 0.8, "positive fraction {positive}");
    }

    #[test]
    fn bfs_sample_has_the_right_node_count() {
        let net = generate(NetworkConfig {
            nodes: 1000,
            edges: 6000,
            seed: 4,
            ..NetworkConfig::default()
        });
        for &n in &[50usize, 150, 300] {
            let sample = net.sample_bfs(n, 9);
            assert_eq!(sample.num_nodes, n, "sample of {n}");
            assert!(!sample.edges.is_empty());
            // Every edge endpoint is a sampled node (edges are traversed,
            // and traversal only visits sampled nodes).
            let nodes: HashSet<u32> = sample.edges.iter().flat_map(|&(a, b, _)| [a, b]).collect();
            assert!(nodes.len() <= n);
        }
    }

    #[test]
    fn bfs_exact_caps_edges() {
        let net = generate(NetworkConfig {
            nodes: 1000,
            edges: 6000,
            seed: 4,
            ..NetworkConfig::default()
        });
        let sample = net.sample_bfs_exact(150, 150, 5);
        assert_eq!(sample.edges.len(), 150);
    }

    #[test]
    fn trust_program_parses_and_evaluates() {
        let net = generate(NetworkConfig {
            nodes: 30,
            edges: 60,
            seed: 6,
            ..NetworkConfig::default()
        });
        let program = net.sample_bfs(10, 1).to_program();
        let mut engine = p3_datalog::engine::Engine::new(&program);
        let db = engine.run_plain();
        assert!(!db.is_empty());
    }

    #[test]
    fn case_study_derives_the_queried_tuple() {
        let p = case_study_program();
        let mut engine = p3_datalog::engine::Engine::new(&p);
        let db = engine.run_plain();
        let (pred, args) = p3_datalog::worlds::parse_ground_query(&p, CASE_STUDY_QUERY).unwrap();
        assert!(db.lookup(pred, &args).is_some());
    }

    #[test]
    fn case_study_probability_matches_the_paper() {
        // Exact: 0.8 · (0.7·0.9) · 0.75 · (1 − 0.1·(1 − 0.39)) = 0.3549420;
        // the paper reports 0.3524 from Monte-Carlo.
        let p = case_study_program();
        let oracle = p3_datalog::worlds::success_probability_str(&p, CASE_STUDY_QUERY).unwrap();
        assert!((oracle - 0.3549420).abs() < 1e-9, "got {oracle}");
    }
}
