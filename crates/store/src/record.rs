//! The durable record vocabulary and its wire codec.
//!
//! Records ride inside the shared `[len: u32 LE][crc: u32 LE][payload]`
//! frames of [`crate::frame`]; this module owns only the payload format.
//! A payload starts with a one-byte record tag; all integers are
//! little-endian.

pub use crate::frame::{fnv1a_32, ScanStop, FRAME_HEADER};
use crate::frame::{scan_with, write_frame};

/// Payload tag for [`Record::Intern`].
const TAG_INTERN: u8 = 1;
/// Payload tag for [`Record::DnfMemo`].
const TAG_DNF_MEMO: u8 = 2;
/// Payload tag for [`Record::ProbMemo`].
const TAG_PROB_MEMO: u8 = 3;

/// A probability method, flattened to plain integers so `p3-store` does not
/// depend on `p3-core`'s `ProbMethod` enum. The mapping lives in `p3-core`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MethodCode {
    /// Which estimator: 0 exact, 1 bdd, 2 mc, 3 kl, 4 pmc.
    pub tag: u8,
    /// Monte-Carlo sample count (0 for deterministic methods).
    pub samples: u64,
    /// Monte-Carlo seed (0 for deterministic methods).
    pub seed: u64,
    /// Worker threads for parallel estimators (0 otherwise).
    pub threads: u64,
}

/// One replayable unit of provenance state.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// One hash-consed DNF formula, as raw `VarId` values per monomial.
    /// Intern records appear in the log in `DnfId` allocation order, so a
    /// forward replay into a fresh `DnfStore` reproduces identical ids.
    Intern {
        /// The formula's monomials; each inner vec lists literal var ids.
        monomials: Vec<Vec<u32>>,
    },
    /// A query-string → provenance-polynomial memo entry.
    DnfMemo {
        /// The query atom, exactly as the client wrote it.
        query: String,
        /// Extraction depth cap; `u64::MAX` encodes "unbounded".
        depth: u64,
        /// The polynomial's raw `DnfId`.
        id: u32,
    },
    /// A (polynomial, method) → probability memo entry.
    ProbMemo {
        /// The polynomial's raw `DnfId`.
        id: u32,
        /// The probability method that produced `prob`.
        method: MethodCode,
        /// The memoized probability.
        prob: f64,
    },
}

impl Record {
    /// Short kind name for logs and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Intern { .. } => "intern",
            Record::DnfMemo { .. } => "dnf_memo",
            Record::ProbMemo { .. } => "prob_memo",
        }
    }
}

/// FNV-1a 64-bit over program source text — the store's staleness
/// fingerprint. Any textual change to the program (even whitespace)
/// invalidates the store, which errs on the side of never replaying
/// memos against a program they were not computed for.
pub fn content_hash(source: &str) -> u64 {
    crate::frame::fnv1a_64(source)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `record` to `out` as one framed `[len][crc][payload]` unit.
pub fn encode_frame(record: &Record, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(32);
    match record {
        Record::Intern { monomials } => {
            payload.push(TAG_INTERN);
            put_u32(&mut payload, monomials.len() as u32);
            for lits in monomials {
                put_u32(&mut payload, lits.len() as u32);
                for &lit in lits {
                    put_u32(&mut payload, lit);
                }
            }
        }
        Record::DnfMemo { query, depth, id } => {
            payload.push(TAG_DNF_MEMO);
            put_u32(&mut payload, *id);
            put_u64(&mut payload, *depth);
            let bytes = query.as_bytes();
            put_u32(&mut payload, bytes.len() as u32);
            payload.extend_from_slice(bytes);
        }
        Record::ProbMemo { id, method, prob } => {
            payload.push(TAG_PROB_MEMO);
            put_u32(&mut payload, *id);
            payload.push(method.tag);
            put_u64(&mut payload, method.samples);
            put_u64(&mut payload, method.seed);
            put_u64(&mut payload, method.threads);
            put_u64(&mut payload, prob.to_bits());
        }
    }
    write_frame(&payload, out);
}

/// Result of scanning a log buffer: the decoded records, the byte offset
/// just past the last good frame, and why the scan stopped there.
pub struct Scan {
    /// Records decoded from valid frames, in file order.
    pub records: Vec<Record>,
    /// Offset of the first byte NOT covered by a valid frame. Truncating
    /// the file to this length removes exactly the bad tail.
    pub valid_len: u64,
    /// Why the scan stopped.
    pub stop: ScanStop,
}

/// Little-endian reader with bounds checks; `None` means truncated/corrupt.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(bytes)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let record = match r.u8()? {
        TAG_INTERN => {
            let n = r.u32()? as usize;
            let mut monomials = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let k = r.u32()? as usize;
                let mut lits = Vec::with_capacity(k.min(1024));
                for _ in 0..k {
                    lits.push(r.u32()?);
                }
                monomials.push(lits);
            }
            Record::Intern { monomials }
        }
        TAG_DNF_MEMO => {
            let id = r.u32()?;
            let depth = r.u64()?;
            let n = r.u32()? as usize;
            let query = String::from_utf8(r.bytes(n)?.to_vec()).ok()?;
            Record::DnfMemo { query, depth, id }
        }
        TAG_PROB_MEMO => {
            let id = r.u32()?;
            let method = MethodCode {
                tag: r.u8()?,
                samples: r.u64()?,
                seed: r.u64()?,
                threads: r.u64()?,
            };
            let prob = f64::from_bits(r.u64()?);
            Record::ProbMemo { id, method, prob }
        }
        _ => return None,
    };
    // Trailing garbage inside a checksummed payload means the writer and
    // reader disagree on the format — treat as corrupt.
    r.done().then_some(record)
}

/// Scans `buf` as a sequence of frames, stopping at the first bad one.
/// Never panics on arbitrary input.
pub fn scan_frames(buf: &[u8]) -> Scan {
    let mut records = Vec::new();
    let scan = scan_with(buf, |payload| match decode_payload(payload) {
        Some(record) => {
            records.push(record);
            true
        }
        None => false,
    });
    Scan {
        records,
        valid_len: scan.valid_len,
        stop: scan.stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Intern { monomials: vec![] },
            Record::Intern {
                monomials: vec![vec![]],
            },
            Record::Intern {
                monomials: vec![vec![0, 7, 42], vec![3]],
            },
            Record::DnfMemo {
                query: "path(a, b)".to_string(),
                depth: u64::MAX,
                id: 17,
            },
            Record::ProbMemo {
                id: 17,
                method: MethodCode {
                    tag: 2,
                    samples: 100_000,
                    seed: 42,
                    threads: 0,
                },
                prob: 0.123_456_789,
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let records = samples();
        let mut buf = Vec::new();
        for r in &records {
            encode_frame(r, &mut buf);
        }
        let scan = scan_frames(&buf);
        assert_eq!(scan.stop, ScanStop::Clean);
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert_eq!(scan.records, records);
    }

    #[test]
    fn torn_tail_keeps_whole_frames() {
        let records = samples();
        let mut buf = Vec::new();
        for r in &records {
            encode_frame(r, &mut buf);
        }
        let whole = buf.len();
        // Cut into the last frame at every possible depth.
        let mut last_start = 0;
        {
            // Recompute the last frame's start by scanning lengths.
            let mut pos = 0;
            while pos < whole {
                let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                if pos + FRAME_HEADER + len == whole {
                    last_start = pos;
                }
                pos += FRAME_HEADER + len;
            }
        }
        for cut in last_start + 1..whole {
            let scan = scan_frames(&buf[..cut]);
            assert_eq!(scan.stop, ScanStop::TornTail, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, last_start);
            assert_eq!(scan.records, records[..records.len() - 1]);
        }
    }

    #[test]
    fn flipped_bit_is_detected() {
        let mut buf = Vec::new();
        for r in samples() {
            encode_frame(&r, &mut buf);
        }
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let scan = scan_frames(&buf);
        assert!(matches!(scan.stop, ScanStop::Corrupt | ScanStop::TornTail));
        assert!(scan.records.len() < samples().len());
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = content_hash("0.3::edge(a, b).\n");
        assert_eq!(a, content_hash("0.3::edge(a, b).\n"));
        assert_ne!(a, content_hash("0.4::edge(a, b).\n"));
        assert_ne!(a, content_hash("0.3::edge(a, b)."));
    }

    #[test]
    fn nan_probability_round_trips_bitwise() {
        let record = Record::ProbMemo {
            id: 1,
            method: MethodCode {
                tag: 0,
                samples: 0,
                seed: 0,
                threads: 0,
            },
            prob: f64::NAN,
        };
        let mut buf = Vec::new();
        encode_frame(&record, &mut buf);
        let scan = scan_frames(&buf);
        match &scan.records[0] {
            Record::ProbMemo { prob, .. } => assert!(prob.is_nan()),
            other => panic!("wrong record {other:?}"),
        }
    }
}
