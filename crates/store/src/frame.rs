//! The shared checksummed length-framed record codec.
//!
//! Every durable log in the workspace — the provenance intern log and
//! snapshots (see [`crate::record`]) and `p3-audit`'s per-request audit
//! segments — frames its payloads the same way:
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload bytes]
//! ```
//!
//! where `crc` is FNV-1a-32 over the payload. The format is deliberately
//! dumb — no compression, no back-references — so a torn or corrupt
//! frame can never damage anything before it, and replay is a single
//! forward scan. This module owns the payload-agnostic half: framing,
//! checksumming, and the forward scan with torn-tail/corruption
//! classification. Payload vocabularies live with their owners.

use std::fmt;

/// Frame header size: length + checksum.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single payload, to reject absurd lengths from a
/// corrupt header before allocating.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// FNV-1a 32-bit, the frame checksum.
pub fn fnv1a_32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a 64-bit over arbitrary text. `p3-store` fingerprints program
/// source with it; `p3-audit` hashes query text into audit records.
pub fn fnv1a_64(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends one framed `[len][crc][payload]` unit to `out`.
pub fn write_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a forward scan stopped before the end of the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanStop {
    /// Clean end of buffer: every byte belonged to a whole, valid frame.
    Clean,
    /// The final frame is incomplete (torn tail from a crash mid-write).
    TornTail,
    /// A frame failed its checksum or carried a malformed payload.
    Corrupt,
}

impl fmt::Display for ScanStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanStop::Clean => write!(f, "clean"),
            ScanStop::TornTail => write!(f, "torn tail"),
            ScanStop::Corrupt => write!(f, "corrupt frame"),
        }
    }
}

/// Result of scanning a log buffer: how many frames decoded, the byte
/// offset just past the last good frame, and why the scan stopped there.
pub struct FrameScan {
    /// Frames accepted by the decoder, in file order.
    pub frames: usize,
    /// Offset of the first byte NOT covered by a valid frame. Truncating
    /// the file to this length removes exactly the bad tail.
    pub valid_len: u64,
    /// Why the scan stopped.
    pub stop: ScanStop,
}

/// Scans `buf` as a sequence of frames, handing each checksum-valid
/// payload to `decode`. A `decode` returning `false` marks the frame
/// corrupt (writer/reader format disagreement) and stops the scan at its
/// start, exactly like a failed checksum. Never panics on arbitrary
/// input.
pub fn scan_with(buf: &[u8], mut decode: impl FnMut(&[u8]) -> bool) -> FrameScan {
    let mut frames = 0usize;
    let mut pos = 0usize;
    loop {
        if pos == buf.len() {
            return FrameScan {
                frames,
                valid_len: pos as u64,
                stop: ScanStop::Clean,
            };
        }
        let Some(header) = buf.get(pos..pos + FRAME_HEADER) else {
            return FrameScan {
                frames,
                valid_len: pos as u64,
                stop: ScanStop::TornTail,
            };
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return FrameScan {
                frames,
                valid_len: pos as u64,
                stop: ScanStop::Corrupt,
            };
        }
        let start = pos + FRAME_HEADER;
        let Some(payload) = buf.get(start..start + len as usize) else {
            return FrameScan {
                frames,
                valid_len: pos as u64,
                stop: ScanStop::TornTail,
            };
        };
        if fnv1a_32(payload) != crc || !decode(payload) {
            return FrameScan {
                frames,
                valid_len: pos as u64,
                stop: ScanStop::Corrupt,
            };
        }
        frames += 1;
        pos = start + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_payload_agnostically() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], b"hello \xff world".to_vec()];
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(p, &mut buf);
        }
        let mut seen = Vec::new();
        let scan = scan_with(&buf, |p| {
            seen.push(p.to_vec());
            true
        });
        assert_eq!(scan.stop, ScanStop::Clean);
        assert_eq!(scan.frames, payloads.len());
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert_eq!(seen, payloads);
    }

    #[test]
    fn decoder_rejection_is_corruption_at_the_frame_start() {
        let mut buf = Vec::new();
        write_frame(b"good", &mut buf);
        let first_end = buf.len();
        write_frame(b"bad", &mut buf);
        let scan = scan_with(&buf, |p| p == b"good");
        assert_eq!(scan.stop, ScanStop::Corrupt);
        assert_eq!(scan.frames, 1);
        assert_eq!(scan.valid_len as usize, first_end);
    }

    #[test]
    fn every_cut_is_a_torn_tail() {
        let mut buf = Vec::new();
        write_frame(b"abcdef", &mut buf);
        for cut in 1..buf.len() {
            let scan = scan_with(&buf[..cut], |_| true);
            assert_eq!(scan.stop, ScanStop::TornTail, "cut at {cut}");
            assert_eq!(scan.frames, 0);
            assert_eq!(scan.valid_len, 0);
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let scan = scan_with(&buf, |_| true);
        assert_eq!(scan.stop, ScanStop::Corrupt);
        assert_eq!(scan.valid_len, 0);
    }
}
