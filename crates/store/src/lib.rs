//! # p3-store
//!
//! Persistent provenance store: the durable subsystem behind
//! `p3-serve --store-dir` warm restarts.
//!
//! The engine's expensive state — the hash-consed `DnfStore` and the
//! per-session extraction/probability memos — is reduced to a flat stream
//! of [`Record`]s (see [`record`]) that a [`StorageBackend`] makes
//! durable. Two backends ship:
//!
//! * [`MemBackend`] — an in-memory no-op that only counts (and retains)
//!   records; the default when no `--store-dir` is given, and the test
//!   double for journaling call sites.
//! * [`FileBackend`] — an append-only, checksummed intern log plus
//!   periodic compacted snapshots in one directory, std-only (no serde,
//!   no mmap). See [`file`] for the layout and crash-safety argument.
//!
//! Staleness is decided by a program [`content_hash`]: a store written
//! for one program text is never replayed against another.
//!
//! This crate knows nothing about sessions or servers; `p3-core` maps its
//! memo types onto [`Record`]s and `p3-service` owns the lifecycle
//! (open → replay → journal → flush per request → compact).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod file;
pub mod frame;
pub mod record;

pub use file::{FileBackend, Opened, RecoveryReport};
pub use record::{content_hash, MethodCode, Record};

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sink for provenance records plus snapshot compaction.
///
/// `append` must be cheap and non-blocking on I/O — it is called from
/// inside `DnfStore`'s formula write lock, in `DnfId` allocation order,
/// which is the ordering contract replay relies on. Durability happens in
/// `flush` (the service calls it once per handled request).
pub trait StorageBackend: Send + Sync {
    /// Queues one record, preserving call order.
    fn append(&self, record: Record);
    /// Drains queued records to durable storage.
    fn flush(&self) -> io::Result<()>;
    /// Atomically replaces the snapshot with `records` (the full current
    /// state) and resets the append log.
    fn snapshot(&self, records: &[Record]) -> io::Result<()>;
    /// Counters for `store-stats` and `/metrics`.
    fn stats(&self) -> BackendStats;
    /// Backend kind name (`"mem"` / `"file"`).
    fn kind(&self) -> &'static str;
}

/// Counters shared by every backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Backend kind name.
    pub kind: &'static str,
    /// Records made durable so far (flushed, not merely queued).
    pub records_written: u64,
    /// Records queued but not yet flushed.
    pub pending_records: u64,
    /// Records in the current snapshot.
    pub snapshot_records: u64,
    /// Bytes in the current snapshot.
    pub snapshot_bytes: u64,
    /// Bad tails truncated during recovery (since open).
    pub recovery_truncations: u64,
}

/// In-memory no-op backend: counts and retains records, persists nothing.
/// A restart of the process starts cold, exactly as before this crate
/// existed.
#[derive(Default)]
pub struct MemBackend {
    records: Mutex<Vec<Record>>,
    flushed: AtomicU64,
    pending: AtomicU64,
    snapshot_records: AtomicU64,
}

impl MemBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything appended so far, in order (test observability).
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().unwrap().clone()
    }
}

impl StorageBackend for MemBackend {
    fn append(&self, record: Record) {
        self.records.lock().unwrap().push(record);
        self.pending.fetch_add(1, Ordering::Relaxed);
    }

    fn flush(&self) -> io::Result<()> {
        let drained = self.pending.swap(0, Ordering::Relaxed);
        self.flushed.fetch_add(drained, Ordering::Relaxed);
        Ok(())
    }

    fn snapshot(&self, records: &[Record]) -> io::Result<()> {
        self.snapshot_records
            .store(records.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            kind: "mem",
            records_written: self.flushed.load(Ordering::Relaxed),
            pending_records: self.pending.load(Ordering::Relaxed),
            snapshot_records: self.snapshot_records.load(Ordering::Relaxed),
            snapshot_bytes: 0,
            recovery_truncations: 0,
        }
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

// ---------------------------------------------------------------------------
// Metrics. Handles are process-wide; the families are registered eagerly by
// `register_metrics` (called from `FileBackend::open`) so a /metrics scrape
// lists them from boot, before any store traffic.

pub(crate) fn records_written_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_store_records_written_total",
        "Provenance records flushed to the durable intern log"
    )
}

pub(crate) fn snapshot_bytes_metric() -> &'static p3_obs::metrics::Gauge {
    p3_obs::gauge!(
        "p3_store_snapshot_bytes",
        "Size of the current compacted store snapshot in bytes"
    )
}

pub(crate) fn truncations_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_store_recovery_truncations_total",
        "Bad log tails truncated during store recovery"
    )
}

/// Warm-boot memo hits: queries answered from state restored off disk.
/// Incremented by `p3-core`'s warm memo layer.
pub fn warm_boot_hits_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_store_warm_boot_hits_total",
        "Queries answered from provenance state restored from the store"
    )
}

/// Registers every `p3_store_*` metric family with the global registry.
pub fn register_metrics() {
    records_written_metric();
    snapshot_bytes_metric();
    truncations_metric();
    warm_boot_hits_metric();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_counts_and_retains() {
        let b = MemBackend::new();
        b.append(Record::Intern { monomials: vec![] });
        b.append(Record::DnfMemo {
            query: "q".into(),
            depth: 3,
            id: 2,
        });
        assert_eq!(b.stats().pending_records, 2);
        assert_eq!(b.stats().records_written, 0);
        b.flush().unwrap();
        assert_eq!(b.stats().pending_records, 0);
        assert_eq!(b.stats().records_written, 2);
        assert_eq!(b.records().len(), 2);
        b.snapshot(&b.records()).unwrap();
        assert_eq!(b.stats().snapshot_records, 2);
        assert_eq!(b.kind(), "mem");
    }
}
