//! The durable file-backed storage backend.
//!
//! On-disk layout inside the store directory:
//!
//! * `store.meta` — 16 bytes: magic `P3STORE1` + the program content hash
//!   (u64 LE). A missing or mismatching meta file marks the whole store
//!   stale: its contents were produced for a different program, so both
//!   logs are discarded rather than replayed.
//! * `snapshot.log` — the last compaction: the full provenance state as a
//!   framed record sequence, rewritten atomically (tmp + rename).
//! * `intern.log` — the append-only tail: every record since the snapshot.
//!
//! Boot replays `snapshot.log` then `intern.log` front to back. A torn or
//! corrupt frame stops the scan of its file; the file is truncated to the
//! last good frame, a warning is logged, and serving continues with
//! whatever replayed — losing the tail of a log is always safe because
//! records are append-only facts, never updates.
//!
//! `append` only queues the encoded frame in memory (it is called from
//! inside `DnfStore`'s formula lock, which must never wait on I/O);
//! `flush` drains the queue to `intern.log`. The queue preserves append
//! order, and intern records are appended in `DnfId` order, so the log
//! replays ids exactly. Compaction may race interns: a record can end up
//! in both the snapshot and the tail, which replay tolerates because
//! re-interning is idempotent — but never in neither.

use crate::record::{encode_frame, scan_frames, Record, Scan, ScanStop};
use crate::{records_written_metric, snapshot_bytes_metric, truncations_metric, BackendStats};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const META_MAGIC: &[u8; 8] = b"P3STORE1";
const META_FILE: &str = "store.meta";
const SNAPSHOT_FILE: &str = "snapshot.log";
const LOG_FILE: &str = "intern.log";

/// What `FileBackend::open` found and did while recovering the directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The directory held a store for a different program; it was wiped.
    pub stale: bool,
    /// Bad tails truncated (0, 1 per file, so at most 2).
    pub truncations: u32,
    /// Bytes dropped by tail truncation.
    pub truncated_bytes: u64,
    /// Records recovered from the snapshot.
    pub snapshot_records: usize,
    /// Records recovered from the append log.
    pub log_records: usize,
}

/// A freshly opened store directory: the backend plus everything that must
/// be replayed into the engine before the backend starts journaling.
pub struct Opened {
    /// The backend, ready for `append`/`flush`/`snapshot`.
    pub backend: FileBackend,
    /// Recovered records in replay order (snapshot first, then log).
    pub records: Vec<Record>,
    /// What recovery found.
    pub report: RecoveryReport,
}

/// Append-only log + compacted snapshot in one directory. See the module
/// docs for the layout and crash-safety argument.
pub struct FileBackend {
    dir: PathBuf,
    /// Encoded frames queued by `append`, drained by `flush`. Frames are
    /// queued (not written) because `append` runs under `DnfStore`'s
    /// formula lock.
    pending: Mutex<Vec<u8>>,
    /// Records queued but not yet flushed (for stats; frames are opaque).
    pending_records: AtomicU64,
    /// Serialises file writes: log appends vs snapshot rewrite.
    io: Mutex<()>,
    records_written: AtomicU64,
    snapshot_records: AtomicU64,
    snapshot_bytes: AtomicU64,
    truncations: AtomicU64,
}

fn read_or_empty(path: &Path) -> io::Result<Vec<u8>> {
    match File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            Ok(buf)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Scans one log file; truncates it to the last good frame if the tail is
/// bad, so the next append writes over garbage instead of after it.
fn recover_file(path: &Path, report: &mut RecoveryReport) -> io::Result<Vec<Record>> {
    let buf = read_or_empty(path)?;
    let Scan {
        records,
        valid_len,
        stop,
    } = scan_frames(&buf);
    if stop != ScanStop::Clean {
        let dropped = buf.len() as u64 - valid_len;
        p3_obs::warn!(
            "store log has a bad tail; truncating",
            file = path.display(),
            reason = stop,
            dropped_bytes = dropped,
            kept_records = records.len()
        );
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(valid_len)?;
        report.truncations += 1;
        report.truncated_bytes += dropped;
        truncations_metric().inc();
    }
    Ok(records)
}

impl FileBackend {
    /// Opens (creating if needed) the store directory for a program whose
    /// content hash is `fingerprint`, recovering any previous state.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Opened> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Register the whole metric family up front so /metrics lists it
        // from the first scrape, before any traffic.
        crate::register_metrics();

        let meta_path = dir.join(META_FILE);
        let meta = read_or_empty(&meta_path)?;
        let mut report = RecoveryReport::default();
        let fresh = meta.is_empty();
        let matches = meta.len() == 16
            && &meta[..8] == META_MAGIC
            && u64::from_le_bytes(meta[8..16].try_into().unwrap()) == fingerprint;
        if !matches {
            if !fresh {
                report.stale = true;
                p3_obs::warn!(
                    "store is stale (program changed or unreadable meta); discarding",
                    dir = dir.display()
                );
            }
            let _ = std::fs::remove_file(dir.join(SNAPSHOT_FILE));
            let _ = std::fs::remove_file(dir.join(LOG_FILE));
            let mut bytes = Vec::with_capacity(16);
            bytes.extend_from_slice(META_MAGIC);
            bytes.extend_from_slice(&fingerprint.to_le_bytes());
            std::fs::write(&meta_path, bytes)?;
        }

        let mut records = recover_file(&dir.join(SNAPSHOT_FILE), &mut report)?;
        report.snapshot_records = records.len();
        let log_records = recover_file(&dir.join(LOG_FILE), &mut report)?;
        report.log_records = log_records.len();
        records.extend(log_records);

        let backend = FileBackend {
            dir,
            pending: Mutex::new(Vec::new()),
            pending_records: AtomicU64::new(0),
            io: Mutex::new(()),
            records_written: AtomicU64::new(0),
            snapshot_records: AtomicU64::new(report.snapshot_records as u64),
            snapshot_bytes: AtomicU64::new(0),
            truncations: AtomicU64::new(u64::from(report.truncations)),
        };
        if let Ok(meta) = std::fs::metadata(backend.dir.join(SNAPSHOT_FILE)) {
            backend.snapshot_bytes.store(meta.len(), Ordering::Relaxed);
            snapshot_bytes_metric().set(meta.len() as i64);
        }
        Ok(Opened {
            backend,
            records,
            report,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl crate::StorageBackend for FileBackend {
    fn append(&self, record: Record) {
        let mut pending = self.pending.lock().unwrap();
        encode_frame(&record, &mut pending);
        self.pending_records.fetch_add(1, Ordering::Relaxed);
    }

    fn flush(&self) -> io::Result<()> {
        let frames = {
            let mut pending = self.pending.lock().unwrap();
            if pending.is_empty() {
                return Ok(());
            }
            std::mem::take(&mut *pending)
        };
        let drained = self.pending_records.swap(0, Ordering::Relaxed);
        let _io = self.io.lock().unwrap();
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(LOG_FILE))?;
        f.write_all(&frames)?;
        self.records_written.fetch_add(drained, Ordering::Relaxed);
        records_written_metric().add(drained);
        Ok(())
    }

    fn snapshot(&self, records: &[Record]) -> io::Result<()> {
        let mut buf = Vec::new();
        for record in records {
            encode_frame(record, &mut buf);
        }
        let _io = self.io.lock().unwrap();
        let tmp = self.dir.join("snapshot.tmp");
        std::fs::write(&tmp, &buf)?;
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // The snapshot now covers everything the log held (compaction runs
        // after the caller collected full state), so reset the tail.
        OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(LOG_FILE))?;
        self.snapshot_records
            .store(records.len() as u64, Ordering::Relaxed);
        self.snapshot_bytes
            .store(buf.len() as u64, Ordering::Relaxed);
        snapshot_bytes_metric().set(buf.len() as i64);
        p3_obs::info!(
            "store snapshot written",
            dir = self.dir.display(),
            records = records.len(),
            bytes = buf.len()
        );
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            kind: "file",
            records_written: self.records_written.load(Ordering::Relaxed),
            pending_records: self.pending_records.load(Ordering::Relaxed),
            snapshot_records: self.snapshot_records.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            recovery_truncations: self.truncations.load(Ordering::Relaxed),
        }
    }

    fn kind(&self) -> &'static str {
        "file"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MethodCode;
    use crate::StorageBackend;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p3-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn intern(lits: &[u32]) -> Record {
        Record::Intern {
            monomials: vec![lits.to_vec()],
        }
    }

    #[test]
    fn append_flush_reopen_replays_in_order() {
        let dir = tmpdir("replay");
        let records = vec![
            intern(&[]),
            intern(&[1, 2]),
            Record::DnfMemo {
                query: "q(a)".into(),
                depth: u64::MAX,
                id: 2,
            },
            Record::ProbMemo {
                id: 2,
                method: MethodCode {
                    tag: 0,
                    samples: 0,
                    seed: 0,
                    threads: 0,
                },
                prob: 0.25,
            },
        ];
        {
            let opened = FileBackend::open(&dir, 7).unwrap();
            assert!(opened.records.is_empty());
            assert!(!opened.report.stale);
            for r in &records {
                opened.backend.append(r.clone());
            }
            opened.backend.flush().unwrap();
            assert_eq!(opened.backend.stats().records_written, 4);
        }
        let opened = FileBackend::open(&dir, 7).unwrap();
        assert_eq!(opened.records, records);
        assert_eq!(opened.report.log_records, 4);
        assert_eq!(opened.report.truncations, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_discards_the_store() {
        let dir = tmpdir("stale");
        {
            let opened = FileBackend::open(&dir, 7).unwrap();
            opened.backend.append(intern(&[1]));
            opened.backend.flush().unwrap();
        }
        let opened = FileBackend::open(&dir, 8).unwrap();
        assert!(opened.report.stale);
        assert!(opened.records.is_empty());
        // And the new fingerprint sticks.
        let opened = FileBackend::open(&dir, 8).unwrap();
        assert!(!opened.report.stale);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replay() {
        let dir = tmpdir("torn");
        {
            let opened = FileBackend::open(&dir, 7).unwrap();
            opened.backend.append(intern(&[1]));
            opened.backend.append(intern(&[2, 3]));
            opened.backend.flush().unwrap();
        }
        let log = dir.join(LOG_FILE);
        let len = std::fs::metadata(&log).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(len - 3).unwrap(); // tear into the last record
        drop(f);
        let opened = FileBackend::open(&dir, 7).unwrap();
        assert_eq!(opened.records, vec![intern(&[1])]);
        assert_eq!(opened.report.truncations, 1);
        assert_eq!(opened.report.truncated_bytes, len - 3 - opened_len(&log));
        // After truncation the log is clean again.
        let opened = FileBackend::open(&dir, 7).unwrap();
        assert_eq!(opened.report.truncations, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn opened_len(path: &Path) -> u64 {
        std::fs::metadata(path).unwrap().len()
    }

    #[test]
    fn snapshot_compacts_and_resets_the_log() {
        let dir = tmpdir("snapshot");
        {
            let opened = FileBackend::open(&dir, 7).unwrap();
            opened.backend.append(intern(&[1]));
            opened.backend.append(intern(&[2]));
            opened.backend.flush().unwrap();
            opened
                .backend
                .snapshot(&[intern(&[1]), intern(&[2])])
                .unwrap();
            // Post-snapshot traffic lands in the fresh log.
            opened.backend.append(intern(&[3]));
            opened.backend.flush().unwrap();
            assert!(opened.backend.stats().snapshot_bytes > 0);
        }
        let opened = FileBackend::open(&dir, 7).unwrap();
        assert_eq!(opened.report.snapshot_records, 2);
        assert_eq!(opened.report.log_records, 1);
        assert_eq!(
            opened.records,
            vec![intern(&[1]), intern(&[2]), intern(&[3])]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
