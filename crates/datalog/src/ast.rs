//! Abstract syntax for ProbLog-like programs.
//!
//! A program is a list of [`Clause`]s. A clause is either a probabilistic
//! base tuple (a ground fact) or a weighted conjunctive rule. Following the
//! paper's semantics, each clause denotes one independent Boolean random
//! variable: a rule's variable is shared by *all* of its executions.

use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// A ground constant: an interned symbol (identifier or quoted string) or an
/// integer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Const {
    /// An interned identifier or string literal.
    Sym(Symbol),
    /// An integer literal.
    Int(i64),
}

impl Const {
    /// Renders the constant using `syms` for symbol resolution.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Const, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Const::Sym(s) => {
                        let name = self.1.resolve(*s);
                        if is_plain_identifier(name) {
                            write!(f, "{name}")
                        } else {
                            write!(f, "{name:?}")
                        }
                    }
                    Const::Int(i) => write!(f, "{i}"),
                }
            }
        }
        D(self, syms)
    }
}

/// Returns true when `name` can be printed without quotes: a lowercase
/// identifier as in Prolog syntax.
pub(crate) fn is_plain_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A term in an atom: a variable or a constant.
///
/// Variables are interned in the same symbol table as constants; the parser
/// distinguishes them syntactically (leading uppercase letter or `_`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A logic variable.
    Var(Symbol),
    /// A ground constant.
    Const(Const),
}

impl Term {
    /// The variable symbol, if this term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is ground.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }

    /// Renders the term using `syms` for symbol resolution.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Term, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Term::Var(v) => write!(f, "{}", self.1.resolve(*v)),
                    Term::Const(c) => write!(f, "{}", c.display(self.1)),
                }
            }
        }
        D(self, syms)
    }
}

/// A (possibly non-ground) atom: predicate name applied to terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Predicate name.
    pub pred: Symbol,
    /// Argument terms. The predicate's arity is `args.len()`.
    pub args: Vec<Term>,
}

impl Atom {
    /// True when every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| matches!(t, Term::Const(_)))
    }

    /// Iterates over the variables appearing in this atom.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }

    /// Renders the atom using `syms` for symbol resolution.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.resolve(self.0.pred))?;
                for (i, arg) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", arg.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self, syms)
    }
}

/// Comparison operators usable in rule bodies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=` — term equality.
    Eq,
    /// `!=` (also written `\=`) — term disequality.
    Ne,
    /// `<` — integer less-than.
    Lt,
    /// `<=` — integer less-or-equal.
    Le,
    /// `>` — integer greater-than.
    Gt,
    /// `>=` — integer greater-or-equal.
    Ge,
}

impl CmpOp {
    /// The surface-syntax spelling of the operator.
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the comparison on two constants.
    ///
    /// Ordering comparisons between non-integers fall back to symbol-table
    /// order (deterministic, but only `=`/`!=` are meaningful for symbols).
    pub fn eval(self, lhs: Const, rhs: Const) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// A comparison constraint in a rule body, e.g. `P1 != P2`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Constraint {
    /// The comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Term,
    /// Right operand.
    pub rhs: Term,
}

impl Constraint {
    /// Iterates over the variables appearing in this constraint.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.lhs.as_var().into_iter().chain(self.rhs.as_var())
    }

    /// Renders the constraint using `syms` for symbol resolution.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Constraint, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "{} {} {}",
                    self.0.lhs.display(self.1),
                    self.0.op.token(),
                    self.0.rhs.display(self.1)
                )
            }
        }
        D(self, syms)
    }
}

/// Identifies a clause within its [`crate::Program`]: the index into the
/// program's clause list. Clause identifiers double as the Boolean random
/// variables of the distribution semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClauseId(pub u32);

impl ClauseId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The body of a clause: empty for a base tuple, non-empty for a rule.
#[derive(Clone, PartialEq, Debug)]
pub enum ClauseKind {
    /// A probabilistic ground fact (base tuple).
    Fact,
    /// A weighted conjunctive rule.
    Rule {
        /// Positive body atoms, in source order.
        body: Vec<Atom>,
        /// Negated body atoms (`\+ p(X)` / `not p(X)`). Programs using
        /// them must be stratified; provenance queries reject them (the
        /// P3 model is negation-free — supporting negation is the paper's
        /// stated future work, and here extends the *engine* only).
        negated: Vec<Atom>,
        /// Comparison constraints; evaluated once their variables are bound.
        constraints: Vec<Constraint>,
    },
}

/// One clause of a program: a labelled, weighted fact or rule.
#[derive(Clone, PartialEq, Debug)]
pub struct Clause {
    /// Source label (`r1`, `t4`, …). Auto-generated when the source omits it.
    pub label: String,
    /// Probability that the clause is present in a sampled subprogram.
    pub prob: f64,
    /// Head atom; ground for facts.
    pub head: Atom,
    /// Fact or rule body.
    pub kind: ClauseKind,
}

impl Clause {
    /// True when this clause is a base tuple.
    pub fn is_fact(&self) -> bool {
        matches!(self.kind, ClauseKind::Fact)
    }

    /// True when this clause is a rule.
    pub fn is_rule(&self) -> bool {
        !self.is_fact()
    }

    /// The body atoms (empty slice for facts).
    pub fn body(&self) -> &[Atom] {
        match &self.kind {
            ClauseKind::Fact => &[],
            ClauseKind::Rule { body, .. } => body,
        }
    }

    /// The body constraints (empty slice for facts).
    pub fn constraints(&self) -> &[Constraint] {
        match &self.kind {
            ClauseKind::Fact => &[],
            ClauseKind::Rule { constraints, .. } => constraints,
        }
    }

    /// The negated body atoms (empty slice for facts and positive rules).
    pub fn negated(&self) -> &[Atom] {
        match &self.kind {
            ClauseKind::Fact => &[],
            ClauseKind::Rule { negated, .. } => negated,
        }
    }

    /// Renders the clause in the paper's `label p: clause.` syntax.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Clause, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "{} {}: {}",
                    self.0.label,
                    self.0.prob,
                    self.0.head.display(self.1)
                )?;
                if let ClauseKind::Rule {
                    body,
                    negated,
                    constraints,
                } = &self.0.kind
                {
                    write!(f, " :- ")?;
                    let mut first = true;
                    for atom in body {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{}", atom.display(self.1))?;
                    }
                    for atom in negated {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "\\+ {}", atom.display(self.1))?;
                    }
                    for c in constraints {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{}", c.display(self.1))?;
                    }
                }
                write!(f, ".")
            }
        }
        D(self, syms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn cmp_op_on_integers() {
        assert!(CmpOp::Lt.eval(Const::Int(1), Const::Int(2)));
        assert!(!CmpOp::Lt.eval(Const::Int(2), Const::Int(2)));
        assert!(CmpOp::Le.eval(Const::Int(2), Const::Int(2)));
        assert!(CmpOp::Ge.eval(Const::Int(3), Const::Int(2)));
        assert!(CmpOp::Gt.eval(Const::Int(3), Const::Int(2)));
        assert!(CmpOp::Eq.eval(Const::Int(5), Const::Int(5)));
        assert!(CmpOp::Ne.eval(Const::Int(5), Const::Int(6)));
    }

    #[test]
    fn cmp_op_on_symbols() {
        let mut t = table();
        let a = Const::Sym(t.intern("a"));
        let b = Const::Sym(t.intern("b"));
        assert!(CmpOp::Eq.eval(a, a));
        assert!(CmpOp::Ne.eval(a, b));
    }

    #[test]
    fn atom_groundness_and_vars() {
        let mut t = table();
        let p = t.intern("p");
        let x = t.intern("X");
        let a = Const::Sym(t.intern("a"));
        let ground = Atom {
            pred: p,
            args: vec![Term::Const(a), Term::Const(a)],
        };
        assert!(ground.is_ground());
        let open = Atom {
            pred: p,
            args: vec![Term::Var(x), Term::Const(a)],
        };
        assert!(!open.is_ground());
        assert_eq!(open.vars().collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn display_quotes_non_identifiers() {
        let mut t = table();
        let steve = Const::Sym(t.intern("Steve"));
        let city = Const::Sym(t.intern("dc"));
        assert_eq!(format!("{}", steve.display(&t)), "\"Steve\"");
        assert_eq!(format!("{}", city.display(&t)), "dc");
        assert_eq!(format!("{}", Const::Int(-3).display(&t)), "-3");
    }

    #[test]
    fn clause_display_round_trippable_shape() {
        let mut t = table();
        let p = t.intern("p");
        let q = t.intern("q");
        let x = t.intern("X");
        let y = t.intern("Y");
        let clause = Clause {
            label: "r1".to_string(),
            prob: 0.5,
            head: Atom {
                pred: p,
                args: vec![Term::Var(x)],
            },
            kind: ClauseKind::Rule {
                body: vec![Atom {
                    pred: q,
                    args: vec![Term::Var(x), Term::Var(y)],
                }],
                negated: vec![],
                constraints: vec![Constraint {
                    op: CmpOp::Ne,
                    lhs: Term::Var(x),
                    rhs: Term::Var(y),
                }],
            },
        };
        assert_eq!(
            format!("{}", clause.display(&t)),
            "r1 0.5: p(X) :- q(X,Y), X != Y."
        );
    }
}
