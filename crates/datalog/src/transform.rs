//! Magic-sets / demand transformation: query-directed evaluation.
//!
//! Bottom-up evaluation computes the *entire* least model, yet a provenance
//! query for one ground atom only ever inspects the derivations reachable
//! from that atom. The classic magic-sets transformation specialises the
//! program to a query: predicates are *adorned* with the query's bound/free
//! pattern, a *magic* (demand) predicate per adornment records which bindings
//! are actually needed, and every rule is guarded so it fires only for
//! demanded bindings. Sideways information passing (SIP) is left-to-right,
//! matching the engine's join order.
//!
//! For a ground query `q(c1,…,cn)` the transformed program contains
//!
//! 1. every **fact** of the source program, verbatim (the EDB is never
//!    restricted — base tuples are cheap, derivations are not),
//! 2. one **guarded variant** `h :- __magic_h_a(bound…), body…` per
//!    (rule, head-adornment) pair reachable from the query,
//! 3. **magic rules** propagating demand through rule bodies: for the j-th
//!    IDB body atom, `__magic_bj_aj(bound…) :- guard, b1,…,b(j-1)` plus any
//!    constraint already bound within that prefix, and
//! 4. the **seed fact** `__magic_q_bb…b(c1,…,cn).`
//!
//! The least model of the transformed program, restricted to source
//! predicates, contains exactly the source tuples whose derivations are
//! relevant to the query — and every firing of a guarded variant projects
//! (drop the guard) onto a firing of the source rule, which is how
//! provenance capture maps demand-mode derivations back to the source
//! program (see `p3-provenance`'s demand module).
//!
//! Negation is not supported (demand transformation can break
//! stratification); callers fall back to naive evaluation.

use crate::ast::{Atom, Clause, ClauseId, ClauseKind, Const, Term};
use crate::program::{Program, ProgramError};
use crate::symbol::Symbol;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A bound/free pattern over one predicate's argument positions
/// (`true` = bound).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Adornment(Vec<bool>);

impl Adornment {
    /// The all-bound adornment of the given arity (a ground query).
    pub fn all_bound(arity: usize) -> Self {
        Adornment(vec![true; arity])
    }

    /// The adornment of `atom` given the set of already-bound variables:
    /// a position is bound when its term is a constant or a bound variable.
    pub fn of_atom(atom: &Atom, bound: &HashSet<Symbol>) -> Self {
        Adornment(
            atom.args
                .iter()
                .map(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .collect(),
        )
    }

    /// Bound argument positions, ascending.
    pub fn bound_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
    }

    /// Number of bound positions.
    pub fn num_bound(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            f.write_str(if b { "b" } else { "f" })?;
        }
        Ok(())
    }
}

/// Counters describing one transformation.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TransformStats {
    /// Distinct (predicate, adornment) pairs reached from the query.
    pub adornments: usize,
    /// Guarded rule variants emitted.
    pub variants: usize,
    /// Magic (demand-propagation) rules emitted.
    pub magic_rules: usize,
}

/// A magic-transformed program plus the bookkeeping needed to map its
/// derivations back onto the source program.
pub struct DemandProgram {
    /// The transformed, validated program.
    pub program: Program,
    /// Per transformed clause: the source clause it came from (`None` for
    /// magic rules and the seed fact).
    orig_of: Vec<Option<ClauseId>>,
    /// The magic predicates introduced by the transformation.
    magic_preds: HashSet<Symbol>,
    /// Transformation counters.
    pub stats: TransformStats,
}

impl DemandProgram {
    /// Maps a transformed clause id back to its source clause, or `None`
    /// for transformation-internal clauses (magic rules, seed).
    pub fn original_clause(&self, id: ClauseId) -> Option<ClauseId> {
        self.orig_of.get(id.index()).copied().flatten()
    }

    /// Whether `pred` is a magic predicate introduced by the transformation.
    pub fn is_magic(&self, pred: Symbol) -> bool {
        self.magic_preds.contains(&pred)
    }
}

/// Why a program cannot be demand-transformed.
#[derive(Debug)]
pub enum TransformError {
    /// The program uses negation; the transformation could break
    /// stratification, so callers must evaluate naively.
    Negation,
    /// The query predicate's arity disagrees with the program.
    QueryArity {
        /// Arity declared by the program.
        expected: usize,
        /// Arity of the query atom.
        found: usize,
    },
    /// Rebuilding the transformed program failed (e.g. a `__magic_*` name
    /// collision with a user predicate).
    Program(ProgramError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Negation => {
                write!(f, "demand transformation does not support negation")
            }
            TransformError::QueryArity { expected, found } => write!(
                f,
                "query arity {found} does not match program arity {expected}"
            ),
            TransformError::Program(e) => {
                write!(f, "transformation produced an invalid program: {e}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Whether the program has a recursive rule cycle among IDB predicates —
/// the workloads where demand evaluation pays off (the `auto` heuristic).
pub fn has_recursive_idb(program: &Program) -> bool {
    // head -> body predicate edges, rules only.
    let mut edges: HashMap<Symbol, HashSet<Symbol>> = HashMap::new();
    for (_, clause) in program.iter() {
        if !clause.is_rule() {
            continue;
        }
        let entry = edges.entry(clause.head.pred).or_default();
        for atom in clause.body().iter().chain(clause.negated()) {
            entry.insert(atom.pred);
        }
    }
    // Cycle detection restricted to rule-defined predicates.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<Symbol, Color> = edges.keys().map(|&p| (p, Color::White)).collect();
    fn dfs(
        p: Symbol,
        edges: &HashMap<Symbol, HashSet<Symbol>>,
        color: &mut HashMap<Symbol, Color>,
    ) -> bool {
        match color.get(&p) {
            Some(Color::Grey) => return true,
            Some(Color::White) => {}
            _ => return false, // Black, or EDB (no entry)
        }
        color.insert(p, Color::Grey);
        if let Some(next) = edges.get(&p) {
            for &q in next {
                if dfs(q, edges, color) {
                    return true;
                }
            }
        }
        color.insert(p, Color::Black);
        false
    }
    let preds: Vec<Symbol> = edges.keys().copied().collect();
    preds.into_iter().any(|p| dfs(p, &edges, &mut color))
}

/// Magic-transforms `program` for the ground query `query_pred(query_args)`.
pub fn magic_transform(
    program: &Program,
    query_pred: Symbol,
    query_args: &[Const],
) -> Result<DemandProgram, TransformError> {
    let mut span = p3_obs::span::span("datalog.transform");
    if program.has_negation() {
        return Err(TransformError::Negation);
    }
    if let Some(expected) = program.arity(query_pred) {
        if expected != query_args.len() {
            return Err(TransformError::QueryArity {
                expected,
                found: query_args.len(),
            });
        }
    }

    let mut symbols = program.symbols().clone();
    let mut rules_by_head: HashMap<Symbol, Vec<ClauseId>> = HashMap::new();
    for (id, clause) in program.iter() {
        if clause.is_rule() {
            rules_by_head.entry(clause.head.pred).or_default().push(id);
        }
    }
    let idb: HashSet<Symbol> = rules_by_head.keys().copied().collect();

    let mut clauses: Vec<Clause> = Vec::new();
    let mut orig_of: Vec<Option<ClauseId>> = Vec::new();
    let mut magic_preds: HashSet<Symbol> = HashSet::new();
    let mut stats = TransformStats::default();

    // The EDB (and IDB base tuples) carry over verbatim.
    for (id, clause) in program.iter() {
        if clause.is_fact() {
            clauses.push(clause.clone());
            orig_of.push(Some(id));
        }
    }

    let magic_sym = |pred: Symbol, a: &Adornment, symbols: &mut crate::symbol::SymbolTable| {
        let name = format!("__magic_{}_{a}", symbols.resolve(pred).to_owned());
        symbols.intern(&name)
    };

    // Seed the demand for the query itself.
    let query_adornment = Adornment::all_bound(query_args.len());
    if idb.contains(&query_pred) {
        let seed_pred = magic_sym(query_pred, &query_adornment, &mut symbols);
        magic_preds.insert(seed_pred);
        clauses.push(Clause {
            label: "__magic_seed".to_string(),
            prob: 1.0,
            head: Atom {
                pred: seed_pred,
                args: query_args.iter().map(|&c| Term::Const(c)).collect(),
            },
            kind: ClauseKind::Fact,
        });
        orig_of.push(None);
    }

    // Worklist over demanded (predicate, adornment) pairs.
    let mut seen: HashSet<(Symbol, Adornment)> = HashSet::new();
    let mut work: VecDeque<(Symbol, Adornment)> = VecDeque::new();
    if idb.contains(&query_pred) {
        seen.insert((query_pred, query_adornment.clone()));
        work.push_back((query_pred, query_adornment));
    }

    while let Some((pred, adornment)) = work.pop_front() {
        stats.adornments += 1;
        let guard_pred = magic_sym(pred, &adornment, &mut symbols);
        magic_preds.insert(guard_pred);
        for &rule_id in &rules_by_head[&pred] {
            let clause = program.clause(rule_id);
            let body = clause.body();
            let constraints = clause.constraints();

            // The guard carries the head's terms at bound positions; its
            // variables are exactly the head variables bound by `adornment`.
            let guard = Atom {
                pred: guard_pred,
                args: adornment
                    .bound_positions()
                    .map(|i| clause.head.args[i])
                    .collect(),
            };
            let mut bound: HashSet<Symbol> = guard.vars().collect();

            // Guarded variant: original rule, demand-restricted.
            let mut variant_body = Vec::with_capacity(body.len() + 1);
            variant_body.push(guard.clone());
            variant_body.extend(body.iter().cloned());
            clauses.push(Clause {
                label: format!("{}@{adornment}", clause.label),
                prob: clause.prob,
                head: clause.head.clone(),
                kind: ClauseKind::Rule {
                    body: variant_body,
                    negated: Vec::new(),
                    constraints: constraints.to_vec(),
                },
            });
            orig_of.push(Some(rule_id));
            stats.variants += 1;

            // Magic rules: left-to-right SIP. Demand for the j-th IDB body
            // atom is everything derivable from the guard plus the body
            // prefix before it (with prefix-ready constraints, which only
            // shrink demand to groundings that could actually fire).
            for (j, atom) in body.iter().enumerate() {
                if idb.contains(&atom.pred) {
                    let sub = Adornment::of_atom(atom, &bound);
                    let magic_head_pred = magic_sym(atom.pred, &sub, &mut symbols);
                    magic_preds.insert(magic_head_pred);
                    let magic_head = Atom {
                        pred: magic_head_pred,
                        args: sub.bound_positions().map(|i| atom.args[i]).collect(),
                    };
                    let mut magic_body = Vec::with_capacity(j + 1);
                    magic_body.push(guard.clone());
                    magic_body.extend(body[..j].iter().cloned());
                    let prefix_vars: HashSet<Symbol> = magic_body
                        .iter()
                        .flat_map(|a| a.vars().collect::<Vec<_>>())
                        .collect();
                    let ready_constraints: Vec<_> = constraints
                        .iter()
                        .filter(|c| c.vars().all(|v| prefix_vars.contains(&v)))
                        .cloned()
                        .collect();
                    clauses.push(Clause {
                        label: format!("__magic_{}@{adornment}_{j}", clause.label),
                        prob: 1.0,
                        head: magic_head,
                        kind: ClauseKind::Rule {
                            body: magic_body,
                            negated: Vec::new(),
                            constraints: ready_constraints,
                        },
                    });
                    orig_of.push(None);
                    stats.magic_rules += 1;

                    if seen.insert((atom.pred, sub.clone())) {
                        work.push_back((atom.pred, sub));
                    }
                }
                bound.extend(atom.vars());
            }
        }
    }

    let program = Program::from_clauses(clauses, symbols).map_err(TransformError::Program)?;
    span.add_field("adornments", stats.adornments);
    span.add_field("variants", stats.variants);
    span.add_field("magic_rules", stats.magic_rules);
    Ok(DemandProgram {
        program,
        orig_of,
        magic_preds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, NoopSink};

    const TRUST: &str = "
        r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
        r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
        r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).
        t1 0.9: trust(1,2).
        t2 0.9: trust(2,1).
        t3 0.65: trust(1,13).
        t4 0.75: trust(2,6).
        t5 0.7: trust(6,2).
        t6 0.6: trust(13,2).
    ";

    fn query(p: &Program, pred: &str, args: &[i64]) -> (Symbol, Vec<Const>) {
        (
            p.symbols().get(pred).unwrap(),
            args.iter().map(|&i| Const::Int(i)).collect(),
        )
    }

    #[test]
    fn adornment_display_and_positions() {
        let a = Adornment(vec![true, false, true]);
        assert_eq!(a.to_string(), "bfb");
        assert_eq!(a.bound_positions().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(a.num_bound(), 2);
        assert_eq!(Adornment::all_bound(2).to_string(), "bb");
    }

    #[test]
    fn trust_example_reaches_only_bb_adornments() {
        // mutualTrustPath(1,2)^bb demands trustPath^bb twice (r3), and r2's
        // recursive atom stays bb because trust(P1,P2) binds P2 before the
        // recursive call — the textbook same-generation shape.
        let p = Program::parse(TRUST).unwrap();
        let (pred, args) = query(&p, "mutualTrustPath", &[1, 2]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        assert_eq!(dp.stats.adornments, 2, "mutualTrustPath^bb, trustPath^bb");
        assert_eq!(dp.stats.variants, 3, "one per source rule");
        assert_eq!(dp.stats.magic_rules, 3, "r3 body (2 atoms) + r2 recursion");
        assert!(dp
            .program
            .symbols()
            .get("__magic_trustPath_bb")
            .is_some_and(|s| dp.is_magic(s)));
        assert!(dp.program.clause_by_label("r2@bb").is_some());
        assert!(dp.program.clause_by_label("__magic_seed").is_some());
    }

    #[test]
    fn variant_maps_to_source_clause_and_magic_rules_do_not() {
        let p = Program::parse(TRUST).unwrap();
        let (pred, args) = query(&p, "mutualTrustPath", &[1, 2]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        let r2 = p.clause_by_label("r2").unwrap();
        let variant = dp.program.clause_by_label("r2@bb").unwrap();
        assert_eq!(dp.original_clause(variant), Some(r2));
        let seed = dp.program.clause_by_label("__magic_seed").unwrap();
        assert_eq!(dp.original_clause(seed), None);
        // Facts keep their identity.
        let t1_src = p.clause_by_label("t1").unwrap();
        let t1_new = dp.program.clause_by_label("t1").unwrap();
        assert_eq!(dp.original_clause(t1_new), Some(t1_src));
    }

    #[test]
    fn guarded_variant_prepends_guard_and_keeps_constraints() {
        let p = Program::parse(TRUST).unwrap();
        let (pred, args) = query(&p, "mutualTrustPath", &[1, 2]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        let variant = dp.program.clause_by_label("r2@bb").unwrap();
        let clause = dp.program.clause(variant);
        assert_eq!(clause.body().len(), 3, "guard + two source atoms");
        assert!(dp.is_magic(clause.body()[0].pred));
        assert_eq!(clause.constraints().len(), 1, "P1 != P3 survives");
    }

    #[test]
    fn magic_rule_keeps_prefix_ready_constraints() {
        // r2's recursion demand rule binds P1, P3 (guard) and P2 (trust), so
        // the `P1 != P3` constraint is prefix-ready and prunes self-demand.
        let p = Program::parse(TRUST).unwrap();
        let (pred, args) = query(&p, "mutualTrustPath", &[1, 2]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        let magic_r2 = dp.program.clause_by_label("__magic_r2@bb_1").unwrap();
        assert_eq!(dp.program.clause(magic_r2).constraints().len(), 1);
    }

    #[test]
    fn demand_evaluation_agrees_with_naive_on_every_derived_tuple() {
        let p = Program::parse(TRUST).unwrap();
        let naive_db = Engine::new(&p).run(&mut NoopSink);
        for pred_name in ["trustPath", "mutualTrustPath"] {
            let pred = p.symbols().get(pred_name).unwrap();
            let rel = naive_db.relation(pred).unwrap();
            for &t in rel.tuples() {
                let args = naive_db.tuple(t).args.to_vec();
                let dp = magic_transform(&p, pred, &args).unwrap();
                let db = Engine::new(&dp.program).run(&mut NoopSink);
                assert!(
                    db.lookup(pred, &args).is_some(),
                    "demand run lost {pred_name}{args:?}"
                );
            }
        }
        // And a non-derivable tuple stays absent.
        let (pred, args) = query(&p, "mutualTrustPath", &[1, 99]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        let db = Engine::new(&dp.program).run(&mut NoopSink);
        assert!(db.lookup(pred, &args).is_none());
    }

    #[test]
    fn demand_derives_fewer_tuples_on_chains() {
        // A 30-node line graph: naive transitive closure derives O(n^2)
        // paths, demand for path(0,29) only the suffix paths into 29.
        let mut src = String::from(
            "r1 1.0: path(X,Y) :- edge(X,Y).
             r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).\n",
        );
        for i in 0..29 {
            src.push_str(&format!("e{i} 1.0: edge({i},{}).\n", i + 1));
        }
        let p = Program::parse(&src).unwrap();
        let naive_db = Engine::new(&p).run(&mut NoopSink);
        let (pred, args) = query(&p, "path", &[0, 29]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        let demand_db = Engine::new(&dp.program).run(&mut NoopSink);
        assert!(demand_db.lookup(pred, &args).is_some());
        let count = |db: &crate::engine::Database| db.relation(pred).map_or(0, |r| r.len());
        assert_eq!(count(&naive_db), 29 * 30 / 2);
        assert_eq!(count(&demand_db), 29, "only paths ending at node 29");
    }

    #[test]
    fn edb_query_transform_keeps_facts_only() {
        let p = Program::parse(TRUST).unwrap();
        let (pred, args) = query(&p, "trust", &[1, 2]);
        let dp = magic_transform(&p, pred, &args).unwrap();
        assert_eq!(dp.stats, TransformStats::default());
        let db = Engine::new(&dp.program).run(&mut NoopSink);
        assert!(db.lookup(pred, &args).is_some());
        assert_eq!(db.len(), 6, "the six trust facts, nothing else");
    }

    #[test]
    fn negation_is_rejected() {
        let p = Program::parse(
            "r1 1.0: only(X) :- p(X), \\+ q(X).
             t1 1.0: p(a). t2 1.0: q(b).",
        )
        .unwrap();
        let pred = p.symbols().get("only").unwrap();
        let a = Const::Sym(p.symbols().get("a").unwrap());
        assert!(matches!(
            magic_transform(&p, pred, &[a]),
            Err(TransformError::Negation)
        ));
    }

    #[test]
    fn query_arity_mismatch_is_rejected() {
        let p = Program::parse(TRUST).unwrap();
        let pred = p.symbols().get("trustPath").unwrap();
        assert!(matches!(
            magic_transform(&p, pred, &[Const::Int(1)]),
            Err(TransformError::QueryArity {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn recursion_detection() {
        assert!(has_recursive_idb(&Program::parse(TRUST).unwrap()));
        let flat = Program::parse("r1 1.0: q(X) :- p(X). t1 1.0: p(a).").unwrap();
        assert!(!has_recursive_idb(&flat));
        // Mutual recursion through two predicates.
        let mutual = Program::parse(
            "r1 1.0: a(X) :- b(X). r2 1.0: b(X) :- a(X). r3 1.0: a(X) :- base(X). t 1.0: base(c).",
        )
        .unwrap();
        assert!(has_recursive_idb(&mutual));
    }
}
