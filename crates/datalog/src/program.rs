//! Validated probabilistic logic programs.
//!
//! A [`Program`] owns its clauses and symbol table and guarantees the static
//! well-formedness properties the engine relies on:
//!
//! * base tuples are ground;
//! * rules are *safe*: every head variable and every constraint variable
//!   occurs in a positive body atom;
//! * predicates are used at a consistent arity;
//! * clause labels are unique;
//! * clause probabilities lie in `[0, 1]`.

use crate::ast::{Atom, Clause, ClauseId, ClauseKind, CmpOp, Const, Constraint, Term};
use crate::diag::Diagnostic;
use crate::parser::{self, ClauseSpans, ParseError, Span};
use crate::symbol::{Symbol, SymbolTable};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A validated ProbLog-like program.
#[derive(Debug, Clone)]
pub struct Program {
    clauses: Vec<Clause>,
    symbols: SymbolTable,
    labels: HashMap<String, ClauseId>,
    arities: HashMap<Symbol, usize>,
    strata: HashMap<Symbol, usize>,
    /// Byte spans per clause; empty for programmatically built programs.
    spans: Vec<ClauseSpans>,
    /// The original source text, when the program was parsed from text.
    source: Option<String>,
}

/// Errors raised by program validation (or the parser, wrapped).
///
/// Every variant maps onto the shared [`Diagnostic`] structure — stable
/// `P3xxx` code, severity, optional source span — via
/// [`ProgramError::to_diagnostic`], so validation failures and `p3-lint`
/// findings render through one path.
#[derive(Debug)]
pub enum ProgramError {
    /// The source text failed to parse.
    Parse(ParseError),
    /// A base tuple contains a variable.
    NonGroundFact {
        /// The offending clause's label.
        label: String,
        /// The fact's head span, when parsed from source.
        span: Option<Span>,
    },
    /// A head or constraint variable is not bound by any body atom.
    UnsafeVariable {
        /// The offending clause's label.
        label: String,
        /// The unbound variable's name.
        var: String,
        /// The span of the clause part using the unbound variable.
        span: Option<Span>,
    },
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
        /// The conflicting atom's span, when parsed from source.
        span: Option<Span>,
    },
    /// Two clauses share a label.
    DuplicateLabel {
        /// The repeated label.
        label: String,
        /// The second clause's span, when parsed from source.
        span: Option<Span>,
    },
    /// A clause probability outside `[0, 1]` (programmatic construction).
    BadProbability {
        /// The offending clause's label.
        label: String,
        /// The out-of-range value.
        prob: f64,
        /// The probability literal's span, when parsed from source.
        span: Option<Span>,
    },
    /// A rule whose body contains no atoms (only constraints, or nothing).
    EmptyBody {
        /// The offending clause's label.
        label: String,
        /// The rule's span, when parsed from source.
        span: Option<Span>,
    },
    /// Negation occurs inside a recursive cycle, so no stratification
    /// exists.
    NotStratified {
        /// A predicate on the offending negative cycle.
        pred: String,
        /// The span of a rule on the cycle, when parsed from source.
        span: Option<Span>,
    },
}

impl ProgramError {
    /// The stable diagnostic code (`P3xxx`) for this error.
    pub fn code(&self) -> &'static str {
        match self {
            ProgramError::Parse(e) => e.code(),
            ProgramError::UnsafeVariable { .. } => "P3101",
            ProgramError::NonGroundFact { .. } => "P3102",
            ProgramError::EmptyBody { .. } => "P3103",
            ProgramError::DuplicateLabel { .. } => "P3104",
            ProgramError::ArityMismatch { .. } => "P3105",
            ProgramError::NotStratified { .. } => "P3201",
            ProgramError::BadProbability { .. } => "P3301",
        }
    }

    /// The source span of the offending construct, when known.
    pub fn span(&self) -> Option<Span> {
        match self {
            ProgramError::Parse(e) => Some(e.span),
            ProgramError::NonGroundFact { span, .. }
            | ProgramError::UnsafeVariable { span, .. }
            | ProgramError::ArityMismatch { span, .. }
            | ProgramError::DuplicateLabel { span, .. }
            | ProgramError::BadProbability { span, .. }
            | ProgramError::EmptyBody { span, .. }
            | ProgramError::NotStratified { span, .. } => *span,
        }
    }

    /// The label of the offending clause, when the error concerns one.
    pub fn clause_label(&self) -> Option<&str> {
        match self {
            ProgramError::NonGroundFact { label, .. }
            | ProgramError::UnsafeVariable { label, .. }
            | ProgramError::DuplicateLabel { label, .. }
            | ProgramError::BadProbability { label, .. }
            | ProgramError::EmptyBody { label, .. } => Some(label),
            _ => None,
        }
    }

    /// The human message, without code or location.
    pub fn message(&self) -> String {
        match self {
            ProgramError::Parse(e) => e.to_diagnostic().message,
            ProgramError::NonGroundFact { label, .. } => {
                format!("base tuple '{label}' contains a variable")
            }
            ProgramError::UnsafeVariable { label, var, .. } => format!(
                "clause '{label}' is unsafe: variable {var} does not occur in any body atom"
            ),
            ProgramError::ArityMismatch {
                pred,
                expected,
                found,
                ..
            } => format!(
                "predicate '{pred}' used with arity {found} but previously with arity {expected}"
            ),
            ProgramError::DuplicateLabel { label, .. } => {
                format!("duplicate clause label '{label}'")
            }
            ProgramError::BadProbability { label, prob, .. } => {
                format!("clause '{label}' has probability {prob} outside [0, 1]")
            }
            ProgramError::EmptyBody { label, .. } => {
                format!("rule '{label}' has no body atoms")
            }
            ProgramError::NotStratified { pred, .. } => format!(
                "program is not stratified: predicate '{pred}' is negated within a \
                 recursive cycle"
            ),
        }
    }

    /// Converts to the shared diagnostic structure. All validation errors
    /// are error severity; the span (when present) still needs
    /// [`Diagnostic::locate`] against the source to resolve line/column.
    pub fn to_diagnostic(&self) -> Diagnostic {
        if let ProgramError::Parse(e) = self {
            return e.to_diagnostic();
        }
        let mut d = Diagnostic::error(self.code(), self.message()).with_span(self.span());
        if let Some(label) = self.clause_label() {
            d = d.with_clause(label);
        }
        d
    }
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One formatting path for parse, validation, and lint findings:
        // everything renders through `Diagnostic`.
        write!(f, "{}", self.to_diagnostic())
    }
}

impl Error for ProgramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgramError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ProgramError {
    fn from(e: ParseError) -> Self {
        ProgramError::Parse(e)
    }
}

impl Program {
    /// Parses and validates source text, retaining clause spans and the
    /// source itself so later diagnostics can render rustc-style excerpts.
    pub fn parse(src: &str) -> Result<Self, ProgramError> {
        let parsed = parser::parse(src)?;
        Self::validated(
            parsed.clauses,
            parsed.symbols,
            parsed.spans,
            Some(src.to_string()),
        )
    }

    /// Validates clauses constructed programmatically (for example by a
    /// [`ProgramBuilder`]). Such programs carry no spans.
    pub fn from_clauses(clauses: Vec<Clause>, symbols: SymbolTable) -> Result<Self, ProgramError> {
        Self::validated(clauses, symbols, Vec::new(), None)
    }

    fn validated(
        clauses: Vec<Clause>,
        symbols: SymbolTable,
        spans: Vec<ClauseSpans>,
        source: Option<String>,
    ) -> Result<Self, ProgramError> {
        let mut labels = HashMap::new();
        let mut arities: HashMap<Symbol, usize> = HashMap::new();

        let mut check_arity =
            |atom: &Atom, span: Option<Span>, syms: &SymbolTable| -> Result<(), ProgramError> {
                match arities.get(&atom.pred) {
                    Some(&expected) if expected != atom.args.len() => {
                        Err(ProgramError::ArityMismatch {
                            pred: syms.resolve(atom.pred).to_string(),
                            expected,
                            found: atom.args.len(),
                            span,
                        })
                    }
                    Some(_) => Ok(()),
                    None => {
                        arities.insert(atom.pred, atom.args.len());
                        Ok(())
                    }
                }
            };

        for (i, clause) in clauses.iter().enumerate() {
            let cspans = spans.get(i);
            if !(0.0..=1.0).contains(&clause.prob) {
                return Err(ProgramError::BadProbability {
                    label: clause.label.clone(),
                    prob: clause.prob,
                    span: cspans.map(|s| s.prob.unwrap_or(s.clause)),
                });
            }
            if labels
                .insert(clause.label.clone(), ClauseId(i as u32))
                .is_some()
            {
                return Err(ProgramError::DuplicateLabel {
                    label: clause.label.clone(),
                    span: cspans.map(|s| s.clause),
                });
            }
            check_arity(&clause.head, cspans.map(|s| s.head), &symbols)?;
            match &clause.kind {
                ClauseKind::Fact => {
                    if !clause.head.is_ground() {
                        return Err(ProgramError::NonGroundFact {
                            label: clause.label.clone(),
                            span: cspans.map(|s| s.head),
                        });
                    }
                }
                ClauseKind::Rule {
                    body,
                    negated,
                    constraints,
                } => {
                    if body.is_empty() {
                        return Err(ProgramError::EmptyBody {
                            label: clause.label.clone(),
                            span: cspans.map(|s| s.clause),
                        });
                    }
                    let mut bound: HashSet<Symbol> = HashSet::new();
                    for (j, atom) in body.iter().enumerate() {
                        check_arity(atom, cspans.and_then(|s| s.body.get(j).copied()), &symbols)?;
                        bound.extend(atom.vars());
                    }
                    // Safety: each unbound use is reported at the span of
                    // the clause part (head, constraint, negated atom)
                    // that uses the variable.
                    let unsafe_var =
                        |var: Symbol, span: Option<Span>| ProgramError::UnsafeVariable {
                            label: clause.label.clone(),
                            var: symbols.resolve(var).to_string(),
                            span,
                        };
                    for var in clause.head.vars() {
                        if !bound.contains(&var) {
                            return Err(unsafe_var(var, cspans.map(|s| s.head)));
                        }
                    }
                    for (j, constraint) in constraints.iter().enumerate() {
                        for var in constraint.vars() {
                            if !bound.contains(&var) {
                                return Err(unsafe_var(
                                    var,
                                    cspans.and_then(|s| s.constraints.get(j).copied()),
                                ));
                            }
                        }
                    }
                    for (j, atom) in negated.iter().enumerate() {
                        let span = cspans.and_then(|s| s.negated.get(j).copied());
                        for var in atom.vars() {
                            if !bound.contains(&var) {
                                return Err(unsafe_var(var, span));
                            }
                        }
                        check_arity(atom, span, &symbols)?;
                    }
                }
            }
        }

        // `check_arity` captured `arities` mutably; it is no longer used
        // past this point, so the borrow ends here.
        let _ = &arities;
        let mut arities_final: HashMap<Symbol, usize> = HashMap::new();
        for clause in &clauses {
            arities_final.insert(clause.head.pred, clause.head.args.len());
            for atom in clause.body().iter().chain(clause.negated()) {
                arities_final.insert(atom.pred, atom.args.len());
            }
        }

        let strata = compute_strata(&clauses, &symbols, &spans)?;
        Ok(Self {
            clauses,
            symbols,
            labels,
            arities: arities_final,
            strata,
            spans,
            source,
        })
    }

    /// All clauses, in source order. A clause's position is its [`ClauseId`].
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The clause with identifier `id`.
    pub fn clause(&self, id: ClauseId) -> &Clause {
        &self.clauses[id.index()]
    }

    /// Looks up a clause by its source label.
    pub fn clause_by_label(&self, label: &str) -> Option<ClauseId> {
        self.labels.get(label).copied()
    }

    /// The program's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Iterates over `(id, clause)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClauseId, &Clause)> {
        self.clauses
            .iter()
            .enumerate()
            .map(|(i, c)| (ClauseId(i as u32), c))
    }

    /// The arity of `pred`, if the predicate appears in the program.
    pub fn arity(&self, pred: Symbol) -> Option<usize> {
        self.arities.get(&pred).copied()
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Renders the whole program back to surface syntax.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for clause in &self.clauses {
            out.push_str(&format!("{}\n", clause.display(&self.symbols)));
        }
        out
    }

    /// The evaluation stratum of `pred` (0 when the predicate is unknown).
    ///
    /// Negation-free programs have a single stratum 0. With stratified
    /// negation, a rule's negated predicates always sit in strictly lower
    /// strata than its head.
    pub fn stratum(&self, pred: Symbol) -> usize {
        self.strata.get(&pred).copied().unwrap_or(0)
    }

    /// The number of strata (1 for negation-free programs).
    pub fn num_strata(&self) -> usize {
        self.strata.values().copied().max().unwrap_or(0) + 1
    }

    /// Whether any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.clauses.iter().any(|c| !c.negated().is_empty())
    }

    /// Returns a copy of this program with the probability of clause `id`
    /// replaced by `prob`. Used by modification queries to apply a fix.
    /// Spans and source are preserved so diagnostics keep their locations.
    pub fn with_probability(&self, id: ClauseId, prob: f64) -> Result<Self, ProgramError> {
        let mut clauses = self.clauses.clone();
        clauses[id.index()].prob = prob;
        Self::validated(
            clauses,
            self.symbols.clone(),
            self.spans.clone(),
            self.source.clone(),
        )
    }

    /// The original source text, when the program was parsed from text.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Byte spans of every clause's parts, parallel to [`Self::clauses`].
    /// Empty for programmatically built programs.
    pub fn spans(&self) -> &[ClauseSpans] {
        &self.spans
    }

    /// The spans of clause `id`, when the program was parsed from text.
    pub fn clause_spans(&self, id: ClauseId) -> Option<&ClauseSpans> {
        self.spans.get(id.index())
    }
}

/// Assigns each predicate a stratum: `stratum(head) >= stratum(positive
/// body)` and `stratum(head) > stratum(negated body)`. Iterates to a fixed
/// point; a stratum exceeding the predicate count certifies a negative
/// cycle.
fn compute_strata(
    clauses: &[Clause],
    symbols: &SymbolTable,
    spans: &[ClauseSpans],
) -> Result<HashMap<Symbol, usize>, ProgramError> {
    let mut strata: HashMap<Symbol, usize> = HashMap::new();
    for clause in clauses {
        strata.entry(clause.head.pred).or_insert(0);
        for atom in clause.body().iter().chain(clause.negated()) {
            strata.entry(atom.pred).or_insert(0);
        }
    }
    let num_preds = strata.len().max(1);
    let mut changed = true;
    while changed {
        changed = false;
        for (i, clause) in clauses.iter().enumerate() {
            if clause.is_fact() {
                continue;
            }
            let mut required = 0usize;
            for atom in clause.body() {
                required = required.max(strata[&atom.pred]);
            }
            for atom in clause.negated() {
                required = required.max(strata[&atom.pred] + 1);
            }
            let head = strata.get_mut(&clause.head.pred).expect("seeded");
            if *head < required {
                if required >= num_preds {
                    return Err(ProgramError::NotStratified {
                        pred: symbols.resolve(clause.head.pred).to_string(),
                        span: spans.get(i).map(|s| s.clause),
                    });
                }
                *head = required;
                changed = true;
            }
        }
    }
    Ok(strata)
}

/// Incremental construction of programs without going through source text.
///
/// ```
/// use p3_datalog::program::{ProgramBuilder, T};
///
/// let mut b = ProgramBuilder::new();
/// b.fact("t1", 0.7, "trust", &[T::int(1), T::int(2)]);
/// b.rule("r1", 1.0, ("trustPath", &[T::var("X"), T::var("Y")]),
///        &[("trust", &[T::var("X"), T::var("Y")])], &[]);
/// let program = b.build().unwrap();
/// assert_eq!(program.len(), 2);
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    symbols: SymbolTable,
    clauses: Vec<Clause>,
}

/// A term spec for [`ProgramBuilder`] arguments.
#[derive(Clone, Debug)]
pub enum T {
    /// A symbol constant.
    Sym(String),
    /// An integer constant.
    Int(i64),
    /// A variable.
    Var(String),
}

impl T {
    /// A symbol constant.
    pub fn sym(s: impl Into<String>) -> Self {
        T::Sym(s.into())
    }

    /// An integer constant.
    pub fn int(i: i64) -> Self {
        T::Int(i)
    }

    /// A variable.
    pub fn var(s: impl Into<String>) -> Self {
        T::Var(s.into())
    }
}

/// A constraint spec for [`ProgramBuilder`] rules.
pub type ConstraintSpec<'a> = (T, CmpOp, T);

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn term(&mut self, t: &T) -> Term {
        match t {
            T::Sym(s) => Term::Const(Const::Sym(self.symbols.intern(s))),
            T::Int(i) => Term::Const(Const::Int(*i)),
            T::Var(v) => Term::Var(self.symbols.intern(v)),
        }
    }

    fn atom(&mut self, pred: &str, args: &[T]) -> Atom {
        let pred = self.symbols.intern(pred);
        let args = args.iter().map(|t| self.term(t)).collect();
        Atom { pred, args }
    }

    /// Adds a probabilistic base tuple.
    pub fn fact(&mut self, label: &str, prob: f64, pred: &str, args: &[T]) -> &mut Self {
        let head = self.atom(pred, args);
        self.clauses.push(Clause {
            label: label.to_string(),
            prob,
            head,
            kind: ClauseKind::Fact,
        });
        self
    }

    /// Adds a weighted conjunctive rule.
    pub fn rule(
        &mut self,
        label: &str,
        prob: f64,
        head: (&str, &[T]),
        body: &[(&str, &[T])],
        constraints: &[ConstraintSpec<'_>],
    ) -> &mut Self {
        let head = self.atom(head.0, head.1);
        let body = body.iter().map(|(p, args)| self.atom(p, args)).collect();
        let constraints = constraints
            .iter()
            .map(|(lhs, op, rhs)| Constraint {
                op: *op,
                lhs: self.term(lhs),
                rhs: self.term(rhs),
            })
            .collect();
        self.clauses.push(Clause {
            label: label.to_string(),
            prob,
            head,
            kind: ClauseKind::Rule {
                body,
                negated: Vec::new(),
                constraints,
            },
        });
        self
    }

    /// Adds a rule with negated body atoms (`\+`).
    pub fn rule_with_negation(
        &mut self,
        label: &str,
        prob: f64,
        head: (&str, &[T]),
        body: &[(&str, &[T])],
        negated: &[(&str, &[T])],
        constraints: &[ConstraintSpec<'_>],
    ) -> &mut Self {
        let head = self.atom(head.0, head.1);
        let body = body.iter().map(|(p, args)| self.atom(p, args)).collect();
        let negated = negated.iter().map(|(p, args)| self.atom(p, args)).collect();
        let constraints = constraints
            .iter()
            .map(|(lhs, op, rhs)| Constraint {
                op: *op,
                lhs: self.term(lhs),
                rhs: self.term(rhs),
            })
            .collect();
        self.clauses.push(Clause {
            label: label.to_string(),
            prob,
            head,
            kind: ClauseKind::Rule {
                body,
                negated,
                constraints,
            },
        });
        self
    }

    /// Validates and returns the finished program.
    pub fn build(self) -> Result<Program, ProgramError> {
        Program::from_clauses(self.clauses, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_acquaintance_program() {
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        let p = Program::parse(src).unwrap();
        assert_eq!(p.len(), 9);
        assert!(p.clause_by_label("r3").is_some());
        let r3 = p.clause(p.clause_by_label("r3").unwrap());
        assert!((r3.prob - 0.2).abs() < 1e-12);
        assert!(r3.is_rule());
    }

    #[test]
    fn rejects_non_ground_fact() {
        let err = Program::parse("t1 0.5: live(X).").unwrap_err();
        assert!(matches!(err, ProgramError::NonGroundFact { .. }), "{err}");
    }

    #[test]
    fn rejects_unsafe_head_variable() {
        let err = Program::parse("r1 0.5: p(X,Y) :- q(X).").unwrap_err();
        assert!(matches!(err, ProgramError::UnsafeVariable { .. }), "{err}");
    }

    #[test]
    fn rejects_unsafe_constraint_variable() {
        let err = Program::parse("r1 0.5: p(X) :- q(X), X != Z.").unwrap_err();
        match err {
            ProgramError::UnsafeVariable { var, .. } => assert_eq!(var, "Z"),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn rejects_duplicate_labels() {
        let err = Program::parse("t1 0.5: p(a). t1 0.5: p(b).").unwrap_err();
        assert!(matches!(err, ProgramError::DuplicateLabel { .. }), "{err}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = Program::parse("t1 0.5: p(a). r1 1.0: q(X) :- p(X,X).").unwrap_err();
        assert!(matches!(err, ProgramError::ArityMismatch { .. }), "{err}");
    }

    #[test]
    fn builder_and_parser_agree() {
        let mut b = ProgramBuilder::new();
        b.fact("t1", 0.7, "trust", &[T::int(1), T::int(2)]);
        b.rule(
            "r1",
            1.0,
            ("trustPath", &[T::var("X"), T::var("Y")]),
            &[("trust", &[T::var("X"), T::var("Y")])],
            &[],
        );
        let built = b.build().unwrap();
        let parsed =
            Program::parse("t1 0.7: trust(1,2). r1 1.0: trustPath(X,Y) :- trust(X,Y).").unwrap();
        assert_eq!(built.to_source(), parsed.to_source());
    }

    #[test]
    fn builder_rejects_bad_probability() {
        let mut b = ProgramBuilder::new();
        b.fact("t1", 1.5, "p", &[T::sym("a")]);
        assert!(matches!(
            b.build(),
            Err(ProgramError::BadProbability { .. })
        ));
    }

    #[test]
    fn to_source_round_trips() {
        let src = "r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.\nt1 1.0: live(\"Steve\",\"DC\").\n";
        let p = Program::parse(src).unwrap();
        let p2 = Program::parse(&p.to_source()).unwrap();
        assert_eq!(p.to_source(), p2.to_source());
    }

    #[test]
    fn validation_errors_carry_spans_and_codes() {
        // Multi-line program: the error is on line 3 and must resolve there.
        let src = "t1 1.0: p(a).\nt2 1.0: p(b).\nr1 0.5: q(X) :- p(X), X != Z.\n";
        let err = Program::parse(src).unwrap_err();
        assert_eq!(err.code(), "P3101");
        let span = err.span().expect("parsed programs have spans");
        assert_eq!(&src[span.start..span.end], "X != Z");
        let d = err.to_diagnostic().locate(src);
        assert_eq!(d.line, 3);
        assert!(d.column > 1);
        let rendered = d.render(Some(src), Some("bad.pl"));
        assert!(rendered.contains("error[P3101]"), "{rendered}");
        assert!(rendered.contains("bad.pl:3:"), "{rendered}");
        assert!(rendered.contains("^"), "{rendered}");
    }

    #[test]
    fn builder_errors_have_no_span_but_keep_codes() {
        let mut b = ProgramBuilder::new();
        b.fact("t1", 1.5, "p", &[T::sym("a")]);
        let err = b.build().unwrap_err();
        assert_eq!(err.code(), "P3301");
        assert!(err.span().is_none());
        assert!(err.to_string().contains("P3301"), "{err}");
    }

    #[test]
    fn parsed_program_retains_source_and_spans() {
        let src = "t1 0.5: p(a).\nr1 1.0: q(X) :- p(X).\n";
        let p = Program::parse(src).unwrap();
        assert_eq!(p.source(), Some(src));
        assert_eq!(p.spans().len(), 2);
        let id = p.clause_by_label("r1").unwrap();
        let spans = p.clause_spans(id).unwrap();
        assert_eq!(&src[spans.head.start..spans.head.end], "q(X)");
    }

    #[test]
    fn with_probability_changes_only_the_target_clause() {
        let p = Program::parse("t1 0.5: p(a). t2 0.6: p(b).").unwrap();
        let id = p.clause_by_label("t2").unwrap();
        let p2 = p.with_probability(id, 0.9).unwrap();
        assert_eq!(p2.clause(id).prob, 0.9);
        assert_eq!(p2.clause(p.clause_by_label("t1").unwrap()).prob, 0.5);
    }
}
