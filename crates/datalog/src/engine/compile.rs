//! Rule compilation.
//!
//! Before evaluation, every rule is compiled: variables are renumbered to
//! dense indices, and each constraint is scheduled at the earliest body
//! position where both of its operands are bound, so disequalities prune
//! join work as soon as possible.

use crate::ast::{Atom, ClauseId, CmpOp, Const, Term};
use crate::program::Program;
use crate::symbol::Symbol;
use std::collections::HashMap;

/// A term with dense variable numbering.
#[derive(Clone, Copy, Debug)]
pub enum CTerm {
    /// Variable slot index.
    Var(u16),
    /// Ground constant.
    Const(Const),
}

/// A body atom with dense variables.
#[derive(Clone, Debug)]
pub struct CAtom {
    /// Predicate name.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<CTerm>,
}

/// A compiled constraint plus the body position after which it can run.
#[derive(Clone, Debug)]
pub struct CConstraint {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: CTerm,
    /// Right operand.
    pub rhs: CTerm,
    /// Index of the body atom after whose binding both operands are ground.
    pub ready_after: usize,
}

/// A negated body atom plus the body position after which its variables
/// are all bound and the absence check can run.
#[derive(Clone, Debug)]
pub struct CNegated {
    /// The atom whose *absence* is required.
    pub atom: CAtom,
    /// Index of the body atom after whose binding the check can run.
    pub ready_after: usize,
}

/// A rule compiled for bottom-up evaluation.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// The originating clause.
    pub clause: ClauseId,
    /// Head with dense variables.
    pub head: CAtom,
    /// Body atoms in evaluation order (source order).
    pub body: Vec<CAtom>,
    /// Negated atoms, each annotated with its scheduling point. Sound only
    /// under stratified evaluation (the negated predicates' relations are
    /// complete before this rule runs).
    pub negated: Vec<CNegated>,
    /// Constraints, each annotated with its scheduling point.
    pub constraints: Vec<CConstraint>,
    /// Number of variable slots.
    pub num_vars: usize,
    /// Per body position: the columns that are bound when the atom is
    /// probed under left-to-right evaluation — constant columns plus
    /// columns whose variable first occurs in an earlier body atom. These
    /// are exactly the (predicate, column-set) indexes the join loop needs;
    /// the engine registers them on the database before evaluation.
    pub probe_cols: Vec<Box<[usize]>>,
}

impl CompiledRule {
    /// Compiles `clause` (which must be a rule) from `program`.
    pub fn compile(program: &Program, id: ClauseId) -> Self {
        let clause = program.clause(id);
        debug_assert!(clause.is_rule(), "only rules are compiled");
        let mut numbering: HashMap<Symbol, u16> = HashMap::new();
        let number = |v: Symbol, numbering: &mut HashMap<Symbol, u16>| -> u16 {
            let next = numbering.len() as u16;
            *numbering.entry(v).or_insert(next)
        };

        let compile_atom = |atom: &Atom, numbering: &mut HashMap<Symbol, u16>| -> CAtom {
            CAtom {
                pred: atom.pred,
                args: atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => CTerm::Var({
                            let next = numbering.len() as u16;
                            *numbering.entry(*v).or_insert(next)
                        }),
                        Term::Const(c) => CTerm::Const(*c),
                    })
                    .collect(),
            }
        };

        // Number body variables first (binding order), then the head reuses
        // the same slots — safety guarantees every head var occurs in a body
        // atom.
        let body: Vec<CAtom> = clause
            .body()
            .iter()
            .map(|a| compile_atom(a, &mut numbering))
            .collect();
        let head = compile_atom(&clause.head, &mut numbering);

        // For each constraint find the earliest body position binding both
        // operands.
        let bound_after = |v: Symbol| -> usize {
            for (i, atom) in clause.body().iter().enumerate() {
                if atom.vars().any(|x| x == v) {
                    return i;
                }
            }
            usize::MAX // unreachable for validated programs
        };
        let negated = clause
            .negated()
            .iter()
            .map(|atom| {
                let ready_after = atom.vars().map(bound_after).max().unwrap_or(0);
                CNegated {
                    atom: compile_atom(atom, &mut numbering),
                    ready_after,
                }
            })
            .collect();

        let constraints = clause
            .constraints()
            .iter()
            .map(|c| {
                let lhs = match c.lhs {
                    Term::Var(v) => CTerm::Var(number(v, &mut numbering)),
                    Term::Const(k) => CTerm::Const(k),
                };
                let rhs = match c.rhs {
                    Term::Var(v) => CTerm::Var(number(v, &mut numbering)),
                    Term::Const(k) => CTerm::Const(k),
                };
                let ready_after = c.vars().map(bound_after).max().unwrap_or(0); // all-constant constraints run immediately
                CConstraint {
                    op: c.op,
                    lhs,
                    rhs,
                    ready_after,
                }
            })
            .collect();

        let num_vars = numbering.len();

        // Plan the probe of each body atom: a column is bound at probe time
        // iff it holds a constant or a variable bound by an earlier atom.
        // (A variable repeated *within* one atom is unbound at probe time
        // for both occurrences; the join loop filters it while binding.)
        let mut seen_vars: std::collections::HashSet<u16> = std::collections::HashSet::new();
        let probe_cols: Vec<Box<[usize]>> = body
            .iter()
            .map(|atom| {
                let cols: Box<[usize]> = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t {
                        CTerm::Const(_) => Some(i),
                        CTerm::Var(v) => seen_vars.contains(v).then_some(i),
                    })
                    .collect();
                seen_vars.extend(atom.args.iter().filter_map(|t| match t {
                    CTerm::Var(v) => Some(*v),
                    CTerm::Const(_) => None,
                }));
                cols
            })
            .collect();

        CompiledRule {
            clause: id,
            head,
            body,
            negated,
            constraints,
            num_vars,
            probe_cols,
        }
    }

    /// The (predicate, column-set) indexes this rule's probes require.
    pub fn index_specs(&self) -> impl Iterator<Item = (Symbol, &[usize])> + '_ {
        self.body
            .iter()
            .zip(&self.probe_cols)
            .filter(|(_, cols)| !cols.is_empty())
            .map(|(atom, cols)| (atom.pred, &**cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn compile_first(src: &str) -> (Program, CompiledRule) {
        let p = Program::parse(src).unwrap();
        let id = p
            .iter()
            .find_map(|(id, c)| c.is_rule().then_some(id))
            .expect("no rule in program");
        let compiled = CompiledRule::compile(&p, id);
        (p, compiled)
    }

    #[test]
    fn variables_are_densely_numbered() {
        let (_, r) = compile_first("r1 1.0: p(X,Y) :- q(X,Z), q(Z,Y). t1 1.0: q(a,b).");
        assert_eq!(r.num_vars, 3);
        assert_eq!(r.body.len(), 2);
        // X = slot 0, Z = slot 1 from the first atom; Y = slot 2.
        match (r.body[0].args[0], r.body[0].args[1], r.body[1].args[1]) {
            (CTerm::Var(0), CTerm::Var(1), CTerm::Var(2)) => {}
            other => panic!("unexpected numbering {other:?}"),
        }
        match (r.head.args[0], r.head.args[1]) {
            (CTerm::Var(0), CTerm::Var(2)) => {}
            other => panic!("unexpected head numbering {other:?}"),
        }
    }

    #[test]
    fn constraints_are_scheduled_at_earliest_bound_position() {
        let (_, r) =
            compile_first("r1 1.0: p(A,C) :- q(A,B), q(B,C), A != B, A != C. t1 1.0: q(a,b).");
        assert_eq!(r.constraints.len(), 2);
        assert_eq!(
            r.constraints[0].ready_after, 0,
            "A != B ready after first atom"
        );
        assert_eq!(
            r.constraints[1].ready_after, 1,
            "A != C ready after second atom"
        );
    }

    #[test]
    fn constants_survive_compilation() {
        let (p, r) = compile_first(r#"r1 1.0: p(X) :- q(X,"DC"). t1 1.0: q(a,"DC")."#);
        let dc = p.symbols().get("DC").unwrap();
        match r.body[0].args[1] {
            CTerm::Const(Const::Sym(s)) => assert_eq!(s, dc),
            other => panic!("expected constant, got {other:?}"),
        }
    }
}
