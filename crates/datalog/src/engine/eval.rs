//! The join loop: evaluates one rule against one delta position.

use super::compile::{CAtom, CTerm, CompiledRule};
use super::database::{Database, TupleId};
use super::DerivationSink;
use crate::ast::Const;

/// Join-work counters from one `eval_rule` call. `firings` drives the
/// fixpoint accounting; `candidates` (tuples pulled from index probes, the
/// join fan-out) and `new_tuples` (head inserts that were not already
/// known) feed per-rule cost attribution.
#[derive(Clone, Copy, Default)]
pub(super) struct EvalDelta {
    pub firings: usize,
    pub candidates: u64,
    pub new_tuples: u64,
}

impl EvalDelta {
    /// Total join work: non-zero iff the rule did anything this call.
    pub fn work(&self) -> u64 {
        self.firings as u64 + self.candidates
    }

    pub fn merge(&mut self, other: EvalDelta) {
        self.firings += other.firings;
        self.candidates += other.candidates;
        self.new_tuples += other.new_tuples;
    }
}

/// Evaluates `rule` with delta position `d` against watermarks
/// `[w_prev, w_cur)`, inserting derived heads into `db` and reporting each
/// firing to `sink`. Returns the join-work counters of the call.
pub(super) fn eval_rule(
    db: &mut Database,
    rule: &CompiledRule,
    d: usize,
    w_prev: TupleId,
    w_cur: TupleId,
    sink: &mut dyn DerivationSink,
) -> EvalDelta {
    let mut cx = JoinCx {
        db,
        rule,
        d,
        w_prev,
        w_cur,
        env: vec![None; rule.num_vars],
        trail: Vec::with_capacity(rule.num_vars),
        body_ids: Vec::with_capacity(rule.body.len()),
        sink,
        delta: EvalDelta::default(),
        scratch_key: Vec::new(),
        scratch_args: Vec::new(),
        cand_bufs: vec![Vec::new(); rule.body.len()],
    };
    cx.join(0);
    cx.delta
}

struct JoinCx<'a> {
    db: &'a mut Database,
    rule: &'a CompiledRule,
    d: usize,
    w_prev: TupleId,
    w_cur: TupleId,
    env: Vec<Option<Const>>,
    /// Variable slots bound since the start of the join, in binding order.
    /// A prefix length snapshot identifies the bindings of one `bind` call.
    trail: Vec<u16>,
    body_ids: Vec<TupleId>,
    sink: &'a mut dyn DerivationSink,
    delta: EvalDelta,
    scratch_key: Vec<Const>,
    scratch_args: Vec<Const>,
    /// Per body position, a reusable buffer for the candidate tuples of
    /// that position. Candidates must be copied out of the database before
    /// recursing (derived heads are inserted below us), but the allocation
    /// is amortised across the whole join.
    cand_bufs: Vec<Vec<TupleId>>,
}

impl JoinCx<'_> {
    /// The id watermarks `[lo, hi)` a candidate tuple for body position
    /// `pos` must fall in. See the module docs of [`super`].
    fn id_range(&self, pos: usize) -> (TupleId, TupleId) {
        use std::cmp::Ordering::*;
        match pos.cmp(&self.d) {
            Less => (TupleId(0), self.w_prev),
            Equal => (self.w_prev, self.w_cur),
            Greater => (TupleId(0), self.w_cur),
        }
    }

    fn join(&mut self, pos: usize) {
        if pos == self.rule.body.len() {
            self.fire();
            return;
        }

        let atom = &self.rule.body[pos];
        let (lo, hi) = self.id_range(pos);

        // The bound columns were planned at compile time and their indexes
        // registered before evaluation; build the probe key from the
        // current bindings. (Planned columns hold constants or variables
        // bound by earlier atoms, so every lookup below succeeds.)
        let cols = &self.rule.probe_cols[pos];
        self.scratch_key.clear();
        for &col in cols.iter() {
            let value = match atom.args[col] {
                CTerm::Const(c) => c,
                CTerm::Var(v) => self.env[v as usize].expect("planned probe column is bound"),
            };
            self.scratch_key.push(value);
        }

        // Copy the matching id range out before recursing: derived heads
        // are inserted into `db` below us.
        let mut candidates = std::mem::take(&mut self.cand_bufs[pos]);
        candidates.clear();
        candidates.extend_from_slice(in_range(
            self.db.probe(atom.pred, cols, &self.scratch_key),
            lo,
            hi,
        ));
        self.delta.candidates += candidates.len() as u64;

        for &id in &candidates {
            if let Some(mark) = self.bind(atom, id) {
                if self.constraints_hold(pos) && self.negations_hold(pos) {
                    self.body_ids.push(id);
                    self.join(pos + 1);
                    self.body_ids.pop();
                }
                self.rollback(mark);
            }
        }
        self.cand_bufs[pos] = candidates;
    }

    /// Binds `atom`'s unbound variables against tuple `id`. Returns the
    /// trail mark to roll back to on success, or `None` when a repeated
    /// variable or constant mismatches (already rolled back).
    fn bind(&mut self, atom: &CAtom, id: TupleId) -> Option<usize> {
        let mark = self.trail.len();
        self.scratch_args.clear();
        self.scratch_args.extend_from_slice(&self.db.tuple(id).args);
        for (i, term) in atom.args.iter().enumerate() {
            let value = self.scratch_args[i];
            match term {
                CTerm::Const(c) => {
                    if *c != value {
                        self.rollback(mark);
                        return None;
                    }
                }
                CTerm::Var(v) => match self.env[*v as usize] {
                    Some(existing) => {
                        if existing != value {
                            self.rollback(mark);
                            return None;
                        }
                    }
                    None => {
                        self.env[*v as usize] = Some(value);
                        self.trail.push(*v);
                    }
                },
            }
        }
        Some(mark)
    }

    /// Clears every binding made after trail position `mark`.
    fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail underflow");
            self.env[v as usize] = None;
        }
    }

    /// Checks the negated atoms scheduled at body position `pos`: each must
    /// be *absent* from the database. Sound because stratified evaluation
    /// guarantees the negated predicates' relations are complete.
    fn negations_hold(&mut self, pos: usize) -> bool {
        if self.rule.negated.is_empty() {
            return true;
        }
        for i in 0..self.rule.negated.len() {
            if self.rule.negated[i].ready_after != pos {
                continue;
            }
            self.scratch_key.clear();
            for term in &self.rule.negated[i].atom.args {
                let v = match term {
                    CTerm::Const(c) => *c,
                    CTerm::Var(v) => {
                        self.env[*v as usize].expect("negation scheduled before binding")
                    }
                };
                self.scratch_key.push(v);
            }
            if self
                .db
                .lookup(self.rule.negated[i].atom.pred, &self.scratch_key)
                .is_some()
            {
                return false;
            }
        }
        true
    }

    /// Checks the constraints scheduled at body position `pos`.
    fn constraints_hold(&self, pos: usize) -> bool {
        for c in &self.rule.constraints {
            if c.ready_after != pos {
                continue;
            }
            let lhs = self.value(c.lhs);
            let rhs = self.value(c.rhs);
            if !c.op.eval(lhs, rhs) {
                return false;
            }
        }
        true
    }

    fn value(&self, term: CTerm) -> Const {
        match term {
            CTerm::Const(c) => c,
            CTerm::Var(v) => self.env[v as usize].expect("constraint scheduled before binding"),
        }
    }

    /// All body atoms matched: ground the head, insert, and report.
    fn fire(&mut self) {
        let args: Box<[Const]> = self.rule.head.args.iter().map(|t| self.value(*t)).collect();
        let (head_id, inserted) = self.db.insert(self.rule.head.pred, args);
        self.sink.derived(self.rule.clause, head_id, &self.body_ids);
        self.delta.firings += 1;
        if inserted {
            self.delta.new_tuples += 1;
        }
    }
}

/// The subslice of `ids` (sorted ascending) with `lo <= id < hi`.
fn in_range(ids: &[TupleId], lo: TupleId, hi: TupleId) -> &[TupleId] {
    debug_assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "tuple id lists are sorted"
    );
    let start = ids.partition_point(|&id| id < lo);
    let end = ids.partition_point(|&id| id < hi);
    &ids[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_selects_the_window() {
        let ids: Vec<TupleId> = [1u32, 3, 5, 7, 9].iter().map(|&i| TupleId(i)).collect();
        assert_eq!(in_range(&ids, TupleId(3), TupleId(8)), &ids[1..4]);
        assert_eq!(in_range(&ids, TupleId(0), TupleId(100)), &ids[..]);
        assert_eq!(in_range(&ids, TupleId(10), TupleId(20)), &[] as &[TupleId]);
        assert_eq!(in_range(&ids, TupleId(4), TupleId(4)), &[] as &[TupleId]);
    }
}
