//! Tuple storage.
//!
//! All ground tuples produced during evaluation are interned into a
//! [`Database`]: each distinct `(predicate, arguments)` pair receives one
//! [`TupleId`]. Relations are append-only lists of tuple ids, which makes
//! semi-naive deltas representable as index ranges, and gives provenance a
//! stable, compact vertex identifier for every tuple.
//!
//! Hash indexes on column subsets are *planned*: the engine registers every
//! (predicate, bound-column-set) pair its compiled rules will probe before
//! evaluation starts, and [`Database::insert`] maintains the registered
//! indexes incrementally. Probing is then a read-only lookup — no lazy
//! rebuild inside the join loop.

use crate::ast::Const;
use crate::symbol::{Symbol, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Identifies a ground tuple within its [`Database`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One stored ground tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoredTuple {
    /// Predicate name.
    pub pred: Symbol,
    /// Ground arguments.
    pub args: Box<[Const]>,
}

/// One hash index: tuples grouped by their values at a fixed column subset.
type Index = HashMap<Box<[Const]>, Vec<TupleId>>;

/// A relation: the tuples of one predicate, in insertion order, plus the
/// registered hash indexes on column subsets.
#[derive(Default, Debug, Clone)]
pub struct Relation {
    tuples: Vec<TupleId>,
    indices: HashMap<Box<[usize]>, Index>,
}

impl Relation {
    /// All tuples, insertion-ordered.
    pub fn tuples(&self) -> &[TupleId] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The tuple store produced by evaluation.
#[derive(Default, Clone)]
pub struct Database {
    tuples: Vec<StoredTuple>,
    intern: HashMap<(Symbol, Box<[Const]>), TupleId>,
    relations: HashMap<Symbol, Relation>,
    /// Symbol table snapshot installed by the engine; enables name-based
    /// lookups like [`Self::relation_by_name`].
    pub(crate) symbols_hint: Option<SymbolTable>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database carrying a symbol-table snapshot, enabling
    /// name-based lookups like [`Self::relation_by_name`] on databases
    /// assembled outside the engine (e.g. demand-mode re-interning).
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        Self {
            symbols_hint: Some(symbols),
            ..Self::default()
        }
    }

    /// Registers a hash index on `cols` of `pred`, backfilling any tuples
    /// already stored. Subsequent [`Self::insert`]s maintain it
    /// incrementally; [`Self::probe`] requires it. Registering twice is a
    /// no-op, as is registering the empty column set (a full scan).
    pub fn register_index(&mut self, pred: Symbol, cols: &[usize]) {
        if cols.is_empty() {
            return;
        }
        if self
            .relations
            .get(&pred)
            .is_some_and(|r| r.indices.contains_key(cols))
        {
            return;
        }
        let mut map: HashMap<Box<[Const]>, Vec<TupleId>> = HashMap::new();
        if let Some(rel) = self.relations.get(&pred) {
            for &id in &rel.tuples {
                let args = &self.tuples[id.index()].args;
                let key: Box<[Const]> = cols.iter().map(|&c| args[c]).collect();
                map.entry(key).or_default().push(id);
            }
        }
        self.relations
            .entry(pred)
            .or_default()
            .indices
            .insert(cols.to_vec().into_boxed_slice(), map);
    }

    /// Interns a tuple, returning its id and whether it was newly inserted.
    pub fn insert(&mut self, pred: Symbol, args: Box<[Const]>) -> (TupleId, bool) {
        if let Some(&id) = self.intern.get(&(pred, args.clone())) {
            return (id, false);
        }
        let id = TupleId(u32::try_from(self.tuples.len()).expect("tuple id overflow"));
        self.tuples.push(StoredTuple {
            pred,
            args: args.clone(),
        });
        let rel = self.relations.entry(pred).or_default();
        rel.tuples.push(id);
        for (cols, map) in rel.indices.iter_mut() {
            let key: Box<[Const]> = cols.iter().map(|&c| args[c]).collect();
            map.entry(key).or_default().push(id);
        }
        self.intern.insert((pred, args), id);
        (id, true)
    }

    /// Looks up a tuple id without inserting.
    pub fn lookup(&self, pred: Symbol, args: &[Const]) -> Option<TupleId> {
        // The borrow of the key requires an owned Box; avoid it with a
        // two-step scan over the relation for small lookups? No — clone the
        // key; lookups are rare (query entry points only).
        self.intern
            .get(&(pred, args.to_vec().into_boxed_slice()))
            .copied()
    }

    /// The stored tuple for `id`.
    pub fn tuple(&self, id: TupleId) -> &StoredTuple {
        &self.tuples[id.index()]
    }

    /// The relation for `pred`, if any tuple of it exists (or an index on it
    /// was registered).
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Looks up a relation by predicate name string.
    pub fn relation_by_name(&self, name: &str) -> Option<&Relation> {
        // Scan: the number of predicates is tiny.
        self.relations.iter().find_map(|(sym, rel)| {
            if self
                .symbols_hint
                .as_ref()
                .map(|t| t.resolve(*sym) == name)
                .unwrap_or(false)
            {
                Some(rel)
            } else {
                None
            }
        })
    }

    /// Total number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether no tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All predicates with at least one tuple.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.relations
            .iter()
            .filter(|(_, rel)| !rel.tuples.is_empty())
            .map(|(&sym, _)| sym)
    }

    /// Tuples of `pred` whose columns `cols` equal `key`, via a registered
    /// index.
    ///
    /// # Panics
    ///
    /// If `cols` is non-empty and no index on it was registered for a
    /// non-empty `pred` — the engine plans every probe it performs; ad-hoc
    /// callers should use [`Self::matching`].
    pub fn probe(&self, pred: Symbol, cols: &[usize], key: &[Const]) -> &[TupleId] {
        debug_assert_eq!(cols.len(), key.len());
        let Some(rel) = self.relations.get(&pred) else {
            return &[];
        };
        if cols.is_empty() {
            return &rel.tuples;
        }
        let index = rel
            .indices
            .get(cols)
            .unwrap_or_else(|| panic!("probe on unregistered index {cols:?}"));
        index.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Tuples of `pred` whose columns `cols` equal `key`, using a registered
    /// index when one exists and a relation scan otherwise.
    pub fn matching(&self, pred: Symbol, cols: &[usize], key: &[Const]) -> Vec<TupleId> {
        debug_assert_eq!(cols.len(), key.len());
        let Some(rel) = self.relations.get(&pred) else {
            return Vec::new();
        };
        if let Some(index) = rel.indices.get(cols) {
            return index.get(key).cloned().unwrap_or_default();
        }
        rel.tuples
            .iter()
            .copied()
            .filter(|&id| {
                let args = &self.tuples[id.index()].args;
                cols.iter().zip(key).all(|(&c, k)| args[c] == *k)
            })
            .collect()
    }

    /// Renders a tuple as `pred(arg,...)`.
    pub fn display_tuple<'a>(
        &'a self,
        id: TupleId,
        syms: &'a SymbolTable,
    ) -> impl fmt::Display + 'a {
        struct D<'a>(&'a StoredTuple, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.resolve(self.0.pred))?;
                for (i, arg) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", arg.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self.tuple(id), syms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn insert_interns_tuples() {
        let mut t = syms();
        let p = t.intern("p");
        let a = Const::Sym(t.intern("a"));
        let mut db = Database::new();
        let (id1, new1) = db.insert(p, vec![a].into_boxed_slice());
        let (id2, new2) = db.insert(p, vec![a].into_boxed_slice());
        assert_eq!(id1, id2);
        assert!(new1);
        assert!(!new2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn lookup_finds_inserted_tuples() {
        let mut t = syms();
        let p = t.intern("p");
        let a = Const::Int(7);
        let mut db = Database::new();
        let (id, _) = db.insert(p, vec![a].into_boxed_slice());
        assert_eq!(db.lookup(p, &[a]), Some(id));
        assert_eq!(db.lookup(p, &[Const::Int(8)]), None);
    }

    #[test]
    fn registered_probe_tracks_appends() {
        let mut t = syms();
        let e = t.intern("edge");
        let n = |i| Const::Int(i);
        let mut db = Database::new();
        let (t12, _) = db.insert(e, vec![n(1), n(2)].into_boxed_slice());
        let (t13, _) = db.insert(e, vec![n(1), n(3)].into_boxed_slice());
        db.insert(e, vec![n(2), n(3)].into_boxed_slice());

        // Registration backfills the existing tuples…
        db.register_index(e, &[0]);
        assert_eq!(db.probe(e, &[0], &[n(1)]), &[t12, t13]);

        // …and inserts maintain the index from then on.
        let (t14, _) = db.insert(e, vec![n(1), n(4)].into_boxed_slice());
        assert_eq!(db.probe(e, &[0], &[n(1)]), &[t12, t13, t14]);
    }

    #[test]
    fn register_before_any_tuple_exists() {
        let mut t = syms();
        let e = t.intern("edge");
        let n = |i| Const::Int(i);
        let mut db = Database::new();
        db.register_index(e, &[1]);
        assert!(db.probe(e, &[1], &[n(2)]).is_empty());
        let (t12, _) = db.insert(e, vec![n(1), n(2)].into_boxed_slice());
        assert_eq!(db.probe(e, &[1], &[n(2)]), &[t12]);
    }

    #[test]
    fn probe_on_multiple_columns() {
        let mut t = syms();
        let e = t.intern("edge");
        let n = |i| Const::Int(i);
        let mut db = Database::new();
        db.register_index(e, &[0, 1]);
        let (t12, _) = db.insert(e, vec![n(1), n(2)].into_boxed_slice());
        db.insert(e, vec![n(1), n(3)].into_boxed_slice());
        assert_eq!(db.probe(e, &[0, 1], &[n(1), n(2)]), &[t12]);
    }

    #[test]
    fn probe_unknown_predicate_is_empty() {
        let mut t = syms();
        let p = t.intern("p");
        let db = Database::new();
        assert!(db.probe(p, &[0], &[Const::Int(1)]).is_empty());
    }

    #[test]
    fn matching_scans_without_an_index() {
        let mut t = syms();
        let e = t.intern("edge");
        let n = |i| Const::Int(i);
        let mut db = Database::new();
        let (t12, _) = db.insert(e, vec![n(1), n(2)].into_boxed_slice());
        let (t13, _) = db.insert(e, vec![n(1), n(3)].into_boxed_slice());
        db.insert(e, vec![n(2), n(3)].into_boxed_slice());
        assert_eq!(db.matching(e, &[0], &[n(1)]), vec![t12, t13]);
        // Registered path returns the same answer.
        db.register_index(e, &[0]);
        assert_eq!(db.matching(e, &[0], &[n(1)]), vec![t12, t13]);
    }

    #[test]
    fn empty_registered_relations_are_not_reported_as_predicates() {
        let mut t = syms();
        let e = t.intern("edge");
        let mut db = Database::new();
        db.register_index(e, &[0]);
        assert_eq!(db.predicates().count(), 0);
    }
}
