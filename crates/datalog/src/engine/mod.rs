//! Bottom-up semi-naive evaluation.
//!
//! The engine computes the least fixpoint of a program's rules over its base
//! tuples — *derivability on the full program*, independent of clause
//! probabilities, exactly as P3 requires: probability enters only later,
//! through the provenance polynomial.
//!
//! Every rule firing (a grounding of a rule body) is reported exactly once
//! through the [`DerivationSink`] seam, including firings that re-derive an
//! already-known tuple — those are *alternative derivations* and are what
//! provenance capture exists to record.
//!
//! ## Semi-naive discipline
//!
//! Tuple ids grow monotonically, so "the database as of iteration start" is
//! a watermark on ids. For a rule body `B1,…,Bn` and a delta position `d`,
//! atoms before `d` read tuples older than the previous watermark, atom `d`
//! reads the delta between the two watermarks, and atoms after `d` read
//! everything up to the current watermark. Each grounding therefore fires at
//! exactly one `(iteration, d)`: the iteration where its newest body tuple
//! appeared, with `d` the position of that tuple.

mod compile;
mod database;
mod eval;

pub use compile::{CAtom, CConstraint, CTerm, CompiledRule};
pub use database::{Database, Relation, StoredTuple, TupleId};

use crate::ast::{ClauseId, Term};
use crate::program::Program;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global switch for per-rule cost collection (the EXPLAIN plane's
/// raw data). On by default — the per-call accumulation is a handful of
/// integer adds per rule evaluation — but the overhead bench flips it off
/// to measure exactly what enabling explain costs.
static RULE_STAT_COLLECTION: AtomicBool = AtomicBool::new(true);

/// Enables or disables per-rule cost collection for subsequent runs.
pub fn set_rule_stat_collection(on: bool) {
    RULE_STAT_COLLECTION.store(on, Ordering::Relaxed);
}

/// Whether per-rule cost collection is currently enabled.
pub fn rule_stat_collection() -> bool {
    RULE_STAT_COLLECTION.load(Ordering::Relaxed)
}

/// Observes derivations during evaluation. Implemented by provenance
/// capture; [`NoopSink`] discards everything (the paper's "without
/// provenance" baseline).
pub trait DerivationSink {
    /// A base tuple `tuple` asserted by fact clause `clause`.
    fn base_fact(&mut self, clause: ClauseId, tuple: TupleId);

    /// Rule `rule` fired with ground body `body`, deriving `head`.
    ///
    /// `body` lists the tuple ids of the grounded body atoms in rule order.
    fn derived(&mut self, rule: ClauseId, head: TupleId, body: &[TupleId]);
}

/// A sink that records nothing.
pub struct NoopSink;

impl DerivationSink for NoopSink {
    #[inline]
    fn base_fact(&mut self, _clause: ClauseId, _tuple: TupleId) {}
    #[inline]
    fn derived(&mut self, _rule: ClauseId, _head: TupleId, _body: &[TupleId]) {}
}

/// Counters reported by a run.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Total rule firings observed (including re-derivations).
    pub firings: usize,
    /// Distinct tuples at fixpoint (base + derived).
    pub tuples: usize,
}

/// Counters for one stratum of a run.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StratumStats {
    /// Fixpoint iterations this stratum executed.
    pub iterations: usize,
    /// Rule firings observed in this stratum.
    pub firings: usize,
    /// Tuples this stratum's rules derived.
    pub derived_tuples: usize,
}

/// Evaluation cost attributed to one compiled rule across a run — the raw
/// material of the EXPLAIN plane. Indexed like `Engine`'s compiled-rule
/// list; `clause` ties the row back to the program clause (a transformed
/// clause under demand evaluation, projected onto its source clause by
/// `explain::ExplainPlan::project_demand`).
#[derive(Clone, Debug)]
pub struct RuleStats {
    /// The program clause this rule was compiled from.
    pub clause: ClauseId,
    /// Rule firings, including re-derivations.
    pub firings: u64,
    /// Head inserts that created a previously unknown tuple.
    pub new_tuples: u64,
    /// Join fan-out: candidate tuples pulled from index probes across all
    /// body positions and delta passes.
    pub candidates: u64,
    /// Fixpoint iterations in which this rule did any join work.
    pub iterations: u64,
    /// Body positions probed through a planned column index.
    pub indexed_probes: u32,
    /// Body positions scanned without an index (no bound columns).
    pub scanned_probes: u32,
}

impl RuleStats {
    /// The scalar cost used for ranking: join fan-out plus firing and
    /// insert work. Candidates dominate because each one is a tuple copy +
    /// bind attempt; firings and new tuples add head grounding and insert
    /// cost on top.
    pub fn cost(&self) -> u64 {
        self.candidates + self.firings + self.new_tuples
    }
}

/// The evaluation engine for one program.
pub struct Engine<'p> {
    program: &'p Program,
    rules: Vec<CompiledRule>,
    stats: EngineStats,
    per_stratum: Vec<StratumStats>,
    rule_stats: Vec<RuleStats>,
    /// New tuples per semi-naive iteration, across strata in run order.
    deltas: Vec<u32>,
    /// Evaluation-mode label for metrics (`naive` unless the caller runs a
    /// demand-transformed program and says so).
    mode_label: &'static str,
}

impl<'p> Engine<'p> {
    /// Compiles `program`'s rules and prepares an engine.
    pub fn new(program: &'p Program) -> Self {
        let rules = program
            .iter()
            .filter(|(_, c)| c.is_rule())
            .map(|(id, _)| CompiledRule::compile(program, id))
            .collect();
        Self {
            program,
            rules,
            stats: EngineStats::default(),
            per_stratum: Vec::new(),
            rule_stats: Vec::new(),
            deltas: Vec::new(),
            mode_label: "naive",
        }
    }

    /// Labels this run's metrics with an evaluation mode (`naive`/`demand`).
    pub fn set_mode_label(&mut self, label: &'static str) {
        self.mode_label = label;
    }

    /// Runs to fixpoint, reporting derivations to `sink`.
    pub fn run(&mut self, sink: &mut dyn DerivationSink) -> Database {
        let mut db = Database::new();
        db.symbols_hint = Some(self.program.symbols().clone());

        // Register the indexes planned at compile time, once, before any
        // tuple exists; inserts keep them current for the whole run.
        for rule in &self.rules {
            for (pred, cols) in rule.index_specs() {
                db.register_index(pred, cols);
            }
        }

        // Seed base tuples. Facts are ground by validation.
        for (id, clause) in self.program.iter() {
            if !clause.is_fact() {
                continue;
            }
            let args = clause
                .head
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(_) => unreachable!("facts are ground"),
                })
                .collect();
            let (tid, _) = db.insert(clause.head.pred, args);
            sink.base_fact(id, tid);
        }

        // Stratified evaluation: rules run stratum by stratum (a single
        // stratum for negation-free programs), so a rule's negated
        // predicates are complete before the rule ever fires.
        let num_strata = self.program.num_strata();
        let mut by_stratum: Vec<Vec<usize>> = vec![Vec::new(); num_strata];
        for (idx, rule) in self.rules.iter().enumerate() {
            let head_pred = self.program.clause(rule.clause).head.pred;
            by_stratum[self.program.stratum(head_pred)].push(idx);
        }

        let mut span = p3_obs::span::span("datalog.run");
        let delta_hist = p3_obs::histogram!(
            "p3_datalog_delta_tuples",
            "New tuples per semi-naive iteration (the delta each pass joins against)"
        );
        let base_tuples = db.len();
        let mut iterations = 0usize;
        let mut firings = 0usize;
        let collect = rule_stat_collection();
        self.per_stratum = Vec::with_capacity(by_stratum.len());
        self.deltas = Vec::new();
        self.rule_stats = self
            .rules
            .iter()
            .map(|rule| {
                let indexed = rule.index_specs().count() as u32;
                RuleStats {
                    clause: rule.clause,
                    firings: 0,
                    new_tuples: 0,
                    candidates: 0,
                    iterations: 0,
                    indexed_probes: indexed,
                    scanned_probes: rule.body.len() as u32 - indexed,
                }
            })
            .collect();
        for stratum_rules in &by_stratum {
            let stratum_start = db.len();
            let mut stratum_stats = StratumStats::default();
            // Every tuple derived so far is "new" to this stratum's rules.
            let mut w_prev = 0u32;
            let mut w_cur = db.len() as u32;
            // Fixpoint loop. Firings on the final (no-new-tuples) pass are
            // still reported: a delta may produce only re-derivations, which
            // matter to provenance even though they add no tuples.
            while w_prev < w_cur {
                iterations += 1;
                stratum_stats.iterations += 1;
                delta_hist.observe(u64::from(w_cur - w_prev));
                if collect {
                    self.deltas.push(w_cur - w_prev);
                }
                for &rule_idx in stratum_rules {
                    let mut rule_delta = eval::EvalDelta::default();
                    for d in 0..self.rules[rule_idx].body.len() {
                        rule_delta.merge(eval::eval_rule(
                            &mut db,
                            &self.rules[rule_idx],
                            d,
                            TupleId(w_prev),
                            TupleId(w_cur),
                            sink,
                        ));
                    }
                    stratum_stats.firings += rule_delta.firings;
                    if collect {
                        let rs = &mut self.rule_stats[rule_idx];
                        rs.firings += rule_delta.firings as u64;
                        rs.candidates += rule_delta.candidates;
                        rs.new_tuples += rule_delta.new_tuples;
                        if rule_delta.work() > 0 {
                            rs.iterations += 1;
                        }
                    }
                }
                w_prev = w_cur;
                w_cur = db.len() as u32;
            }
            firings += stratum_stats.firings;
            stratum_stats.derived_tuples = db.len() - stratum_start;
            self.per_stratum.push(stratum_stats);
        }

        p3_obs::counter!(
            "p3_datalog_iterations_total",
            "Semi-naive fixpoint iterations executed"
        )
        .add(iterations as u64);
        p3_obs::counter!(
            "p3_datalog_firings_total",
            "Rule firings observed, including re-derivations"
        )
        .add(firings as u64);
        p3_obs::counter!(
            "p3_engine_strata_iterations_total",
            "Fixpoint iterations executed, summed across strata"
        )
        .add(iterations as u64);
        let mode = p3_obs::metrics::render_labels(&[("mode", self.mode_label)]);
        p3_obs::metrics::labeled_counter(
            "p3_engine_derived_tuples_total",
            "Tuples derived by rule evaluation, by evaluation mode",
            &mode,
        )
        .add((db.len() - base_tuples) as u64);
        // Per-stratum counters: stratum indexes are small and bounded by
        // the program's negation structure, so the label set stays tiny.
        for (i, s) in self.per_stratum.iter().enumerate() {
            let labels = p3_obs::metrics::render_labels(&[
                ("stratum", &i.to_string()),
                ("mode", self.mode_label),
            ]);
            p3_obs::metrics::labeled_counter(
                "p3_engine_stratum_firings_total",
                "Rule firings per stratum, by evaluation mode",
                &labels,
            )
            .add(s.firings as u64);
            p3_obs::metrics::labeled_counter(
                "p3_engine_stratum_tuples_total",
                "Tuples derived per stratum, by evaluation mode",
                &labels,
            )
            .add(s.derived_tuples as u64);
        }
        span.add_field("iterations", iterations);
        span.add_field("firings", firings);
        span.add_field("tuples", db.len());

        self.stats = EngineStats {
            iterations,
            firings,
            tuples: db.len(),
        };
        db
    }

    /// Runs to fixpoint without observing derivations.
    pub fn run_plain(&mut self) -> Database {
        self.run(&mut NoopSink)
    }

    /// Counters from the most recent run.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Per-stratum counters from the most recent run, in stratum order.
    /// Negation-free programs have a single stratum.
    pub fn stratum_stats(&self) -> &[StratumStats] {
        &self.per_stratum
    }

    /// Per-rule cost counters from the most recent run, in compiled-rule
    /// order. Empty when rule-stat collection was disabled for the run.
    pub fn rule_stats(&self) -> &[RuleStats] {
        &self.rule_stats
    }

    /// New tuples per semi-naive iteration of the most recent run, across
    /// strata in run order. Empty when collection was disabled.
    pub fn deltas(&self) -> &[u32] {
        &self.deltas
    }

    /// The evaluation-mode label of this engine (`naive`/`demand`).
    pub fn mode_label(&self) -> &'static str {
        self.mode_label
    }

    /// The program being evaluated.
    pub fn program(&self) -> &'p Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::program::Program;

    fn run(src: &str) -> (Program, Database, EngineStats) {
        let p = Program::parse(src).unwrap();
        let mut e = Engine::new(&p);
        let db = e.run_plain();
        let stats = e.stats();
        (p, db, stats)
    }

    fn count(p: &Program, db: &Database, pred: &str) -> usize {
        p.symbols()
            .get(pred)
            .and_then(|s| db.relation(s))
            .map(|r| r.len())
            .unwrap_or(0)
    }

    #[test]
    fn facts_only() {
        let (p, db, stats) = run("t1 0.5: p(a). t2 0.5: p(b).");
        assert_eq!(count(&p, &db, "p"), 2);
        assert_eq!(stats.firings, 0);
    }

    #[test]
    fn simple_join() {
        let (p, db, _) = run("r1 1.0: grandparent(X,Z) :- parent(X,Y), parent(Y,Z).
             parent(alice,bob). parent(bob,carol). parent(bob,dave).");
        assert_eq!(count(&p, &db, "grandparent"), 2);
    }

    #[test]
    fn transitive_closure() {
        let (p, db, _) = run("r1 1.0: path(X,Y) :- edge(X,Y).
             r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
             edge(1,2). edge(2,3). edge(3,4). edge(4,1).");
        // Cycle of 4 nodes: all 16 ordered pairs are reachable.
        assert_eq!(count(&p, &db, "path"), 16);
    }

    #[test]
    fn constraints_prune_groundings() {
        let (p, db, _) = run("r1 1.0: pair(X,Y) :- p(X), p(Y), X != Y.
             p(a). p(b). p(c).");
        assert_eq!(count(&p, &db, "pair"), 6, "3*3 minus the 3 diagonal pairs");
    }

    #[test]
    fn integer_comparison_constraints() {
        let (p, db, _) = run("r1 1.0: big(X) :- num(X), X >= 10.
             num(3). num(10). num(42).");
        assert_eq!(count(&p, &db, "big"), 2);
    }

    #[test]
    fn acquaintance_example_derives_ben_knows_elena() {
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        let (p, db, _) = run(src);
        let know = p.symbols().get("know").unwrap();
        let ben = Const::Sym(p.symbols().get("Ben").unwrap());
        let elena = Const::Sym(p.symbols().get("Elena").unwrap());
        assert!(db.lookup(know, &[ben, elena]).is_some());
    }

    #[test]
    fn each_grounding_fires_exactly_once() {
        struct Recorder(Vec<(ClauseId, TupleId, Vec<TupleId>)>);
        impl DerivationSink for Recorder {
            fn base_fact(&mut self, _c: ClauseId, _t: TupleId) {}
            fn derived(&mut self, rule: ClauseId, head: TupleId, body: &[TupleId]) {
                self.0.push((rule, head, body.to_vec()));
            }
        }
        let p = Program::parse(
            "r1 1.0: path(X,Y) :- edge(X,Y).
             r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
             edge(1,2). edge(2,3). edge(3,1). edge(1,3).",
        )
        .unwrap();
        let mut rec = Recorder(Vec::new());
        Engine::new(&p).run(&mut rec);
        let mut seen = std::collections::HashSet::new();
        for firing in &rec.0 {
            assert!(seen.insert(firing.clone()), "duplicate firing {firing:?}");
        }
        // r1 fires once per edge.
        let r1 = p.clause_by_label("r1").unwrap();
        assert_eq!(rec.0.iter().filter(|(r, _, _)| *r == r1).count(), 4);
    }

    #[test]
    fn rederivations_are_reported() {
        struct Count(usize);
        impl DerivationSink for Count {
            fn base_fact(&mut self, _c: ClauseId, _t: TupleId) {}
            fn derived(&mut self, _r: ClauseId, _h: TupleId, _b: &[TupleId]) {
                self.0 += 1;
            }
        }
        // q(a) has two derivations; both must be observed even though the
        // tuple is inserted once.
        let p =
            Program::parse("r1 0.5: q(X) :- p1(X). r2 0.5: q(X) :- p2(X). p1(a). p2(a).").unwrap();
        let mut c = Count(0);
        let db = Engine::new(&p).run(&mut c);
        assert_eq!(c.0, 2);
        let q = p.symbols().get("q").unwrap();
        assert_eq!(db.relation(q).unwrap().len(), 1);
    }

    #[test]
    fn zero_arity_predicates() {
        let (p, db, _) = run("r1 0.3: ok() :- go(). go().");
        assert_eq!(count(&p, &db, "ok"), 1);
    }

    #[test]
    fn repeated_variables_within_an_atom_filter() {
        let (p, db, _) = run("r1 1.0: loop(X) :- edge(X,X).
             edge(1,1). edge(1,2). edge(3,3).");
        assert_eq!(count(&p, &db, "loop"), 2);
    }

    #[test]
    fn stats_are_populated() {
        let src = "r1 1.0: path(X,Y) :- edge(X,Y).
                   r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
                   edge(1,2). edge(2,3).";
        let p = Program::parse(src).unwrap();
        let mut e = Engine::new(&p);
        let db = e.run_plain();
        let s = e.stats();
        assert!(s.iterations >= 2);
        assert_eq!(s.tuples, db.len());
        assert_eq!(s.firings, 3, "2 r1 firings + 1 r2 firing: {s:?}");
    }
}
