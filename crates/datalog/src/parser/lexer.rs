//! Hand-written lexer for the ProbLog-like syntax.

use super::error::{ParseError, ParseErrorKind};

/// A byte range into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// A span covering bytes `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// Lexical token categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier beginning with a lowercase letter: predicate/constant.
    LowerIdent,
    /// Identifier beginning with an uppercase letter or `_`: variable.
    UpperIdent,
    /// Decimal number, possibly signed, possibly with a fractional part.
    Number,
    /// Double-quoted string literal (span includes the quotes).
    Str,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Implies,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `=`
    Eq,
    /// `!=` or `\=`
    Ne,
    /// `\+` — negation-as-failure marker.
    NotSign,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable token description for error messages.
    pub fn describe(self) -> &'static str {
        match self {
            TokenKind::LowerIdent => "identifier",
            TokenKind::UpperIdent => "variable",
            TokenKind::Number => "number",
            TokenKind::Str => "string",
            TokenKind::LParen => "'('",
            TokenKind::RParen => "')'",
            TokenKind::Comma => "','",
            TokenKind::Dot => "'.'",
            TokenKind::Implies => "':-'",
            TokenKind::Colon => "':'",
            TokenKind::ColonColon => "'::'",
            TokenKind::Eq => "'='",
            TokenKind::Ne => "'!='",
            TokenKind::NotSign => "'\\+'",
            TokenKind::Lt => "'<'",
            TokenKind::Le => "'<='",
            TokenKind::Gt => "'>'",
            TokenKind::Ge => "'>='",
            TokenKind::Eof => "end of input",
        }
    }
}

/// A token: its kind and where it sits in the source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Token category.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

/// Tokenizer over source bytes.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input. The final token is always [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_byte_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => self.pos += 1,
                Some(b'%') => self.skip_line(),
                Some(b'/') if self.peek_byte_at(1) == Some(b'/') => self.skip_line(),
                _ => return,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(b) = self.peek_byte() {
            self.pos += 1;
            if b == b'\n' {
                return;
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start),
            });
        };
        let simple = |kind: TokenKind, len: usize, this: &mut Self| {
            this.pos += len;
            Ok(Token {
                kind,
                span: Span::new(start, start + len),
            })
        };
        match b {
            b'(' => simple(TokenKind::LParen, 1, self),
            b')' => simple(TokenKind::RParen, 1, self),
            b',' => simple(TokenKind::Comma, 1, self),
            b'=' => simple(TokenKind::Eq, 1, self),
            b'!' if self.peek_byte_at(1) == Some(b'=') => simple(TokenKind::Ne, 2, self),
            b'\\' if self.peek_byte_at(1) == Some(b'=') => simple(TokenKind::Ne, 2, self),
            b'\\' if self.peek_byte_at(1) == Some(b'+') => simple(TokenKind::NotSign, 2, self),
            b'<' if self.peek_byte_at(1) == Some(b'=') => simple(TokenKind::Le, 2, self),
            b'<' => simple(TokenKind::Lt, 1, self),
            b'>' if self.peek_byte_at(1) == Some(b'=') => simple(TokenKind::Ge, 2, self),
            b'>' => simple(TokenKind::Gt, 1, self),
            b':' if self.peek_byte_at(1) == Some(b'-') => simple(TokenKind::Implies, 2, self),
            b':' if self.peek_byte_at(1) == Some(b':') => simple(TokenKind::ColonColon, 2, self),
            b':' => simple(TokenKind::Colon, 1, self),
            b'"' => self.lex_string(start),
            b'.' => {
                // A dot can begin a number like `.5`? The grammar does not
                // allow that; a dot is always the clause terminator.
                simple(TokenKind::Dot, 1, self)
            }
            b'-' | b'0'..=b'9' => self.lex_number(start),
            b'_' | b'A'..=b'Z' => {
                self.lex_ident(start);
                Ok(Token {
                    kind: TokenKind::UpperIdent,
                    span: Span::new(start, self.pos),
                })
            }
            b'a'..=b'z' => {
                self.lex_ident(start);
                Ok(Token {
                    kind: TokenKind::LowerIdent,
                    span: Span::new(start, self.pos),
                })
            }
            _ => {
                let ch = self.src[start..].chars().next().unwrap_or('?');
                Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar(ch),
                    Span::new(start, start + ch.len_utf8()),
                    self.src,
                ))
            }
        }
    }

    fn lex_ident(&mut self, _start: usize) {
        while let Some(b) = self.peek_byte() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, ParseError> {
        if self.peek_byte() == Some(b'-') {
            self.pos += 1;
            if !matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar('-'),
                    Span::new(start, start + 1),
                    self.src,
                ));
            }
        }
        while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // Fractional part — but only when the dot is followed by a digit, so
        // `p(1).` lexes the dot as the clause terminator.
        if self.peek_byte() == Some(b'.') && matches!(self.peek_byte_at(1), Some(b'0'..=b'9')) {
            self.pos += 1;
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(Token {
            kind: TokenKind::Number,
            span: Span::new(start, self.pos),
        })
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, ParseError> {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek_byte() {
            self.pos += 1;
            if b == b'"' {
                return Ok(Token {
                    kind: TokenKind::Str,
                    span: Span::new(start, self.pos),
                });
            }
            if b == b'\n' {
                break;
            }
        }
        Err(ParseError::new(
            ParseErrorKind::UnterminatedString,
            Span::new(start, self.pos),
            self.src,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_clause_punctuation() {
        assert_eq!(
            kinds("p(X) :- q(X)."),
            vec![
                TokenKind::LowerIdent,
                TokenKind::LParen,
                TokenKind::UpperIdent,
                TokenKind::RParen,
                TokenKind::Implies,
                TokenKind::LowerIdent,
                TokenKind::LParen,
                TokenKind::UpperIdent,
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn number_dot_disambiguation() {
        // `0.8::` → Number("0.8") ColonColon; `p(1).` → the final dot is Dot.
        assert_eq!(
            kinds("0.8::p(1)."),
            vec![
                TokenKind::Number,
                TokenKind::ColonColon,
                TokenKind::LowerIdent,
                TokenKind::LParen,
                TokenKind::Number,
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds(r"= != \= < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(kinds("-12"), vec![TokenKind::Number, TokenKind::Eof]);
        assert_eq!(kinds("-0.5"), vec![TokenKind::Number, TokenKind::Eof]);
    }

    #[test]
    fn strings_and_unterminated_string() {
        assert_eq!(
            kinds(r#""hello world""#),
            vec![TokenKind::Str, TokenKind::Eof]
        );
        assert!(Lexer::new("\"oops").tokenize().is_err());
        assert!(Lexer::new("\"oops\nmore").tokenize().is_err());
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        assert_eq!(kinds("% hi\n// there\np()."), kinds("p()."));
    }

    #[test]
    fn rejects_stray_characters() {
        let err = Lexer::new("p(#).").tokenize().unwrap_err();
        assert!(err.to_string().contains('#'));
    }
}
