//! Parse errors with source positions.

use super::lexer::Span;
use crate::diag::Diagnostic;
use std::error::Error;
use std::fmt;

/// What went wrong during parsing.
#[derive(Clone, PartialEq, Debug)]
pub enum ParseErrorKind {
    /// A character that begins no token.
    UnexpectedChar(char),
    /// A string literal with no closing quote before end of line/input.
    UnterminatedString,
    /// A token other than the expected one.
    Expected {
        /// What the grammar required here.
        expected: &'static str,
        /// What was actually found.
        found: &'static str,
    },
    /// A numeric literal that does not parse as the required type.
    BadNumber(String),
    /// A clause probability outside `[0, 1]`.
    ProbabilityOutOfRange(f64),
}

/// A parse error, annotated with the 1-based line and column where it
/// occurred.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// The error category and payload.
    pub kind: ParseErrorKind,
    /// Byte span in the source.
    pub span: Span,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub column: usize,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, span: Span, src: &str) -> Self {
        let (line, column) = position(src, span.start);
        Self {
            kind,
            span,
            line,
            column,
        }
    }

    /// The stable diagnostic code. Most parse failures are `P3001`; an
    /// out-of-range probability literal is the same defect the validator
    /// and linter call `P3301`, so it reports under that code.
    pub fn code(&self) -> &'static str {
        match self.kind {
            ParseErrorKind::ProbabilityOutOfRange(_) => "P3301",
            _ => "P3001",
        }
    }

    /// Converts to the shared [`Diagnostic`] structure, keeping the
    /// already-resolved line and column.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let mut d = Diagnostic::error(self.code(), self.describe()).with_span(Some(self.span));
        d.line = self.line;
        d.column = self.column;
        d
    }

    /// The message text without the location prefix.
    fn describe(&self) -> String {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => format!("unexpected character '{c}'"),
            ParseErrorKind::UnterminatedString => "unterminated string literal".to_string(),
            ParseErrorKind::Expected { expected, found } => {
                format!("expected {expected}, found {found}")
            }
            ParseErrorKind::BadNumber(text) => format!("malformed number '{text}'"),
            ParseErrorKind::ProbabilityOutOfRange(p) => {
                format!("probability {p} is outside [0, 1]")
            }
        }
    }
}

/// Computes the 1-based (line, column) of byte `offset` in `src`.
fn position(src: &str, offset: usize) -> (usize, usize) {
    crate::diag::line_col(src, offset)
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line,
            self.column,
            self.describe()
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_counts_lines_and_columns() {
        let src = "abc\ndef\nghi";
        assert_eq!(position(src, 0), (1, 1));
        assert_eq!(position(src, 2), (1, 3));
        assert_eq!(position(src, 4), (2, 1));
        assert_eq!(position(src, 9), (3, 2));
    }

    #[test]
    fn position_clamps_past_end() {
        assert_eq!(position("ab", 99), (1, 3));
    }

    #[test]
    fn display_mentions_location() {
        let err = ParseError::new(
            ParseErrorKind::UnexpectedChar('#'),
            Span::new(4, 5),
            "abc\n#",
        );
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains('#'), "{msg}");
    }
}
