//! Parser for the ProbLog-like surface syntax.
//!
//! Two clause spellings are accepted, and may be mixed within one source
//! file:
//!
//! * the paper's labelled form — `r1 0.8: head :- body.` and
//!   `t4 0.4: like("Steve","Veggies").`
//! * ProbLog's form — `0.8::head :- body.` and `0.4::like(...).`
//!
//! A clause without a probability annotation (`head :- body.` or `fact.`)
//! is deterministic (probability 1.0). Unlabelled clauses receive generated
//! labels: `r<i>` for rules, `t<i>` for facts, numbered in source order.
//!
//! Comments run from `%` or `//` to end of line. Variables begin with an
//! uppercase letter or `_`; identifiers beginning with a lowercase letter
//! and quoted strings are symbol constants; signed decimal integers are
//! integer constants.

mod error;
mod lexer;

pub use error::{ParseError, ParseErrorKind};
pub use lexer::{Lexer, Span, Token, TokenKind};

use crate::ast::{Atom, Clause, ClauseKind, CmpOp, Const, Constraint, Term};
use crate::symbol::SymbolTable;

/// Source locations of one clause's parts, parallel to the AST (which
/// itself stays span-free so programmatic construction and comparison
/// remain cheap). Index `i` of [`ParsedSource::spans`] describes clause
/// `i` of [`ParsedSource::clauses`].
#[derive(Clone, Debug, Default)]
pub struct ClauseSpans {
    /// The whole clause, from the label/probability prefix through the
    /// final `.`.
    pub clause: Span,
    /// The probability literal, when the clause spells one.
    pub prob: Option<Span>,
    /// The head atom.
    pub head: Span,
    /// Positive body atoms, in source order.
    pub body: Vec<Span>,
    /// Negated body atoms (including the `\+`/`not` marker), in order.
    pub negated: Vec<Span>,
    /// Body constraints, in order.
    pub constraints: Vec<Span>,
}

/// A parsed source file: clauses plus the symbol table that interned their
/// identifiers.
#[derive(Debug)]
pub struct ParsedSource {
    /// The clauses in source order.
    pub clauses: Vec<Clause>,
    /// Interner for all identifiers, strings and variables.
    pub symbols: SymbolTable,
    /// Byte spans of each clause's parts, parallel to `clauses`.
    pub spans: Vec<ClauseSpans>,
}

/// Parses ProbLog-like source text.
pub fn parse(src: &str) -> Result<ParsedSource, ParseError> {
    let mut symbols = SymbolTable::new();
    let parsed = Parser::new(src, &mut symbols)?.parse_program()?;
    let (clauses, spans) = parsed.into_iter().unzip();
    Ok(ParsedSource {
        clauses,
        symbols,
        spans,
    })
}

/// Parses source text, interning into a caller-provided symbol table. Used
/// when multiple sources must share one namespace.
pub fn parse_into(src: &str, symbols: &mut SymbolTable) -> Result<Vec<Clause>, ParseError> {
    let parsed = Parser::new(src, symbols)?.parse_program()?;
    Ok(parsed.into_iter().map(|(clause, _)| clause).collect())
}

/// The three body element kinds: positive atoms, negated atoms, constraints.
type ParsedBody = (Vec<Atom>, Vec<Atom>, Vec<Constraint>);

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    src: &'a str,
    symbols: &'a mut SymbolTable,
    rule_counter: usize,
    fact_counter: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, symbols: &'a mut SymbolTable) -> Result<Self, ParseError> {
        let tokens = Lexer::new(src).tokenize()?;
        Ok(Self {
            tokens,
            pos: 0,
            src,
            symbols,
            rule_counter: 0,
            fact_counter: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn text(&self, span: Span) -> &str {
        &self.src[span.start..span.end]
    }

    fn error(&self, kind: ParseErrorKind, span: Span) -> ParseError {
        ParseError::new(kind, span, self.src)
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        let t = self.peek().clone();
        if t.kind == kind {
            Ok(self.advance())
        } else {
            Err(self.error(
                ParseErrorKind::Expected {
                    expected: kind.describe(),
                    found: t.kind.describe(),
                },
                t.span,
            ))
        }
    }

    fn parse_program(&mut self) -> Result<Vec<(Clause, ClauseSpans)>, ParseError> {
        let mut clauses = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            clauses.push(self.parse_clause()?);
        }
        Ok(clauses)
    }

    /// Parses one clause in either spelling.
    fn parse_clause(&mut self) -> Result<(Clause, ClauseSpans), ParseError> {
        let start = self.peek().span;
        let mut spans = ClauseSpans::default();
        let (label, prob, prob_span) = self.parse_clause_prefix()?;
        spans.prob = prob_span;
        let (head, head_span) = self.parse_atom()?;
        spans.head = head_span;
        let kind = if self.peek().kind == TokenKind::Implies {
            self.advance();
            let (body, negated, constraints) = self.parse_body(&mut spans)?;
            ClauseKind::Rule {
                body,
                negated,
                constraints,
            }
        } else {
            ClauseKind::Fact
        };
        let dot = self.expect(TokenKind::Dot)?;
        spans.clause = start.to(dot.span);
        let label = label.unwrap_or_else(|| match kind {
            ClauseKind::Fact => {
                self.fact_counter += 1;
                format!("t{}", self.fact_counter)
            }
            ClauseKind::Rule { .. } => {
                self.rule_counter += 1;
                format!("r{}", self.rule_counter)
            }
        });
        Ok((
            Clause {
                label,
                prob,
                head,
                kind,
            },
            spans,
        ))
    }

    /// Parses the optional `label prob:` or `prob::` prefix, returning the
    /// explicit label (if any), the probability (1.0 when omitted), and the
    /// span of the probability literal (when one was written).
    fn parse_clause_prefix(&mut self) -> Result<(Option<String>, f64, Option<Span>), ParseError> {
        // `prob :: head` — ProbLog spelling.
        if self.peek().kind == TokenKind::Number && self.peek2().kind == TokenKind::ColonColon {
            let num = self.advance();
            let num_span = num.span;
            self.advance(); // '::'
            let prob = self.parse_probability(num)?;
            return Ok((None, prob, Some(num_span)));
        }
        // `label prob : head` — the paper's spelling. Requires ident followed
        // by a number to disambiguate from a clause head `ident(...)`.
        if self.peek().kind == TokenKind::LowerIdent && self.peek2().kind == TokenKind::Number {
            let label_tok = self.advance();
            let label = self.text(label_tok.span).to_string();
            let num = self.advance();
            let num_span = num.span;
            let prob = self.parse_probability(num)?;
            self.expect(TokenKind::Colon)?;
            return Ok((Some(label), prob, Some(num_span)));
        }
        Ok((None, 1.0, None))
    }

    fn parse_probability(&self, tok: Token) -> Result<f64, ParseError> {
        let text = self.text(tok.span);
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(ParseErrorKind::BadNumber(text.to_string()), tok.span))?;
        if !(0.0..=1.0).contains(&value) {
            return Err(self.error(ParseErrorKind::ProbabilityOutOfRange(value), tok.span));
        }
        Ok(value)
    }

    /// Parses a comma-separated rule body of atoms, negated atoms and
    /// constraints, recording each element's span into `spans`.
    fn parse_body(&mut self, spans: &mut ClauseSpans) -> Result<ParsedBody, ParseError> {
        let mut body = Vec::new();
        let mut negated = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.starts_negation() {
                let marker = self.advance(); // `\+` or `not`
                let (atom, span) = self.parse_atom()?;
                spans.negated.push(marker.span.to(span));
                negated.push(atom);
            } else if self.starts_constraint() {
                let (constraint, span) = self.parse_constraint()?;
                spans.constraints.push(span);
                constraints.push(constraint);
            } else {
                let (atom, span) = self.parse_atom()?;
                spans.body.push(span);
                body.push(atom);
            }
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        Ok((body, negated, constraints))
    }

    /// A negated body element starts with `\+` or with the keyword `not`
    /// followed by an atom (distinguished from an atom *named* `not` by the
    /// absence of an immediately following `(`).
    fn starts_negation(&self) -> bool {
        if self.peek().kind == TokenKind::NotSign {
            return true;
        }
        self.peek().kind == TokenKind::LowerIdent
            && &self.src[self.peek().span.start..self.peek().span.end] == "not"
            && self.peek2().kind == TokenKind::LowerIdent
    }

    /// A body element is a constraint when a term is followed by a comparison
    /// operator rather than `(`.
    fn starts_constraint(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::UpperIdent | TokenKind::Number | TokenKind::Str | TokenKind::LowerIdent
        ) && matches!(
            self.peek2().kind,
            TokenKind::Eq
                | TokenKind::Ne
                | TokenKind::Lt
                | TokenKind::Le
                | TokenKind::Gt
                | TokenKind::Ge
        )
    }

    fn parse_constraint(&mut self) -> Result<(Constraint, Span), ParseError> {
        let (lhs, lhs_span) = self.parse_term()?;
        let op_tok = self.advance();
        let op = match op_tok.kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error(
                    ParseErrorKind::Expected {
                        expected: "comparison operator",
                        found: other.describe(),
                    },
                    op_tok.span,
                ))
            }
        };
        let (rhs, rhs_span) = self.parse_term()?;
        Ok((Constraint { op, lhs, rhs }, lhs_span.to(rhs_span)))
    }

    fn parse_atom(&mut self) -> Result<(Atom, Span), ParseError> {
        let name_tok = self.expect(TokenKind::LowerIdent)?;
        let pred = self
            .symbols
            .intern(&self.src[name_tok.span.start..name_tok.span.end]);
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.parse_term()?.0);
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let rparen = self.expect(TokenKind::RParen)?;
        Ok((Atom { pred, args }, name_tok.span.to(rparen.span)))
    }

    fn parse_term(&mut self) -> Result<(Term, Span), ParseError> {
        let tok = self.advance();
        let term = match tok.kind {
            TokenKind::UpperIdent => {
                let name = &self.src[tok.span.start..tok.span.end];
                Term::Var(self.symbols.intern(name))
            }
            TokenKind::LowerIdent => {
                let name = &self.src[tok.span.start..tok.span.end];
                Term::Const(Const::Sym(self.symbols.intern(name)))
            }
            TokenKind::Str => {
                // Strip the surrounding quotes; the lexer guarantees them.
                let raw = &self.src[tok.span.start..tok.span.end];
                let inner = &raw[1..raw.len() - 1];
                Term::Const(Const::Sym(self.symbols.intern(inner)))
            }
            TokenKind::Number => {
                let text = self.text(tok.span);
                let value: i64 = text.parse().map_err(|_| {
                    self.error(ParseErrorKind::BadNumber(text.to_string()), tok.span)
                })?;
                Term::Const(Const::Int(value))
            }
            other => {
                return Err(self.error(
                    ParseErrorKind::Expected {
                        expected: "term",
                        found: other.describe(),
                    },
                    tok.span,
                ))
            }
        };
        Ok((term, tok.span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ClauseKind;

    #[test]
    fn parses_paper_style_fact() {
        let p = parse(r#"t4 0.4: like("Steve","Veggies")."#).unwrap();
        assert_eq!(p.clauses.len(), 1);
        let c = &p.clauses[0];
        assert_eq!(c.label, "t4");
        assert!((c.prob - 0.4).abs() < 1e-12);
        assert!(c.is_fact());
        assert!(c.head.is_ground());
    }

    #[test]
    fn parses_problog_style_fact() {
        let p = parse(r#"0.4::like("Steve","Veggies")."#).unwrap();
        let c = &p.clauses[0];
        assert_eq!(c.label, "t1");
        assert!((c.prob - 0.4).abs() < 1e-12);
    }

    #[test]
    fn parses_deterministic_clause_without_annotation() {
        let p = parse("edge(a,b). path(X,Y) :- edge(X,Y).").unwrap();
        assert_eq!(p.clauses.len(), 2);
        assert_eq!(p.clauses[0].prob, 1.0);
        assert_eq!(p.clauses[0].label, "t1");
        assert_eq!(p.clauses[1].label, "r1");
        assert!(p.clauses[1].is_rule());
    }

    #[test]
    fn parses_rule_with_constraint() {
        let p = parse("r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.").unwrap();
        let c = &p.clauses[0];
        match &c.kind {
            ClauseKind::Rule {
                body, constraints, ..
            } => {
                assert_eq!(body.len(), 2);
                assert_eq!(constraints.len(), 1);
                assert_eq!(constraints[0].op, CmpOp::Ne);
            }
            _ => panic!("expected rule"),
        }
    }

    #[test]
    fn parses_backslash_eq_as_ne() {
        let p = parse(r"r2 1.0: q(X,Y) :- p(X), p(Y), X \= Y.").unwrap();
        assert_eq!(p.clauses[0].constraints()[0].op, CmpOp::Ne);
    }

    #[test]
    fn parses_integer_arguments_and_comparisons() {
        let p = parse("r1 1.0: big(X) :- num(X), X >= 10. num(3). num(-5). num(42).").unwrap();
        assert_eq!(p.clauses.len(), 4);
        let c = &p.clauses[2];
        assert_eq!(c.head.args[0].as_const(), Some(Const::Int(-5)));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "% a comment\n// another\nedge(a,b). % trailing\n";
        let p = parse(src).unwrap();
        assert_eq!(p.clauses.len(), 1);
    }

    #[test]
    fn rejects_probability_out_of_range() {
        let err = parse("r1 1.5: p(a) :- q(a).").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::ProbabilityOutOfRange(_)),
            "{err}"
        );
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse("edge(a,b)").unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = parse(r#"edge("a,b)."#).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UnterminatedString),
            "{err}"
        );
    }

    #[test]
    fn distinguishes_variables_from_symbols() {
        let p = parse("r1 1.0: p(X,y,_Z) :- q(X,y,_Z).").unwrap();
        let head = &p.clauses[0].head;
        assert!(matches!(head.args[0], Term::Var(_)));
        assert!(matches!(head.args[1], Term::Const(_)));
        assert!(matches!(head.args[2], Term::Var(_)));
    }

    #[test]
    fn zero_arity_atoms_parse() {
        let p = parse("r1 0.3: ok() :- go().  go().").unwrap();
        assert_eq!(p.clauses[0].head.args.len(), 0);
    }

    #[test]
    fn error_carries_line_and_column() {
        let err = parse("edge(a,b).\nedge(a,.\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn clause_spans_point_into_the_source() {
        let src = "t1 0.5: live(\"Steve\",\"DC\").\nr1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.";
        let p = parse(src).unwrap();
        assert_eq!(p.spans.len(), 2);
        let fact = &p.spans[0];
        let slice = |s: Span| &src[s.start..s.end];
        assert_eq!(slice(fact.clause), "t1 0.5: live(\"Steve\",\"DC\").");
        assert_eq!(slice(fact.head), "live(\"Steve\",\"DC\")");
        assert_eq!(slice(fact.prob.unwrap()), "0.5");
        let rule = &p.spans[1];
        assert_eq!(rule.body.len(), 2);
        assert_eq!(slice(rule.body[0]), "live(P1,C)");
        assert_eq!(slice(rule.body[1]), "live(P2,C)");
        assert_eq!(rule.constraints.len(), 1);
        assert_eq!(slice(rule.constraints[0]), "P1 != P2");
        assert_eq!(slice(rule.head), "know(P1,P2)");
    }

    #[test]
    fn negated_atom_span_includes_the_marker() {
        let src = r"r1 1.0: p(X) :- q(X), \+ r(X).";
        let p = parse(src).unwrap();
        let spans = &p.spans[0];
        assert_eq!(spans.negated.len(), 1);
        let neg = spans.negated[0];
        assert_eq!(&src[neg.start..neg.end], r"\+ r(X)");
    }

    #[test]
    fn multi_line_error_reports_line_and_column() {
        // Regression: errors past line 1 must resolve to line:column, not
        // surface as a bare byte offset.
        let src = "% header comment\nedge(a,b).\npath(X,Y) :-\n    edge(X,).\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 4);
        assert_eq!(err.column, 12);
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("column 12"), "{msg}");
        assert!(!msg.contains("offset"), "{msg}");
    }

    #[test]
    fn display_round_trip() {
        let src = r#"r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
t1 1.0: live("Steve","DC")."#;
        let p = parse(src).unwrap();
        let rendered: Vec<String> = p
            .clauses
            .iter()
            .map(|c| format!("{}", c.display(&p.symbols)))
            .collect();
        let reparsed = parse(&rendered.join("\n")).unwrap();
        assert_eq!(p.clauses.len(), reparsed.clauses.len());
        for (a, b) in p.clauses.iter().zip(reparsed.clauses.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.prob, b.prob);
            assert_eq!(a.body().len(), b.body().len());
        }
    }
}
