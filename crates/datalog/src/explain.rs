//! The EXPLAIN plane's engine-side data model: per-rule evaluation cost
//! attributed to *source program* structure.
//!
//! [`Engine::run`](crate::engine::Engine::run) accumulates raw
//! [`RuleStats`] per compiled rule. This module turns those rows into an
//! [`ExplainPlan`]: labelled, ranked per-clause costs plus run-level shape
//! (per-iteration delta sizes, per-stratum counters). Under demand
//! evaluation the engine runs a magic-transformed program, so
//! [`ExplainPlan::project_demand`] folds each adorned variant's cost back
//! onto the source clause it came from via
//! [`DemandProgram::original_clause`]; magic rules and the seed fact — pure
//! transformation overhead with no source clause — aggregate into one
//! [`MagicCost`] bucket so their work stays visible instead of vanishing.

use crate::ast::ClauseId;
use crate::engine::{Engine, EngineStats, RuleStats, StratumStats};
use crate::program::Program;
use crate::transform::DemandProgram;
use std::collections::HashMap;

/// How many rules (ranked by cost) each plan contributes to the
/// `p3_engine_rule_*` metric families — the label-cardinality cap.
pub const METRIC_TOP_RULES: usize = 10;

/// Evaluation cost attributed to one source clause, ready for display.
#[derive(Clone, Debug)]
pub struct RuleCost {
    /// The source clause, when the row maps to one.
    pub clause: Option<ClauseId>,
    /// The source clause's label (e.g. `r2`).
    pub label: String,
    /// The head predicate's name.
    pub head: String,
    /// Whether the rule is directly recursive (head predicate appears in
    /// its own positive body).
    pub recursive: bool,
    /// Rule firings, including re-derivations.
    pub firings: u64,
    /// Head inserts that created a previously unknown tuple.
    pub new_tuples: u64,
    /// Join fan-out: candidate tuples scanned across all body probes.
    pub candidates: u64,
    /// Fixpoint iterations in which the rule did any join work (maximum
    /// across adorned variants under demand).
    pub iterations: u64,
    /// Body positions probed through a planned column index, summed across
    /// adorned variants.
    pub indexed_probes: u32,
    /// Body positions scanned without an index, summed across variants.
    pub scanned_probes: u32,
    /// Adorned rule variants folded into this row (1 under naive).
    pub variants: u32,
}

impl RuleCost {
    /// The ranking cost: join fan-out plus firing and insert work.
    pub fn cost(&self) -> u64 {
        self.candidates + self.firings + self.new_tuples
    }
}

/// Aggregate cost of the demand transformation's internal clauses (magic
/// rules and the seed fact) — overhead the source program never pays under
/// naive evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct MagicCost {
    /// Magic rules (and seed facts) that contributed.
    pub rules: usize,
    /// Their rule firings.
    pub firings: u64,
    /// Magic tuples they derived.
    pub new_tuples: u64,
    /// Candidate tuples their joins scanned.
    pub candidates: u64,
}

impl MagicCost {
    /// The same ranking cost as [`RuleCost::cost`].
    pub fn cost(&self) -> u64 {
        self.candidates + self.firings + self.new_tuples
    }
}

/// One evaluation's cost, attributed to program structure.
#[derive(Clone, Debug)]
pub struct ExplainPlan {
    /// Evaluation mode that produced the plan (`naive`/`demand`).
    pub mode: &'static str,
    /// Run-level counters (iterations, firings, fixpoint size).
    pub stats: EngineStats,
    /// New tuples per semi-naive iteration, across strata in run order.
    pub deltas: Vec<u32>,
    /// Per-stratum counters, in stratum order.
    pub strata: Vec<StratumStats>,
    /// Per-source-clause costs, sorted by descending cost (label ascending
    /// as the tiebreak).
    pub rules: Vec<RuleCost>,
    /// Demand-transformation overhead; `None` under naive evaluation.
    pub magic: Option<MagicCost>,
}

impl ExplainPlan {
    /// Total ranking cost across rules and the magic bucket.
    pub fn total_cost(&self) -> u64 {
        self.rules.iter().map(RuleCost::cost).sum::<u64>() + self.magic.map_or(0, |m| m.cost())
    }

    /// Builds a plan from a naive run: compiled rules map one-to-one onto
    /// source clauses.
    pub fn from_engine(engine: &Engine<'_>) -> ExplainPlan {
        let program = engine.program();
        let mut rules: Vec<RuleCost> = engine
            .rule_stats()
            .iter()
            .map(|rs| rule_cost(program, rs.clause, rs))
            .collect();
        sort_rules(&mut rules);
        ExplainPlan {
            mode: engine.mode_label(),
            stats: engine.stats(),
            deltas: engine.deltas().to_vec(),
            strata: engine.stratum_stats().to_vec(),
            rules,
            magic: None,
        }
    }

    /// Builds a plan from a demand run: each adorned variant's cost folds
    /// onto the source clause it was derived from, and transformation-
    /// internal clauses aggregate into the magic bucket.
    pub fn project_demand(
        engine: &Engine<'_>,
        dp: &DemandProgram,
        source: &Program,
    ) -> ExplainPlan {
        let mut by_source: HashMap<ClauseId, RuleCost> = HashMap::new();
        let mut order: Vec<ClauseId> = Vec::new();
        let mut magic = MagicCost::default();
        for rs in engine.rule_stats() {
            match dp.original_clause(rs.clause) {
                Some(src) => {
                    let entry = by_source.entry(src).or_insert_with(|| {
                        order.push(src);
                        let mut zero = rule_cost(source, src, rs);
                        zero.firings = 0;
                        zero.new_tuples = 0;
                        zero.candidates = 0;
                        zero.iterations = 0;
                        zero.indexed_probes = 0;
                        zero.scanned_probes = 0;
                        zero.variants = 0;
                        zero
                    });
                    entry.firings += rs.firings;
                    entry.new_tuples += rs.new_tuples;
                    entry.candidates += rs.candidates;
                    entry.iterations = entry.iterations.max(rs.iterations);
                    entry.indexed_probes += rs.indexed_probes;
                    entry.scanned_probes += rs.scanned_probes;
                    entry.variants += 1;
                }
                None => {
                    magic.rules += 1;
                    magic.firings += rs.firings;
                    magic.new_tuples += rs.new_tuples;
                    magic.candidates += rs.candidates;
                }
            }
        }
        let mut rules: Vec<RuleCost> = order
            .into_iter()
            .map(|src| by_source.remove(&src).expect("ordered key present"))
            .collect();
        sort_rules(&mut rules);
        ExplainPlan {
            mode: engine.mode_label(),
            stats: engine.stats(),
            deltas: engine.deltas().to_vec(),
            strata: engine.stratum_stats().to_vec(),
            rules,
            magic: Some(magic),
        }
    }
}

/// Caps a rule label for use as a Prometheus label value: long or hostile
/// clause labels must not explode the exposition. Truncation happens on a
/// char boundary; escaping is [`render_labels`]'s job downstream.
///
/// [`render_labels`]: p3_obs::metrics::render_labels
pub fn metric_rule_label(label: &str) -> &str {
    p3_obs::metrics::cap_label_value(label, 48)
}

/// Publishes the `p3_engine_rule_*` counter families for the `top_n`
/// costliest rules of one plan. Capping to top-N bounds label cardinality:
/// a program with thousands of rules contributes at most `top_n` label
/// sets per mode, and label values are capped by [`metric_rule_label`].
pub fn publish_rule_metrics(plan: &ExplainPlan, top_n: usize) {
    for rule in plan.rules.iter().take(top_n) {
        let labels = p3_obs::metrics::render_labels(&[
            ("rule", metric_rule_label(&rule.label)),
            ("mode", plan.mode),
        ]);
        p3_obs::metrics::labeled_counter(
            "p3_engine_rule_firings_total",
            "Rule firings attributed to source clauses (top rules by cost)",
            &labels,
        )
        .add(rule.firings);
        p3_obs::metrics::labeled_counter(
            "p3_engine_rule_tuples_total",
            "New tuples attributed to source clauses (top rules by cost)",
            &labels,
        )
        .add(rule.new_tuples);
        p3_obs::metrics::labeled_counter(
            "p3_engine_rule_candidates_total",
            "Join candidates scanned, attributed to source clauses (top rules by cost)",
            &labels,
        )
        .add(rule.candidates);
    }
}

fn rule_cost(program: &Program, clause: ClauseId, rs: &RuleStats) -> RuleCost {
    let c = program.clause(clause);
    let head_pred = c.head.pred;
    RuleCost {
        clause: Some(clause),
        label: c.label.clone(),
        head: program.symbols().resolve(head_pred).to_string(),
        recursive: c.body().iter().any(|a| a.pred == head_pred),
        firings: rs.firings,
        new_tuples: rs.new_tuples,
        candidates: rs.candidates,
        iterations: rs.iterations,
        indexed_probes: rs.indexed_probes,
        scanned_probes: rs.scanned_probes,
        variants: 1,
    }
}

fn sort_rules(rules: &mut [RuleCost]) {
    rules.sort_by(|a, b| b.cost().cmp(&a.cost()).then_with(|| a.label.cmp(&b.label)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::transform::magic_transform;
    use std::sync::Mutex;

    /// Serialises tests that observe or flip the process-global collection
    /// toggle; `.unwrap_or_else` keeps going past another test's panic.
    static TOGGLE: Mutex<()> = Mutex::new(());

    const TC: &str = "r1 1.0: path(X,Y) :- edge(X,Y).
         r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
         edge(1,2). edge(2,3). edge(3,4). edge(4,5).";

    #[test]
    fn naive_plan_ranks_the_recursive_rule_first() {
        let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        let p = Program::parse(TC).unwrap();
        let mut e = Engine::new(&p);
        e.run_plain();
        let plan = ExplainPlan::from_engine(&e);
        assert_eq!(plan.mode, "naive");
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].label, "r2", "{:?}", plan.rules);
        assert!(plan.rules[0].recursive);
        assert!(!plan.rules[1].recursive);
        assert!(plan.rules[0].cost() > plan.rules[1].cost());
        assert_eq!(
            plan.rules.iter().map(|r| r.firings).sum::<u64>(),
            plan.stats.firings as u64
        );
        assert!(!plan.deltas.is_empty());
        assert_eq!(
            plan.deltas.iter().map(|&d| u64::from(d)).sum::<u64>(),
            plan.stats.tuples as u64,
            "delta sizes account for every tuple"
        );
        assert!(plan.magic.is_none());
    }

    #[test]
    fn demand_plan_projects_onto_source_clauses() {
        let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        let p = Program::parse(TC).unwrap();
        let path = p.symbols().get("path").unwrap();
        let one = crate::ast::Const::Int(1);
        let five = crate::ast::Const::Int(5);
        let dp = magic_transform(&p, path, &[one, five]).unwrap();
        let mut e = Engine::new(&dp.program);
        e.set_mode_label("demand");
        e.run_plain();
        let plan = ExplainPlan::project_demand(&e, &dp, &p);
        assert_eq!(plan.mode, "demand");
        // Every row is a source clause; magic work is in the bucket.
        for rule in &plan.rules {
            assert!(["r1", "r2"].contains(&rule.label.as_str()), "{rule:?}");
        }
        let magic = plan.magic.expect("demand plans carry a magic bucket");
        assert!(magic.rules > 0);
        assert!(
            magic.new_tuples > 0,
            "magic seed/propagation derives tuples"
        );
        // The recursive source rule still dominates.
        assert_eq!(plan.rules[0].label, "r2", "{:?}", plan.rules);
        assert!(plan.rules[0].variants >= 1);
    }

    #[test]
    fn disabled_collection_yields_empty_rows() {
        let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        let p = Program::parse(TC).unwrap();
        crate::engine::set_rule_stat_collection(false);
        let mut e = Engine::new(&p);
        e.run_plain();
        crate::engine::set_rule_stat_collection(true);
        let plan = ExplainPlan::from_engine(&e);
        assert!(plan.deltas.is_empty());
        assert!(plan.rules.iter().all(|r| r.cost() == 0));
        // Run-level stats still populate: only attribution is gated.
        assert!(plan.stats.firings > 0);
    }

    #[test]
    fn metric_rule_label_caps_length_on_char_boundaries() {
        assert_eq!(metric_rule_label("r2"), "r2");
        let long = "x".repeat(200);
        assert_eq!(metric_rule_label(&long).len(), 48);
        let multi = format!("{}é", "x".repeat(47));
        let capped = metric_rule_label(&multi);
        assert!(capped.len() <= 48);
        assert!(multi.starts_with(capped));
    }
}
