//! The shared diagnostic type: every static finding about a program —
//! parse errors, validation errors, lint findings — renders through this
//! one structure.
//!
//! A [`Diagnostic`] carries a stable `P3xxx` code, a [`Severity`], a
//! human message, and (when the program came from source text) a byte
//! [`Span`] resolved to a 1-based line and column. Two renderings are
//! provided: [`Diagnostic::render`] produces rustc-style text with the
//! offending source line and a caret underline, and
//! [`Diagnostic::to_json`] produces a machine-readable object for the
//! service protocol and `p3 lint --json`.

use crate::parser::Span;
use std::fmt;

/// How serious a finding is.
///
/// Ordered so that `Info < Warn < Error` — `report.worst() >=
/// Severity::Error` is the gate condition used by the CLI, CI, and the
/// session pre-flight check.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory only (cost estimates, style).
    Info,
    /// Suspicious but evaluable (dead rules, typos, degenerate labels).
    Warn,
    /// The program is rejected (unsafe, unstratified, malformed).
    Error,
}

impl Severity {
    /// Lowercase name used in text rendering and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One static finding about a program.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `"P3101"` (see `DESIGN.md` §10 for the table).
    pub code: &'static str,
    /// Error / warning / info.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Byte range in the source, when the program came from text.
    pub span: Option<Span>,
    /// 1-based line of `span.start`; 0 when unknown.
    pub line: usize,
    /// 1-based column of `span.start`; 0 when unknown.
    pub column: usize,
    /// Label of the clause the finding is about, when there is one.
    pub clause: Option<String>,
    /// Optional suggestion appended as a `= help:` note.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no location; attach one with [`Self::with_span`].
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            message: message.into(),
            span: None,
            line: 0,
            column: 0,
            clause: None,
            help: None,
        }
    }

    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message)
    }

    /// A warning-severity diagnostic.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warn, message)
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Info, message)
    }

    /// Attaches a source span (no-op for `None`).
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Records which clause the finding is about.
    pub fn with_clause(mut self, label: impl Into<String>) -> Self {
        self.clause = Some(label.into());
        self
    }

    /// Adds a `= help:` suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Resolves the span to a 1-based line and column against `src`.
    pub fn locate(mut self, src: &str) -> Self {
        if let Some(span) = self.span {
            let (line, column) = line_col(src, span.start);
            self.line = line;
            self.column = column;
        }
        self
    }

    /// Rustc-style text rendering. With `src`, the offending line is
    /// quoted with a caret underline; `path` names the file in the
    /// `-->` locus line.
    pub fn render(&self, src: Option<&str>, path: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        let Some(span) = self.span else {
            if let Some(clause) = &self.clause {
                out.push_str(&format!("\n  = note: in clause '{clause}'"));
            }
            if let Some(help) = &self.help {
                out.push_str(&format!("\n  = help: {help}"));
            }
            return out;
        };
        let (line, column) = match src {
            Some(src) => line_col(src, span.start),
            None => (self.line, self.column),
        };
        if line > 0 {
            let file = path.unwrap_or("<program>");
            out.push_str(&format!("\n  --> {file}:{line}:{column}"));
        }
        if let Some(src) = src {
            if let Some(text) = src.lines().nth(line.saturating_sub(1)) {
                let gutter = line.to_string();
                let pad = " ".repeat(gutter.len());
                // Caret width: the span clipped to the quoted line.
                let width = (span.end - span.start)
                    .min(text.chars().count().saturating_sub(column - 1))
                    .max(1);
                out.push_str(&format!("\n {pad} |\n {gutter} | {text}"));
                out.push_str(&format!(
                    "\n {pad} | {}{}",
                    " ".repeat(column - 1),
                    "^".repeat(width)
                ));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n  = help: {help}"));
        }
        out
    }

    /// Machine-readable JSON object (one diagnostic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        if let Some(span) = self.span {
            out.push_str(&format!(
                ",\"span\":{{\"start\":{},\"end\":{}}}",
                span.start, span.end
            ));
        }
        if self.line > 0 {
            out.push_str(&format!(
                ",\"line\":{},\"column\":{}",
                self.line, self.column
            ));
        }
        if let Some(clause) = &self.clause {
            out.push_str(&format!(",\"clause\":{}", json_string(clause)));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!(",\"help\":{}", json_string(help)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if self.line > 0 {
            write!(f, " at line {}, column {}", self.line, self.column)?;
        }
        Ok(())
    }
}

/// Computes the 1-based (line, column) of byte `offset` in `src`.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= clamped {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Renders a JSON string literal with the escapes the grammar requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_lines_and_columns() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (1, 3));
        assert_eq!(line_col(src, 4), (2, 1));
        assert_eq!(line_col(src, 9), (3, 2));
        assert_eq!(line_col("ab", 99), (1, 3));
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn render_quotes_the_offending_line() {
        let src = "a(1).\nb(X) :- a(X), X != Z.\n";
        let span = Span::new(src.find('Z').unwrap(), src.find('Z').unwrap() + 1);
        let d = Diagnostic::error("P3101", "variable Z is unbound")
            .with_span(Some(span))
            .locate(src)
            .with_help("bind Z in a positive body atom");
        let text = d.render(Some(src), Some("prog.pl"));
        assert!(text.contains("error[P3101]"), "{text}");
        assert!(text.contains("--> prog.pl:2:"), "{text}");
        assert!(text.contains("b(X) :- a(X), X != Z."), "{text}");
        assert!(text.contains('^'), "{text}");
        assert!(text.contains("= help:"), "{text}");
    }

    #[test]
    fn render_without_span_still_mentions_clause() {
        let d = Diagnostic::warn("P3302", "probability 0").with_clause("t1");
        let text = d.render(None, None);
        assert!(text.contains("warning[P3302]"), "{text}");
        assert!(text.contains("in clause 't1'"), "{text}");
    }

    #[test]
    fn json_escapes_and_carries_location() {
        let d = Diagnostic::error("P3105", "used \"weird\"\narity")
            .with_span(Some(Span::new(3, 7)))
            .locate("abcdefgh")
            .with_clause("r1");
        let json = d.to_json();
        assert!(json.contains(r#""code":"P3105""#), "{json}");
        assert!(json.contains(r#""severity":"error""#), "{json}");
        assert!(json.contains(r#"\"weird\"\narity"#), "{json}");
        assert!(json.contains(r#""span":{"start":3,"end":7}"#), "{json}");
        assert!(json.contains(r#""line":1,"column":4"#), "{json}");
        assert!(json.contains(r#""clause":"r1""#), "{json}");
    }
}
