//! Brute-force possible-worlds semantics (Eq. 1–4 of the paper).
//!
//! A ProbLog program `T = {p1:c1, …, pn:cn}` defines a distribution over
//! subprograms `L ⊆ LT`: clause `ci` is present independently with
//! probability `pi`. The success probability of a ground query `q` is the
//! total probability mass of subprograms that derive `q`.
//!
//! This module computes that probability by *enumerating every world* and
//! running the fixpoint engine in each. It is exponential in the number of
//! uncertain clauses (those with `0 < p < 1`) and exists purely as the
//! semantic ground truth against which the provenance pipeline — extraction,
//! cycle elimination, DNF probability — is validated.

use crate::ast::{ClauseId, Const};
use crate::engine::{Engine, NoopSink};
use crate::program::{Program, ProgramError};
use crate::symbol::Symbol;

/// Upper bound on uncertain clauses accepted by [`success_probability`];
/// enumeration is `O(2^n)`.
pub const MAX_UNCERTAIN_CLAUSES: usize = 24;

/// Errors from the oracle evaluator.
#[derive(Debug)]
pub enum WorldsError {
    /// More than [`MAX_UNCERTAIN_CLAUSES`] clauses have `0 < p < 1`.
    TooManyUncertainClauses(usize),
    /// The query predicate or tuple shape is unknown to the program.
    UnknownQuery(String),
    /// Rebuilding a subprogram failed (cannot happen for validated input).
    Program(ProgramError),
}

impl std::fmt::Display for WorldsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldsError::TooManyUncertainClauses(n) => write!(
                f,
                "{n} uncertain clauses exceed the oracle limit of {MAX_UNCERTAIN_CLAUSES}"
            ),
            WorldsError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            WorldsError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorldsError {}

/// Computes `P(q | T)` by world enumeration for the ground atom
/// `pred(args…)`.
pub fn success_probability(
    program: &Program,
    pred: Symbol,
    args: &[Const],
) -> Result<f64, WorldsError> {
    let uncertain: Vec<ClauseId> = program
        .iter()
        .filter(|(_, c)| c.prob > 0.0 && c.prob < 1.0)
        .map(|(id, _)| id)
        .collect();
    if uncertain.len() > MAX_UNCERTAIN_CLAUSES {
        return Err(WorldsError::TooManyUncertainClauses(uncertain.len()));
    }

    let mut total = 0.0f64;
    for world in 0u64..(1u64 << uncertain.len()) {
        let mut weight = 1.0f64;
        for (bit, &id) in uncertain.iter().enumerate() {
            let p = program.clause(id).prob;
            if world & (1 << bit) != 0 {
                weight *= p;
            } else {
                weight *= 1.0 - p;
            }
        }
        if weight == 0.0 {
            continue;
        }
        if world_derives(program, &uncertain, world, pred, args)? {
            total += weight;
        }
    }
    Ok(total)
}

/// Convenience wrapper: the query is given as source text, e.g.
/// `know("Ben","Elena")`. The atom must be ground and use only symbols
/// already interned by the program (guaranteed when the tuple appears in the
/// program or its derivations).
pub fn success_probability_str(program: &Program, query: &str) -> Result<f64, WorldsError> {
    let (pred, args) = parse_ground_query(program, query)?;
    success_probability(program, pred, &args)
}

/// Parses `pred(const,…)` against the program's symbol table.
pub fn parse_ground_query(
    program: &Program,
    query: &str,
) -> Result<(Symbol, Vec<Const>), WorldsError> {
    let mut symbols = program.symbols().clone();
    let clauses =
        crate::parser::parse_into(&format!("{}.", query.trim_end_matches('.')), &mut symbols)
            .map_err(|e| WorldsError::UnknownQuery(format!("{query}: {e}")))?;
    let [clause] = clauses.as_slice() else {
        return Err(WorldsError::UnknownQuery(query.to_string()));
    };
    if !clause.is_fact() || !clause.head.is_ground() {
        return Err(WorldsError::UnknownQuery(format!(
            "{query}: not a ground atom"
        )));
    }
    // Reject queries that introduced brand-new symbols: they cannot denote a
    // derivable tuple, and their `Symbol`s would be dangling relative to the
    // program's own table.
    if symbols.len() != program.symbols().len() {
        return Err(WorldsError::UnknownQuery(format!(
            "{query}: mentions symbols absent from the program"
        )));
    }
    let args = clause
        .head
        .args
        .iter()
        .map(|t| t.as_const().expect("ground atom"))
        .collect();
    Ok((clause.head.pred, args))
}

/// Does the subprogram selected by `world` derive `pred(args…)`?
fn world_derives(
    program: &Program,
    uncertain: &[ClauseId],
    world: u64,
    pred: Symbol,
    args: &[Const],
) -> Result<bool, WorldsError> {
    let mut kept = Vec::with_capacity(program.len());
    'clauses: for (id, clause) in program.iter() {
        if clause.prob == 0.0 {
            continue;
        }
        for (bit, &uid) in uncertain.iter().enumerate() {
            if uid == id {
                if world & (1 << bit) == 0 {
                    continue 'clauses;
                }
                break;
            }
        }
        kept.push(clause.clone());
    }
    let sub =
        Program::from_clauses(kept, program.symbols().clone()).map_err(WorldsError::Program)?;
    let db = Engine::new(&sub).run(&mut NoopSink);
    Ok(db.lookup(pred, args).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    #[test]
    fn single_fact_probability() {
        let p = Program::parse("t1 0.3: p(a).").unwrap();
        let prob = success_probability_str(&p, "p(a)").unwrap();
        assert!((prob - 0.3).abs() < 1e-12);
    }

    #[test]
    fn independent_or() {
        // q(a) holds iff t1 or t2 present (both rules deterministic).
        let p = Program::parse(
            "r1 1.0: q(X) :- p1(X). r2 1.0: q(X) :- p2(X).
             t1 0.5: p1(a). t2 0.5: p2(a).",
        )
        .unwrap();
        let prob = success_probability_str(&p, "q(a)").unwrap();
        assert!((prob - 0.75).abs() < 1e-12);
    }

    #[test]
    fn conjunction_with_probabilistic_rule() {
        // q :- p1, p2 with rule prob 0.5: P = 0.5 * 0.4 * 0.6.
        let p = Program::parse(
            "r1 0.5: q(X) :- p1(X), p2(X).
             t1 0.4: p1(a). t2 0.6: p2(a).",
        )
        .unwrap();
        let prob = success_probability_str(&p, "q(a)").unwrap();
        assert!((prob - 0.12).abs() < 1e-12);
    }

    #[test]
    fn acquaintance_ben_knows_elena_exact() {
        // Exact value from the Fig 2 probabilities:
        //   λ = r3 · t6 · (r1·t1·t2 + r2·t4·t5), independent variables.
        //   P[r1 + r2·t4·t5] = 1 − 0.2·(1 − 0.4·0.4·0.6) = 0.8192
        //   P = 0.2 · 0.8192 = 0.16384.
        // (The paper reports ≈0.18; see EXPERIMENTS.md.)
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        let p = Program::parse(src).unwrap();
        let prob = success_probability_str(&p, r#"know("Ben","Elena")"#).unwrap();
        assert!((prob - 0.16384).abs() < 1e-9, "got {prob}");
    }

    #[test]
    fn cyclic_program_probability() {
        // Two-node cycle: a↔b plus source edge into a.
        // reach(b) needs e1 (0.5) and e2 (0.5): the cycle back-edge e3 is
        // irrelevant. P = 0.25.
        let p = Program::parse(
            "r1 1.0: reach(X) :- src(X).
             r2 1.0: reach(Y) :- reach(X), edge(X,Y).
             t0 1.0: src(a).
             e1 0.5: edge(a,b).
             e3 0.5: edge(b,a).",
        )
        .unwrap();
        let prob = success_probability_str(&p, "reach(b)").unwrap();
        assert!((prob - 0.5).abs() < 1e-12, "got {prob}");
    }

    #[test]
    fn query_for_unknown_symbol_is_rejected() {
        let p = Program::parse("t1 0.3: p(a).").unwrap();
        assert!(matches!(
            success_probability_str(&p, "p(zzz)"),
            Err(WorldsError::UnknownQuery(_))
        ));
    }

    #[test]
    fn zero_probability_clause_never_contributes() {
        let p = Program::parse("t1 0.0: p(a). t2 0.5: p(b).").unwrap();
        assert_eq!(success_probability_str(&p, "p(a)").unwrap(), 0.0);
        assert!((success_probability_str(&p, "p(b)").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_many_uncertain_clauses_is_an_error() {
        let mut src = String::new();
        for i in 0..MAX_UNCERTAIN_CLAUSES + 1 {
            src.push_str(&format!("f{i} 0.5: p({i}).\n"));
        }
        let p = Program::parse(&src).unwrap();
        assert!(matches!(
            success_probability_str(&p, "p(0)"),
            Err(WorldsError::TooManyUncertainClauses(_))
        ));
    }
}
