//! String interning.
//!
//! All identifiers, quoted strings and variable names in a program are
//! interned into a [`SymbolTable`], so the engine can compare and hash
//! constants as `u32`s instead of strings. A [`Symbol`] is only meaningful
//! relative to the table that produced it.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Cheap to copy, compare and hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol in its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only interner mapping strings to [`Symbol`]s.
#[derive(Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, id);
        Symbol(id)
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).map(|&id| Symbol(id))
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "foo");
        assert_eq!(t.resolve(b), "bar");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("x").is_none());
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut t = SymbolTable::new();
        let s = t.intern("");
        assert_eq!(t.resolve(s), "");
    }

    #[test]
    fn symbols_are_ordered_by_interning_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("z");
        let b = t.intern("a");
        assert!(a < b, "ordering follows interning order, not lexicographic");
    }
}
