//! # p3-datalog
//!
//! A ProbLog-like probabilistic Datalog substrate: abstract syntax, a
//! hand-written parser, a semi-naive bottom-up evaluation engine with a
//! derivation-observation seam for provenance capture, and a brute-force
//! possible-worlds evaluator used as a semantic oracle in tests.
//!
//! The language is the fragment used by the P3 paper (EDBT 2020): a union of
//! weighted conjunctive rules with recursion and without negation. Every
//! clause — base tuple or rule — carries a probability and denotes one
//! independent Boolean random variable under Sato's distribution semantics.
//!
//! ## Quick tour
//!
//! ```
//! use p3_datalog::{Program, engine::{Engine, NoopSink}};
//!
//! let src = r#"
//!     r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
//!     t1 1.0: live("Steve","DC").
//!     t2 1.0: live("Elena","DC").
//! "#;
//! let program = Program::parse(src).unwrap();
//! let mut engine = Engine::new(&program);
//! let db = engine.run(&mut NoopSink);
//! assert_eq!(db.relation_by_name("know").unwrap().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod diag;
pub mod engine;
pub mod explain;
pub mod parser;
pub mod program;
pub mod symbol;
pub mod transform;
pub mod worlds;

pub use ast::{Atom, Clause, ClauseId, ClauseKind, CmpOp, Const, Constraint, Term};
pub use diag::{Diagnostic, Severity};
pub use parser::{ClauseSpans, Span};
pub use program::{Program, ProgramError};
pub use symbol::{Symbol, SymbolTable};
