//! Stratified negation — the engine-level extension (the paper's stated
//! future work). Provenance does not cover it; these tests exercise
//! parsing, stratification, evaluation, and the possible-worlds semantics.

use p3_datalog::engine::Engine;
use p3_datalog::program::{Program, ProgramError};
use p3_datalog::worlds;

fn count(p: &Program, db: &p3_datalog::engine::Database, pred: &str) -> usize {
    p.symbols()
        .get(pred)
        .and_then(|s| db.relation(s))
        .map(|r| r.len())
        .unwrap_or(0)
}

#[test]
fn both_negation_spellings_parse() {
    for src in [
        r"r1 1.0: orphan(X) :- person(X), \+ parent(X). person(a). parent(a).",
        r"r1 1.0: orphan(X) :- person(X), not parent(X). person(a). parent(a).",
    ] {
        let p = Program::parse(src).unwrap();
        let r1 = p.clause(p.clause_by_label("r1").unwrap());
        assert_eq!(r1.negated().len(), 1, "{src}");
        assert_eq!(r1.body().len(), 1);
    }
}

#[test]
fn an_atom_named_not_is_still_an_atom() {
    // `not(X)` with parentheses directly after is a positive atom.
    let p = Program::parse("r1 1.0: q(X) :- not(X). t1 1.0: not(a).").unwrap();
    let r1 = p.clause(p.clause_by_label("r1").unwrap());
    assert_eq!(r1.negated().len(), 0);
    assert_eq!(r1.body().len(), 1);
    let db = Engine::new(&p).run_plain();
    assert_eq!(count(&p, &db, "q"), 1);
}

#[test]
fn negation_filters_tuples() {
    let p = Program::parse(
        r"r1 1.0: unreachable(X) :- node(X), \+ reach(X).
          r2 1.0: reach(X) :- src(X).
          r3 1.0: reach(Y) :- reach(X), edge(X,Y).
          node(a). node(b). node(c). node(d).
          src(a). edge(a,b). edge(b,c).",
    )
    .unwrap();
    assert!(p.has_negation());
    assert_eq!(p.num_strata(), 2);
    let db = Engine::new(&p).run_plain();
    assert_eq!(count(&p, &db, "reach"), 3, "a, b, c");
    assert_eq!(count(&p, &db, "unreachable"), 1, "only d");
}

#[test]
fn strata_order_is_respected_even_when_rules_are_listed_backwards() {
    // The negation-dependent rule is listed first; stratification must
    // still evaluate `reach` to completion before `unreachable` fires.
    let p = Program::parse(
        r"r0 1.0: unreachable(X) :- node(X), \+ reach(X).
          r1 1.0: reach(X) :- src(X).
          r2 1.0: reach(Y) :- reach(X), edge(X,Y).
          node(a). node(b). node(c).
          src(a). edge(a,b). edge(b,c).",
    )
    .unwrap();
    let db = Engine::new(&p).run_plain();
    assert_eq!(count(&p, &db, "unreachable"), 0, "all nodes reachable");
}

#[test]
fn unstratified_program_is_rejected() {
    let err = Program::parse(r"r1 1.0: p(X) :- q(X), \+ p(X). q(a).").unwrap_err();
    assert!(matches!(err, ProgramError::NotStratified { .. }), "{err}");
    // Mutual negative recursion.
    let err = Program::parse(
        r"r1 1.0: win(X) :- move(X,Y), \+ win(Y).
          move(a,b). move(b,a).",
    )
    .unwrap_err();
    assert!(matches!(err, ProgramError::NotStratified { .. }), "{err}");
}

#[test]
fn negated_variables_must_be_bound_positively() {
    let err = Program::parse(r"r1 1.0: p(X) :- q(X), \+ r(Y). q(a).").unwrap_err();
    assert!(matches!(err, ProgramError::UnsafeVariable { .. }), "{err}");
}

#[test]
fn multi_level_stratification() {
    let p = Program::parse(
        r"r1 1.0: a(X) :- base(X).
          r2 1.0: b(X) :- base(X), \+ a(X).
          r3 1.0: c(X) :- base(X), \+ b(X).
          base(x1). base(x2).",
    )
    .unwrap();
    assert_eq!(p.num_strata(), 3);
    let db = Engine::new(&p).run_plain();
    // a holds everywhere, so b nowhere, so c everywhere.
    assert_eq!(count(&p, &db, "a"), 2);
    assert_eq!(count(&p, &db, "b"), 0);
    assert_eq!(count(&p, &db, "c"), 2);
}

#[test]
fn possible_worlds_with_probabilistic_negation() {
    // q(a) holds when the blocker is absent: P[q] = 1 − P[blocker] = 0.7.
    let p = Program::parse(
        r"r1 1.0: q(X) :- cand(X), \+ blocked(X).
          cand(a).
          b1 0.3: blocked(a).",
    )
    .unwrap();
    let prob = worlds::success_probability_str(&p, "q(a)").unwrap();
    assert!((prob - 0.7).abs() < 1e-12, "got {prob}");
}

#[test]
fn possible_worlds_with_negation_over_derived_predicates() {
    // reach(b) needs edge e1; unreachable(b) = ¬reach(b): P = 1 − 0.6.
    let p = Program::parse(
        r"r1 1.0: reach(X) :- src(X).
          r2 1.0: reach(Y) :- reach(X), edge(X,Y).
          r3 1.0: unreachable(X) :- node(X), \+ reach(X).
          node(b). src(a).
          e1 0.6: edge(a,b).",
    )
    .unwrap();
    let prob = worlds::success_probability_str(&p, "unreachable(b)").unwrap();
    assert!((prob - 0.4).abs() < 1e-12, "got {prob}");
}

#[test]
fn negation_round_trips_through_display() {
    let src = r"r1 0.9: orphan(X) :- person(X), \+ parent(X).
person(a).";
    let p = Program::parse(src).unwrap();
    let rendered = p.to_source();
    assert!(rendered.contains(r"\+ parent(X)"), "{rendered}");
    let reparsed = Program::parse(&rendered).unwrap();
    assert_eq!(p.to_source(), reparsed.to_source());
}

#[test]
fn negation_with_constraints_and_joins() {
    let p = Program::parse(
        r"r1 1.0: lonely(X) :- person(X), \+ knows(X,X), \+ friend(X).
          r2 1.0: knows(X,Y) :- intro(X,Y), X != Y.
          person(a). person(b).
          intro(a,b). friend(b).",
    )
    .unwrap();
    let db = Engine::new(&p).run_plain();
    // knows(a,a) never derived (X != Y); friend(a) absent → lonely(a).
    // friend(b) present → not lonely(b).
    assert_eq!(count(&p, &db, "lonely"), 1);
}

#[test]
fn negation_free_programs_report_single_stratum() {
    let p = Program::parse("r1 1.0: q(X) :- p(X). p(a).").unwrap();
    assert!(!p.has_negation());
    assert_eq!(p.num_strata(), 1);
}
