//! Engine correctness oracle: the semi-naive engine must compute exactly
//! the least fixpoint. The reference here is a deliberately naive
//! evaluator — repeat full joins of every rule against the whole database
//! until nothing changes — implemented independently of the engine's
//! internals.

use p3_datalog::ast::{Clause, Const, Term};
use p3_datalog::engine::Engine;
use p3_datalog::program::Program;
use p3_datalog::symbol::Symbol;
use std::collections::{BTreeSet, HashMap};

type Fact = (Symbol, Vec<Const>);

/// Naive least-fixpoint evaluation (no indices, no deltas, no strata
/// tricks beyond iterating until global quiescence — sound for stratified
/// programs because we run strata in order here too).
fn naive_fixpoint(program: &Program) -> BTreeSet<Fact> {
    let mut facts: BTreeSet<Fact> = program
        .clauses()
        .iter()
        .filter(|c| c.is_fact())
        .map(|c| {
            (
                c.head.pred,
                c.head
                    .args
                    .iter()
                    .map(|t| t.as_const().expect("ground"))
                    .collect(),
            )
        })
        .collect();

    let max_stratum = program.num_strata();
    for stratum in 0..max_stratum {
        loop {
            let mut new_facts: Vec<Fact> = Vec::new();
            for clause in program.clauses() {
                if !clause.is_rule() || program.stratum(clause.head.pred) != stratum {
                    continue;
                }
                enumerate(clause, &facts, &mut new_facts);
            }
            let before = facts.len();
            facts.extend(new_facts);
            if facts.len() == before {
                break;
            }
        }
    }
    facts
}

/// Enumerates all groundings of `clause` against `facts` by brute-force
/// nested iteration.
fn enumerate(clause: &Clause, facts: &BTreeSet<Fact>, out: &mut Vec<Fact>) {
    fn rec(
        clause: &Clause,
        facts: &BTreeSet<Fact>,
        pos: usize,
        env: &mut HashMap<Symbol, Const>,
        out: &mut Vec<Fact>,
    ) {
        let body = clause.body();
        if pos == body.len() {
            // Constraints.
            for c in clause.constraints() {
                let value = |t: &Term| match t {
                    Term::Const(k) => *k,
                    Term::Var(v) => env[v],
                };
                if !c.op.eval(value(&c.lhs), value(&c.rhs)) {
                    return;
                }
            }
            // Negated atoms (complete lower strata by construction).
            for atom in clause.negated() {
                let args: Vec<Const> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(k) => *k,
                        Term::Var(v) => env[v],
                    })
                    .collect();
                if facts.contains(&(atom.pred, args)) {
                    return;
                }
            }
            let head: Vec<Const> = clause
                .head
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(k) => *k,
                    Term::Var(v) => env[v],
                })
                .collect();
            out.push((clause.head.pred, head));
            return;
        }
        let atom = &body[pos];
        'facts: for (pred, args) in facts.iter() {
            if *pred != atom.pred || args.len() != atom.args.len() {
                continue;
            }
            let mut bound_here: Vec<Symbol> = Vec::new();
            for (t, v) in atom.args.iter().zip(args) {
                match t {
                    Term::Const(k) => {
                        if k != v {
                            for b in bound_here.drain(..) {
                                env.remove(&b);
                            }
                            continue 'facts;
                        }
                    }
                    Term::Var(x) => match env.get(x) {
                        Some(existing) => {
                            if existing != v {
                                for b in bound_here.drain(..) {
                                    env.remove(&b);
                                }
                                continue 'facts;
                            }
                        }
                        None => {
                            env.insert(*x, *v);
                            bound_here.push(*x);
                        }
                    },
                }
            }
            rec(clause, facts, pos + 1, env, out);
            for b in bound_here {
                env.remove(&b);
            }
        }
    }
    rec(clause, facts, 0, &mut HashMap::new(), out);
}

/// Collects the engine's database as a comparable fact set.
fn engine_facts(program: &Program) -> BTreeSet<Fact> {
    let db = Engine::new(program).run_plain();
    let mut out = BTreeSet::new();
    for pred in db.predicates() {
        let rel = db.relation(pred).expect("listed predicate");
        for &t in rel.tuples() {
            let stored = db.tuple(t);
            out.insert((stored.pred, stored.args.to_vec()));
        }
    }
    out
}

#[test]
fn semi_naive_equals_naive_on_random_programs() {
    for seed in 0..40u64 {
        let src = random_source(seed);
        let program = Program::parse(&src).unwrap();
        assert_eq!(
            engine_facts(&program),
            naive_fixpoint(&program),
            "seed {seed}\n{src}"
        );
    }
}

#[test]
fn semi_naive_equals_naive_on_handwritten_programs() {
    for src in [
        // Transitive closure over a cycle.
        "r1 1.0: p(X,Y) :- e(X,Y). r2 1.0: p(X,Z) :- e(X,Y), p(Y,Z).
         e(1,2). e(2,3). e(3,1).",
        // Mutual recursion.
        "r1 1.0: a(X) :- s(X). r2 1.0: b(X) :- a(X). r3 1.0: a(X) :- b(X). s(q).",
        // Self-join with constraints.
        "r1 1.0: pair(X,Y) :- n(X), n(Y), X != Y. n(1). n(2). n(3).",
        // The acquaintance program.
        r#"r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
           r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
           r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
           t1 1.0: live("Steve","DC"). t2 1.0: live("Elena","DC").
           t4 0.4: like("Steve","Veggies"). t5 0.6: like("Elena","Veggies").
           t6 1.0: know("Ben","Steve")."#,
        // Stratified negation.
        r"r1 1.0: reach(X) :- src(X).
          r2 1.0: reach(Y) :- reach(X), edge(X,Y).
          r3 1.0: dead(X) :- node(X), \+ reach(X).
          node(a). node(b). node(c). src(a). edge(a,b).",
    ] {
        let program = Program::parse(src).unwrap();
        assert_eq!(engine_facts(&program), naive_fixpoint(&program), "{src}");
    }
}

/// Deterministic random program source: binary EDB + chained IDB rules
/// with occasional recursion and constraints.
fn random_source(seed: u64) -> String {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = |n: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % n
    };
    let mut src = String::new();
    let nfacts = 4 + next(5);
    for i in 0..nfacts {
        let a = next(4);
        let b = next(4);
        src.push_str(&format!("f{i} 0.5: e({a},{b}).\n"));
    }
    let nrules = 2 + next(3);
    for r in 0..nrules {
        match next(4) {
            0 => src.push_str(&format!("r{r} 0.9: p{r}(X,Y) :- e(X,Y).\n")),
            1 => src.push_str(&format!("r{r} 0.9: q(X,Z) :- e(X,Y), e(Y,Z).\n")),
            2 => src.push_str(&format!(
                "r{r} 0.9: t(X,Z) :- e(X,Y), t(Y,Z), X != Z.\nrb{r} 0.9: t(X,Y) :- e(X,Y).\n"
            )),
            _ => src.push_str(&format!("r{r} 0.9: u(X) :- e(X,X).\n")),
        }
    }
    src
}
