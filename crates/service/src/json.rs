//! A minimal JSON encoder/decoder — just enough for the wire protocol.
//!
//! The workspace builds fully offline (no registry), so the service
//! hand-rolls its JSON instead of pulling `serde_json`. Supported: the full
//! JSON value grammar with `\uXXXX` escapes (surrogate pairs included);
//! numbers are `f64`; objects preserve insertion order (handy for stable
//! golden tests). Not supported: anything beyond JSON — no comments, no
//! trailing commas, no NaN/Infinity literals.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to compact (single-line) JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest-roundtrip formatting is valid JSON for finite
        // numbers (integers render without a fraction part).
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            // Last duplicate key wins, mirroring serde_json.
            if let Some(&i) = seen.get(&key) {
                pairs[i].1 = val;
            } else {
                seen.insert(key.clone(), pairs.len());
                pairs.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "1e3", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_json()).unwrap(), v, "{text}");
        }
        assert_eq!(Value::parse("1e3").unwrap(), Value::Number(1000.0));
    }

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"op":"probability","query":"know(\"Ben\",\"Elena\")","nested":{"a":[1,2,{"b":null}],"t":true},"x":-0.25}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(
            v.get("query").unwrap().as_str().unwrap(),
            r#"know("Ben","Elena")"#
        );
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Value::String("tab\t \"quote\" \\ newline\n λ €".to_string());
        let json = v.to_json();
        assert_eq!(Value::parse(&json).unwrap(), v);
        // Escaped input forms, including a surrogate pair.
        let parsed = Value::parse(r#""λ 😀 \n""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "λ 😀 \n");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "01a",
            r#""\q""#,
            "nan",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Value::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = Value::parse(r#"{"n":3,"s":"x","b":true,"arr":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
    }
}
