//! Service-side request accounting: per-class counters and latency
//! quantiles, cheap enough to update on every request.
//!
//! Latencies are kept in a [`RingHistogram`] window of the most recent
//! [`RING`] samples per query class; quantiles are computed over that
//! window on demand (`stats` requests are rare, so the snapshot sorts a
//! copy). Counters are lifetime totals.

use crate::json::Value;
use p3_obs::metrics::RingHistogram;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Latency window per query class.
const RING: usize = 1024;

struct ClassStats {
    count: u64,
    errors: u64,
    timeouts: u64,
    sum_us: u64,
    /// Most recent latencies, microseconds, ring-buffered.
    recent_us: RingHistogram,
}

impl Default for ClassStats {
    fn default() -> Self {
        Self {
            count: 0,
            errors: 0,
            timeouts: 0,
            sum_us: 0,
            recent_us: RingHistogram::new(RING),
        }
    }
}

impl ClassStats {
    fn record(&mut self, latency: Duration, outcome: Outcome) {
        self.count += 1;
        match outcome {
            Outcome::Ok => {}
            Outcome::Error => self.errors += 1,
            Outcome::Timeout => self.timeouts += 1,
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.sum_us += us;
        self.recent_us.record(us);
    }

    fn snapshot(&self) -> Value {
        let q = |p: f64| -> f64 { self.recent_us.quantile(p).unwrap_or(0) as f64 / 1000.0 };
        let mean_ms = if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1000.0
        };
        Value::object(vec![
            ("count", Value::from(self.count)),
            ("errors", Value::from(self.errors)),
            ("timeouts", Value::from(self.timeouts)),
            (
                "latency_ms",
                Value::object(vec![
                    ("p50", Value::from(q(0.50))),
                    ("p90", Value::from(q(0.90))),
                    ("p99", Value::from(q(0.99))),
                    (
                        "max",
                        Value::from(self.recent_us.max().unwrap_or(0) as f64 / 1000.0),
                    ),
                    ("mean", Value::from(mean_ms)),
                ]),
            ),
        ])
    }
}

/// How a request ended, for the error/timeout counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served successfully.
    Ok,
    /// Failed (bad request, unknown tuple, …).
    Error,
    /// Deadline expired before the answer was ready.
    Timeout,
}

/// Thread-safe request accounting, grouped by op class.
#[derive(Default)]
pub struct ServiceStats {
    classes: Mutex<BTreeMap<&'static str, ClassStats>>,
}

impl ServiceStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request.
    pub fn record(&self, class: &'static str, latency: Duration, outcome: Outcome) {
        self.classes
            .lock()
            .unwrap()
            .entry(class)
            .or_default()
            .record(latency, outcome);
    }

    /// Total requests recorded across classes.
    pub fn total(&self) -> u64 {
        self.classes.lock().unwrap().values().map(|c| c.count).sum()
    }

    /// A JSON snapshot: `{class: {count, errors, timeouts, latency_ms}}`.
    pub fn snapshot(&self) -> Value {
        let classes = self.classes.lock().unwrap();
        Value::Object(
            classes
                .iter()
                .map(|(class, stats)| (class.to_string(), stats.snapshot()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_quantiles() {
        let stats = ServiceStats::new();
        for i in 1..=100u64 {
            stats.record("probability", Duration::from_micros(i * 1000), Outcome::Ok);
        }
        stats.record("probability", Duration::from_millis(500), Outcome::Timeout);
        stats.record("influence", Duration::from_millis(2), Outcome::Error);
        assert_eq!(stats.total(), 102);

        let snap = stats.snapshot();
        let prob = snap.get("probability").unwrap();
        assert_eq!(prob.get("count").unwrap().as_u64(), Some(101));
        assert_eq!(prob.get("timeouts").unwrap().as_u64(), Some(1));
        let lat = prob.get("latency_ms").unwrap();
        let p50 = lat.get("p50").unwrap().as_f64().unwrap();
        let p99 = lat.get("p99").unwrap().as_f64().unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= p50, "p99 = {p99}");
        assert_eq!(
            snap.get("influence")
                .unwrap()
                .get("errors")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn ring_keeps_only_recent_samples() {
        let stats = ServiceStats::new();
        // Old slow samples get overwritten by fast recent traffic.
        for _ in 0..RING {
            stats.record("ping", Duration::from_millis(100), Outcome::Ok);
        }
        for _ in 0..RING {
            stats.record("ping", Duration::from_micros(100), Outcome::Ok);
        }
        let snap = stats.snapshot();
        let p90 = snap
            .get("ping")
            .unwrap()
            .get("latency_ms")
            .unwrap()
            .get("p90")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(p90 < 1.0, "window should only hold fast samples: {p90}");
        assert_eq!(
            snap.get("ping").unwrap().get("count").unwrap().as_u64(),
            Some(2 * RING as u64)
        );
    }

    #[test]
    fn empty_snapshot_is_an_empty_object() {
        let stats = ServiceStats::new();
        assert_eq!(stats.snapshot(), Value::Object(vec![]));
        assert_eq!(stats.total(), 0);
    }

    /// A class with zero latency samples would only arise if `record` were
    /// skipped, but the snapshot math must not divide by zero regardless.
    #[test]
    fn empty_window_quantiles_are_zero() {
        let stats = ClassStats::default();
        let snap = stats.snapshot();
        let lat = snap.get("latency_ms").unwrap();
        for key in ["p50", "p90", "p99", "max", "mean"] {
            assert_eq!(lat.get(key).unwrap().as_f64(), Some(0.0), "{key}");
        }
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let stats = ServiceStats::new();
        stats.record("ping", Duration::from_millis(7), Outcome::Ok);
        let snap = stats.snapshot();
        let lat = snap.get("ping").unwrap().get("latency_ms").unwrap();
        for key in ["p50", "p90", "p99", "max", "mean"] {
            let v = lat.get(key).unwrap().as_f64().unwrap();
            assert!((v - 7.0).abs() < 1e-9, "{key} = {v}");
        }
    }

    #[test]
    fn wrapped_ring_drops_the_oldest_sample_first() {
        let stats = ServiceStats::new();
        // One slow outlier followed by RING fast samples: the wrap evicts
        // exactly the outlier, so even the max reflects recent traffic.
        stats.record("ping", Duration::from_millis(900), Outcome::Ok);
        for _ in 0..RING {
            stats.record("ping", Duration::from_micros(500), Outcome::Ok);
        }
        let snap = stats.snapshot();
        let max = snap
            .get("ping")
            .unwrap()
            .get("latency_ms")
            .unwrap()
            .get("max")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(max < 1.0, "outlier should have been overwritten: {max}");
    }
}
