//! `p3-client` — one-shot and REPL client for `p3-serve`.
//!
//! ```text
//! p3-client (--tcp ADDR | --unix PATH) <command> [options]
//! p3-client (--tcp ADDR | --unix PATH) repl
//! ```
//!
//! Commands build one protocol request, print the response's `result` (or
//! error) and exit non-zero on `error`/`timeout`. The REPL accepts the
//! same command syntax line by line, or raw JSON for lines starting
//! with `{`.

use p3_service::client::Client;
use p3_service::json::Value;
use p3_service::protocol::Status;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
p3-client — client for the p3-serve query server

USAGE:
    p3-client (--tcp ADDR | --unix PATH) <command> [options]

COMMANDS:
    probability QUERY            P[QUERY]
    explanation QUERY            Explanation Query: derivations + polynomial
    derivation QUERY             Derivation Query: sufficient provenance
    influence QUERY              Influence Query: ranked influential clauses
    modification QUERY TARGET    Modification Query: plan towards TARGET
    profile QUERY [TARGET]       stage-by-stage breakdown of one query
                                 (--class picks the query class; TARGET is
                                 required for --class modification)
    explain QUERY                per-rule cost attribution of the evaluation
                                 answering QUERY (EXPLAIN plane)
    analyze [QUERY]              static cost/cardinality prediction for the
                                 served program (no evaluation; QUERY adds a
                                 per-query-class prediction)
    load-program FILE            replace the served program (source sent inline;
                                 --no-lint skips the pre-flight gate)
    lint FILE                    static analysis of FILE without loading it
    stats                        server/session/store counters
    metrics                      Prometheus text exposition of all metrics
    trace [N]                    the N most recent request span trees [default: 10]
    audit-tail [N]               the N most recent audit records [default: 20]
    audit-top [N]                the N costliest audit records [default: 10]
                                 (--by picks the ranking key)
    slo                          per-class burn rates and error budgets
    ping                         liveness check
    persist                      compact the persistent store to a fresh snapshot
    warm                         what the store restored at boot (warm-boot report)
    store-stats                  persistent-store backend counters
    shutdown                     graceful server shutdown
    raw JSON                     send one raw request line
    repl                         interactive loop (commands or raw JSON lines)

OPTIONS (where applicable):
    --class C           profiled query class: probability|explanation|
                        derivation|influence|modification [default: probability]
    --method M          exact|bdd|mc|kl|pmc     (influence: exact|mc|pmc)
    --samples N         Monte-Carlo samples     [default: 100000]
    --seed N            Monte-Carlo seed
    --threads N         pmc worker threads; 0 = auto
    --eps E             derivation error bound  [default: 0.01]
    --algo A            greedy|resuciu          [default: greedy]
    --by K              audit-top ranking key: latency|tuples|dnf_width|
                        rule_cost [default: latency]
    --top-k K           keep only the K most influential entries
    --tolerance T       modification tolerance  [default: 1e-6]
    --eval-mode M       evaluation mode override: auto|naive|demand
    --timeout-ms N      per-request deadline
    --hop-limit N       provenance extraction depth cap
    --trace-out FILE    record client-side spans under a fresh trace id,
                        propagate the id to the server, and write the
                        client's chrome://tracing JSON to FILE on exit
    -h, --help          print this help
";

/// Builds one request line from command words (shared by one-shot and REPL).
fn build_request(words: &[String]) -> Result<String, String> {
    let cmd = words.first().ok_or("missing command")?.as_str();
    let mut pairs: Vec<(String, Value)> = Vec::new();
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = words[1..].iter();
    while let Some(word) = iter.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match word.as_str() {
            "--method" => pairs.push(("method".into(), take("--method")?.as_str().into())),
            "--eval-mode" => pairs.push(("eval_mode".into(), take("--eval-mode")?.as_str().into())),
            "--algo" => pairs.push(("algo".into(), take("--algo")?.as_str().into())),
            "--class" => pairs.push(("class".into(), take("--class")?.as_str().into())),
            "--by" => pairs.push(("by".into(), take("--by")?.as_str().into())),
            opt @ ("--samples" | "--seed" | "--threads" | "--top-k" | "--timeout-ms"
            | "--hop-limit") => {
                let key = match opt {
                    "--samples" => "samples",
                    "--seed" => "seed",
                    "--threads" => "threads",
                    "--top-k" => "top_k",
                    "--timeout-ms" => "timeout_ms",
                    _ => "hop_limit",
                };
                let n: u64 = take(opt)?.parse().map_err(|_| format!("bad {opt} value"))?;
                pairs.push((key.into(), Value::from(n)));
            }
            opt @ ("--eps" | "--tolerance") => {
                let x: f64 = take(opt)?.parse().map_err(|_| format!("bad {opt} value"))?;
                pairs.push((opt.trim_start_matches('-').into(), Value::from(x)));
            }
            "--no-lint" => pairs.push(("lint".into(), Value::Bool(false))),
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            _ => positional.push(word),
        }
    }

    let query = |positional: &[&String]| -> Result<Value, String> {
        positional
            .first()
            .map(|q| Value::from(q.as_str()))
            .ok_or_else(|| format!("{cmd} needs a QUERY argument"))
    };
    match cmd {
        "ping" | "stats" | "metrics" | "shutdown" | "persist" | "warm" | "store-stats" | "slo" => {
            pairs.insert(0, ("op".into(), cmd.into()))
        }
        "trace" | "audit-tail" | "audit-top" => {
            pairs.insert(0, ("op".into(), cmd.into()));
            if let Some(n) = positional.first() {
                let n: u64 = n.parse().map_err(|_| format!("bad {cmd} count"))?;
                pairs.push(("n".into(), Value::from(n)));
            }
        }
        "probability" | "explanation" | "influence" | "explain" => {
            pairs.insert(0, ("op".into(), cmd.into()));
            pairs.insert(1, ("query".into(), query(&positional)?));
        }
        "analyze" => {
            pairs.insert(0, ("op".into(), cmd.into()));
            if let Some(q) = positional.first() {
                pairs.insert(1, ("query".into(), Value::from(q.as_str())));
            }
        }
        "derivation" => {
            pairs.insert(0, ("op".into(), cmd.into()));
            pairs.insert(1, ("query".into(), query(&positional)?));
            if !pairs.iter().any(|(k, _)| k == "eps") {
                pairs.push(("eps".into(), Value::from(0.01)));
            }
        }
        "modification" => {
            pairs.insert(0, ("op".into(), cmd.into()));
            pairs.insert(1, ("query".into(), query(&positional)?));
            let target: f64 = positional
                .get(1)
                .ok_or("modification needs QUERY and TARGET")?
                .parse()
                .map_err(|_| "bad TARGET value")?;
            pairs.push(("target".into(), Value::from(target)));
        }
        "profile" => {
            pairs.insert(0, ("op".into(), cmd.into()));
            pairs.insert(1, ("query".into(), query(&positional)?));
            let class = pairs
                .iter()
                .find(|(k, _)| k == "class")
                .and_then(|(_, v)| v.as_str())
                .unwrap_or("probability")
                .to_string();
            // The wrapped class keeps its own required fields and defaults.
            if class == "derivation" && !pairs.iter().any(|(k, _)| k == "eps") {
                pairs.push(("eps".into(), Value::from(0.01)));
            }
            if class == "modification" {
                let target: f64 = positional
                    .get(1)
                    .ok_or("profile --class modification needs QUERY and TARGET")?
                    .parse()
                    .map_err(|_| "bad TARGET value")?;
                pairs.push(("target".into(), Value::from(target)));
            }
        }
        "load-program" | "lint" => {
            let file = positional
                .first()
                .ok_or_else(|| format!("{cmd} needs a FILE"))?;
            let source = std::fs::read_to_string(file.as_str())
                .map_err(|e| format!("cannot read {file}: {e}"))?;
            pairs.insert(0, ("op".into(), cmd.into()));
            pairs.insert(1, ("source".into(), Value::from(source)));
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(Value::Object(pairs).to_json())
}

/// Injects the propagated trace id into a request line (unless the line
/// already carries one, or isn't a JSON object).
fn with_trace(line: &str, trace: Option<&str>) -> String {
    let Some(id) = trace else {
        return line.to_string();
    };
    match Value::parse(line.trim()) {
        Ok(Value::Object(mut pairs)) => {
            if !pairs.iter().any(|(k, _)| k == "trace") {
                pairs.push(("trace".to_string(), Value::from(id)));
            }
            Value::Object(pairs).to_json()
        }
        _ => line.to_string(),
    }
}

/// Sends one line and pretty-prints the outcome; true on `status: ok`.
/// Text-typed payloads (e.g. the `metrics` exposition) print raw, not as
/// JSON, so the output pipes straight into Prometheus tooling.
fn send(client: &mut Client, line: &str, trace: Option<&str>) -> bool {
    let line = with_trace(line, trace);
    match client.request(&line) {
        Err(e) => {
            p3_obs::error!("request failed", err = e);
            false
        }
        Ok(resp) => match resp.status {
            Status::Ok => {
                let payload = resp.result.unwrap_or(Value::Null);
                let is_text = payload
                    .get("content_type")
                    .and_then(Value::as_str)
                    .is_some_and(|ct| ct.starts_with("text/plain"));
                match payload.get("text").and_then(Value::as_str) {
                    Some(text) if is_text => print!("{text}"),
                    _ => println!("{}", payload.to_json()),
                }
                true
            }
            Status::Error => {
                p3_obs::error!(resp.error.unwrap_or_default());
                false
            }
            Status::Timeout => {
                p3_obs::warn!("request timed out", detail = resp.error.unwrap_or_default());
                false
            }
        },
    }
}

fn repl(client: &mut Client, trace: Option<&str>) -> ExitCode {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let _ = write!(out, "p3> ");
    let _ = out.flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            let _ = write!(out, "p3> ");
            let _ = out.flush();
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        if trimmed.starts_with('{') {
            send(client, trimmed, trace);
        } else {
            let words: Vec<String> = trimmed.split_whitespace().map(str::to_string).collect();
            match build_request(&words) {
                Ok(request) => {
                    send(client, &request, trace);
                }
                Err(e) => p3_obs::error!(e),
            }
        }
        let _ = write!(out, "p3> ");
        let _ = out.flush();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    // Pull the connection options out; everything else is the command.
    let mut tcp: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.drain(..);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tcp" => match iter.next() {
                Some(v) => tcp = Some(v),
                None => {
                    p3_obs::error!("--tcp needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--unix" => match iter.next() {
                Some(v) => unix = Some(PathBuf::from(v)),
                None => {
                    p3_obs::error!("--unix needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match iter.next() {
                Some(v) => trace_out = Some(PathBuf::from(v)),
                None => {
                    p3_obs::error!("--trace-out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            _ => rest.push(arg),
        }
    }
    drop(iter);

    // With --trace-out, everything from connect to the last reply nests
    // under one root "client" span carrying a fresh 128-bit trace id; the
    // same id rides each request envelope, so the server's request trees
    // carry it too — one trace across both processes.
    let trace_id = trace_out.as_ref().map(|_| {
        p3_obs::span::set_enabled(true);
        p3_service::protocol::new_trace_id()
    });
    let root_span = trace_id.as_ref().map(|id| {
        let mut span = p3_obs::span::span("client");
        span.add_field("trace", id);
        span
    });

    let mut client = match (&tcp, &unix) {
        (Some(addr), _) => match Client::connect_tcp(addr) {
            Ok(c) => c,
            Err(e) => {
                p3_obs::error!("cannot connect", tcp = addr, err = e);
                return ExitCode::FAILURE;
            }
        },
        (None, Some(path)) => match Client::connect_unix(path) {
            Ok(c) => c,
            Err(e) => {
                p3_obs::error!("cannot connect", unix = path.display(), err = e);
                return ExitCode::FAILURE;
            }
        },
        (None, None) => {
            p3_obs::error!("need --tcp ADDR or --unix PATH");
            eprintln!("run 'p3-client --help' for usage");
            return ExitCode::FAILURE;
        }
    };

    let trace = trace_id.as_deref();
    let code = match rest.first().map(String::as_str) {
        None => {
            p3_obs::error!("missing command");
            eprintln!("run 'p3-client --help' for usage");
            ExitCode::FAILURE
        }
        Some("repl") => repl(&mut client, trace),
        Some("raw") => {
            let Some(line) = rest.get(1) else {
                p3_obs::error!("raw needs a JSON argument");
                return ExitCode::FAILURE;
            };
            if send(&mut client, line, trace) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(_) => match build_request(&rest) {
            Err(e) => {
                p3_obs::error!(e);
                eprintln!("run 'p3-client --help' for usage");
                ExitCode::FAILURE
            }
            Ok(request) => {
                if send(&mut client, &request, trace) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
        },
    };

    // Close the root span (it only lands in the ring on drop), then write
    // the client-side tree as chrome://tracing JSON.
    drop(root_span);
    if let (Some(path), Some(id)) = (&trace_out, &trace_id) {
        let trees = p3_obs::span::recent_roots(Some("client"), 1);
        let json = p3_obs::span::chrome_trace_json_for(&trees);
        match std::fs::write(path, json) {
            Ok(()) => p3_obs::info!("trace written", path = path.display(), trace = id),
            Err(e) => {
                p3_obs::error!("cannot write trace", path = path.display(), err = e);
                return ExitCode::FAILURE;
            }
        }
    }
    code
}
