//! `p3-serve` — stand up a provenance query server for one program.
//!
//! ```text
//! p3-serve --program FILE [--tcp ADDR] [--unix PATH] [--admin-addr ADDR]
//!          [--workers N] [--queue-cap N] [--cache-cap N] [--eval-mode M]
//!          [--timeout-ms N] [--slow-ms N] [--store-dir DIR]
//!          [--audit-dir DIR] [--slo CLASS:TARGET_MS:OBJECTIVE]... [--slo-readyz]
//! ```
//!
//! Prints one `listening tcp ADDR` / `listening unix PATH` /
//! `listening admin ADDR` line per bound endpoint (machine-parseable — the
//! integration tests and benches read them), then serves until
//! SIGTERM/SIGINT or a client `shutdown` request, draining queued work
//! before exiting. `--admin-addr` binds the HTTP observability plane:
//! `/metrics`, `/healthz`, `/readyz`, `/traces`, `/profile`.

use p3_service::server::{Server, ServerConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
p3-serve — provenance query server (newline-delimited JSON)

USAGE:
    p3-serve --program FILE [OPTIONS]

OPTIONS:
    --program FILE     probabilistic Datalog program to serve (required)
    --tcp ADDR         TCP bind address, e.g. 127.0.0.1:7033 (port 0 = ephemeral)
    --unix PATH        Unix-domain socket path
    --admin-addr ADDR  HTTP observability plane bind address (GET /metrics,
                       /healthz, /readyz, /traces?n=N, /profile?secs=S)
    --workers N        worker pool size; 0 = auto (P3_THREADS env var,
                       else available cores capped at 16) [default: 0]
    --queue-cap N      bounded request queue capacity [default: 256]
    --cache-cap N      per-table session cache cap (entries); omit for unbounded
    --eval-mode M      default evaluation mode: auto|naive|demand [default: auto];
                       requests override per-query with \"eval_mode\"
    --timeout-ms N     default per-request deadline for requests without timeout_ms
    --slow-ms N        log requests slower than N ms at warn level
    --store-dir DIR    persistent provenance store: journal interned formulas
                       and query memos to DIR and replay them on the next
                       start for a warm boot (stale stores — a different
                       program text — are discarded automatically)
    --audit-dir DIR    per-request audit log: append one crash-safe record per
                       request to a bounded segment ring in DIR (read back via
                       audit-tail/audit-top ops, GET /audit, or `p3 audit DIR`)
    --audit-segment-bytes N   rotate audit segments at N bytes [default: 4194304]
    --audit-max-segments N    keep at most N audit segments [default: 8]
    --audit-segment-age-secs N  also rotate segments older than N seconds;
                       0 disables age-based rotation [default: 3600]
    --slo SPEC         latency objective CLASS:TARGET_MS:OBJECTIVE, e.g.
                       probability:500:0.99; repeatable, overrides the
                       built-in 500ms/0.99 default for that class
    --slo-readyz       turn a tripped 5-minute SLO burn window into a 503
                       on GET /readyz (off by default)
    --no-lint          skip the lint pre-flight gate on the boot-time program
    -h, --help         print this help

At least one of --tcp / --unix is required. Shut down with SIGTERM, SIGINT,
or a client {\"op\":\"shutdown\"} request; in-flight work drains first.
Set P3_LOG=error|warn|info|debug to control log verbosity (default warn).
";

fn fail(msg: &str) -> ExitCode {
    p3_obs::error!(msg);
    eprintln!("run 'p3-serve --help' for usage");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // Span collection is on for the server's lifetime: the ring holds the
    // most recent spans for `trace` requests at a bounded memory cost.
    p3_obs::span::set_enabled(true);
    let mut args = std::env::args().skip(1);
    let mut program: Option<PathBuf> = None;
    let mut lint = true;
    let mut config = ServerConfig::default();
    let mut audit: Option<p3_audit::AuditConfig> = None;
    let mut audit_segment_bytes: Option<u64> = None;
    let mut audit_max_segments: Option<usize> = None;
    let mut audit_segment_age_secs: Option<u64> = None;

    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--program" => match take("--program") {
                Ok(v) => program = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--tcp" => match take("--tcp") {
                Ok(v) => config.tcp = Some(v),
                Err(e) => return fail(&e),
            },
            "--unix" => match take("--unix") {
                Ok(v) => config.unix = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--admin-addr" => match take("--admin-addr") {
                Ok(v) => config.admin = Some(v),
                Err(e) => return fail(&e),
            },
            "--workers" => match take("--workers")
                .and_then(|v| v.parse().map_err(|_| format!("bad --workers value '{v}'")))
            {
                Ok(v) => config.workers = v,
                Err(e) => return fail(&e),
            },
            "--queue-cap" => match take("--queue-cap").and_then(|v| {
                v.parse()
                    .map_err(|_| format!("bad --queue-cap value '{v}'"))
            }) {
                Ok(v) => config.queue_cap = v,
                Err(e) => return fail(&e),
            },
            "--cache-cap" => match take("--cache-cap").and_then(|v| {
                v.parse()
                    .map_err(|_| format!("bad --cache-cap value '{v}'"))
            }) {
                Ok(v) => config.cache_cap = Some(v),
                Err(e) => return fail(&e),
            },
            "--eval-mode" => match take("--eval-mode").and_then(|v| v.parse()) {
                Ok(v) => config.eval_mode = v,
                Err(e) => return fail(&e),
            },
            "--timeout-ms" => match take("--timeout-ms").and_then(|v| {
                v.parse()
                    .map_err(|_| format!("bad --timeout-ms value '{v}'"))
            }) {
                Ok(v) => config.default_timeout_ms = Some(v),
                Err(e) => return fail(&e),
            },
            "--slow-ms" => match take("--slow-ms")
                .and_then(|v| v.parse().map_err(|_| format!("bad --slow-ms value '{v}'")))
            {
                Ok(v) => config.slow_ms = Some(v),
                Err(e) => return fail(&e),
            },
            "--store-dir" => match take("--store-dir") {
                Ok(v) => config.store_dir = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--audit-dir" => match take("--audit-dir") {
                Ok(v) => audit = Some(p3_audit::AuditConfig::new(v)),
                Err(e) => return fail(&e),
            },
            "--audit-segment-bytes" => match take("--audit-segment-bytes").and_then(|v| {
                v.parse()
                    .map_err(|_| format!("bad --audit-segment-bytes value '{v}'"))
            }) {
                Ok(v) => audit_segment_bytes = Some(v),
                Err(e) => return fail(&e),
            },
            "--audit-max-segments" => match take("--audit-max-segments").and_then(|v| {
                v.parse()
                    .map_err(|_| format!("bad --audit-max-segments value '{v}'"))
            }) {
                Ok(v) => audit_max_segments = Some(v),
                Err(e) => return fail(&e),
            },
            "--audit-segment-age-secs" => match take("--audit-segment-age-secs").and_then(|v| {
                v.parse()
                    .map_err(|_| format!("bad --audit-segment-age-secs value '{v}'"))
            }) {
                Ok(v) => audit_segment_age_secs = Some(v),
                Err(e) => return fail(&e),
            },
            "--slo" => match take("--slo").and_then(|v| p3_obs::slo::SloConfig::parse(&v)) {
                Ok(v) => config.slos.push(v),
                Err(e) => return fail(&e),
            },
            "--slo-readyz" => config.slo_readyz = true,
            "--no-lint" => lint = false,
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let Some(program) = program else {
        return fail("--program is required");
    };
    if config.tcp.is_none() && config.unix.is_none() {
        return fail("need at least one of --tcp / --unix");
    }
    if let Some(mut cfg) = audit {
        if let Some(bytes) = audit_segment_bytes {
            cfg.max_segment_bytes = bytes;
        }
        if let Some(n) = audit_max_segments {
            cfg.max_segments = n;
        }
        if let Some(secs) = audit_segment_age_secs {
            cfg.max_segment_age_secs = secs;
        }
        config.audit = Some(cfg);
    } else if audit_segment_bytes.is_some()
        || audit_max_segments.is_some()
        || audit_segment_age_secs.is_some()
    {
        return fail("--audit-segment-* options need --audit-dir");
    }

    let source = match std::fs::read_to_string(&program) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {}: {e}", program.display())),
    };
    if lint {
        // Same gate the load-program op applies: every error-severity
        // finding is reported (with source excerpts) before refusing to
        // serve; --no-lint falls back to plain parse + validate.
        let report = p3_lint::lint_source(&source);
        if report.has_errors() {
            let name = program.display().to_string();
            eprint!("{}", report.render(Some(&source), Some(&name)));
            return fail(&format!(
                "{} failed lint pre-flight ({}); pass --no-lint to skip the gate",
                name,
                report.summary_line()
            ));
        }
    }
    let p3 = match p3_core::P3::from_source(&source) {
        Ok(p3) => p3,
        Err(e) => return fail(&format!("cannot load {}: {e}", program.display())),
    };
    if config.store_dir.is_some() {
        // The store is keyed to the exact program text: a store directory
        // written for any other text is detected and discarded at open.
        config.store_fingerprint = Some(p3_store::content_hash(&source));
    }

    let server = match Server::start(p3, config) {
        Ok(server) => server,
        Err(e) => return fail(&format!("cannot start server: {e}")),
    };
    let mut stdout = std::io::stdout();
    if let Some(addr) = server.tcp_addr() {
        let _ = writeln!(stdout, "listening tcp {addr}");
    }
    if let Some(path) = server.unix_path() {
        let _ = writeln!(stdout, "listening unix {}", path.display());
    }
    if let Some(addr) = server.admin_addr() {
        let _ = writeln!(stdout, "listening admin {addr}");
    }
    let _ = stdout.flush();
    p3_obs::info!("server started", program = program.display());

    let flag = p3_service::signal::install_shutdown_flag();
    server.serve_until_shutdown(flag);
    p3_obs::info!("server stopped");
    ExitCode::SUCCESS
}
