//! A small blocking client for the p3 service protocol.
//!
//! One [`Client`] owns one connection (TCP or Unix) and does strict
//! request/response line round-trips — the server answers in order, so no
//! correlation machinery is needed beyond the optional `id` echo.

use crate::protocol::Response;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Either transport, unified for `Read`/`Write`.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects over TCP, e.g. `127.0.0.1:7033`.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let mut span = p3_obs::span::span("client.connect");
        span.add_field("transport", "tcp");
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Stream::Tcp(reader)),
            writer: Stream::Tcp(stream),
        })
    }

    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let mut span = p3_obs::span::span("client.connect");
        span.add_field("transport", "unix");
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Stream::Unix(reader)),
            writer: Stream::Unix(stream),
        })
    }

    /// Caps how long [`Client::request`] waits for a response line.
    /// `None` restores blocking reads.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self.reader.get_ref() {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sends one raw request line and returns the raw response line
    /// (without the trailing newline).
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        {
            let _send = p3_obs::span::span("client.send");
            self.writer.write_all(line.trim_end().as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()?;
        }
        let _recv = p3_obs::span::span("client.recv");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request line and parses the response envelope.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        let raw = self.roundtrip(line)?;
        Response::parse(&raw).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
