//! Minimal async-signal-safe SIGTERM/SIGINT latch, without the `libc`
//! crate: `signal(2)` is declared directly against the C runtime that std
//! already links. The handler only flips a static flag — the accept loops
//! poll it and turn it into a graceful shutdown.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a relaxed store.
        super::SHUTDOWN_FLAG.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers (idempotent) and returns the latch the
/// handlers set. Pass it to [`crate::server::Server::serve_until_shutdown`].
pub fn install_shutdown_flag() -> &'static AtomicBool {
    sys::install();
    &SHUTDOWN_FLAG
}

/// Whether a shutdown signal has been received.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_FLAG.load(Ordering::Relaxed)
}
