//! # p3-service — cross-process provenance queries over shared sessions
//!
//! The in-process facade (`p3_core::P3` + `QuerySession`) answers the four
//! EDBT 2020 query classes with shared memoization; this crate puts that
//! behind a socket so *processes* can share one warm session too. A
//! [`server::Server`] owns one `P3` + `QuerySession` and serves
//! Explanation, Derivation, Influence and Modification queries — plus
//! plain `probability`, `load-program` and `stats` — over a
//! newline-delimited JSON protocol on TCP and Unix-domain sockets.
//!
//! Everything is hand-rolled on `std::net` / `std::os::unix::net`: the
//! [`json`] module is a minimal JSON codec, [`protocol`] the request and
//! response envelopes, [`server`] the accept-loop → bounded-queue →
//! worker-pool machinery (deadlines, graceful shutdown, stats), `admin`
//! the HTTP observability plane (`/metrics`, `/healthz`, `/readyz`,
//! `/traces`, `/profile` on `--admin-addr`), and [`client`] a small
//! blocking client used by `p3-client`, the tests and the benches.
//!
//! ```no_run
//! use p3_service::server::{Server, ServerConfig};
//! use p3_service::client::Client;
//!
//! let p3 = p3_core::P3::from_source("t 0.5: a(1).").unwrap();
//! let server = Server::start(p3, ServerConfig {
//!     tcp: Some("127.0.0.1:0".to_string()),
//!     ..Default::default()
//! }).unwrap();
//!
//! let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
//! let resp = client.request(r#"{"op":"probability","query":"a(1)"}"#).unwrap();
//! assert_eq!(resp.status, p3_service::protocol::Status::Ok);
//! server.shutdown();
//! server.join();
//! ```

mod admin;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod stats;
