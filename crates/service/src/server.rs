//! The query server: accept loops → bounded queue → worker pool.
//!
//! One [`Server`] owns one [`P3`] + [`QuerySession`] and serves the whole
//! query suite over newline-delimited JSON on TCP and/or Unix-domain
//! sockets. The moving parts:
//!
//! * **accept loops** (one thread per listener) hand each connection to a
//!   handler thread;
//! * **handlers** parse request lines and *admin* ops (`ping`, `stats`,
//!   `shutdown`) are answered inline — they must work even when the queue
//!   is saturated;
//! * **query ops** go through a bounded [`JobQueue`] drained by a fixed
//!   worker pool (size from `P3_THREADS` when not configured) whose workers
//!   share the session's memo tables, so one client's computation warms
//!   every other client's cache;
//! * **deadlines**: a request's `timeout_ms` arms a per-request deadline.
//!   The handler acts as the watchdog — it waits for the worker's answer
//!   only until the deadline and then reports `"timeout"` instead of
//!   hanging the connection; an expired job still in the queue is skipped
//!   by the worker that dequeues it (no dead work);
//! * **graceful shutdown** (SIGTERM in `p3-serve`, or a `shutdown`
//!   request): new connections are refused, queued work drains, workers
//!   and accept loops join, in that order.

use crate::json::Value;
use crate::protocol::{AuditKey, Op, Request, Response};
use crate::stats::{Outcome, ServiceStats};
use p3_audit::{AuditLog, AuditRecord, StageTiming};
use p3_core::{
    EvalMode, InfluenceOptions, ModificationOptions, ProfileTarget, QueryProfile, QuerySession,
    SessionOptions, WarmRestore, P3,
};
use p3_obs::slo::{SloConfig, SloEngine};
use p3_provenance::extract::ExtractOptions;
use p3_store::{FileBackend, RecoveryReport, StorageBackend};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often accept loops and shutdown polls re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port); `None`
    /// disables TCP.
    pub tcp: Option<String>,
    /// Unix-domain socket path; `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// HTTP admin-plane bind address (`/metrics`, `/healthz`, `/readyz`,
    /// `/traces`, `/profile` — see the `admin` module); `None` disables it.
    pub admin: Option<String>,
    /// Worker pool size; `0` = auto (the `P3_THREADS` convention, see
    /// [`p3_prob::parallel::default_threads`]).
    pub workers: usize,
    /// Bounded request-queue capacity; producers block (with deadline) when
    /// it is full.
    pub queue_cap: usize,
    /// Per-table session cache cap ([`SessionOptions::max_entries`]).
    pub cache_cap: Option<usize>,
    /// Default evaluation mode for query ops ([`SessionOptions::eval_mode`]);
    /// requests override it per-query with `"eval_mode"`.
    pub eval_mode: EvalMode,
    /// Deadline applied to requests that don't carry `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Requests slower than this many milliseconds are logged at `warn`
    /// level and counted in `p3_service_slow_requests_total`; `None`
    /// disables the slow-query log.
    pub slow_ms: Option<u64>,
    /// Persistent-store directory (`p3-serve --store-dir`): provenance
    /// state is journaled there and replayed on the next start for a warm
    /// boot. `None` serves from memory only.
    pub store_dir: Option<PathBuf>,
    /// Content hash of the served program (see [`p3_store::content_hash`]);
    /// a store written for a different hash is discarded as stale rather
    /// than replayed. Only read when `store_dir` is set.
    pub store_fingerprint: Option<u64>,
    /// Per-request audit log (`p3-serve --audit-dir`): every request
    /// appends one crash-safe [`AuditRecord`] to a bounded segment ring.
    /// `None` disables auditing (the in-memory SLO engine still runs).
    pub audit: Option<p3_audit::AuditConfig>,
    /// Latency objectives tracked by the SLO engine, one per request
    /// class. Defaults to [`default_slos`]; later entries override
    /// earlier ones per class, so CLI `--slo` specs layer on top.
    pub slos: Vec<SloConfig>,
    /// When set, a tripped 5-minute (fast) burn window turns `/readyz`
    /// into a 503 so load balancers shed traffic. Off by default —
    /// flipping readiness on an SLO is an operator's opt-in call.
    pub slo_readyz: bool,
}

/// The built-in latency objectives: each query class gets 99% of
/// requests OK within 500 ms. `--slo CLASS:TARGET_MS:OBJECTIVE` specs
/// replace the matching class (last wins).
pub fn default_slos() -> Vec<SloConfig> {
    [
        "probability",
        "explanation",
        "derivation",
        "influence",
        "modification",
    ]
    .iter()
    .map(|class| SloConfig {
        class: (*class).to_string(),
        target_ms: 500,
        objective: 0.99,
    })
    .collect()
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tcp: None,
            unix: None,
            admin: None,
            workers: 0,
            queue_cap: 256,
            cache_cap: None,
            eval_mode: EvalMode::Auto,
            default_timeout_ms: None,
            slow_ms: None,
            store_dir: None,
            store_fingerprint: None,
            audit: None,
            slos: default_slos(),
            slo_readyz: false,
        }
    }
}

/// Milliseconds since the unix epoch — the timestamp domain shared by
/// audit records and the SLO engine's rolling windows.
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// One unit of queued work.
struct Job {
    op: Op,
    hop_limit: Option<usize>,
    eval_mode: Option<EvalMode>,
    deadline: Option<Instant>,
    /// When the handler enqueued the job, for the queue-wait/execute
    /// split in the slow-request log.
    enqueued: Instant,
    /// Id of the request's root span, so the worker can parent its
    /// `execute` span across the thread hop (0 = tracing disabled).
    root_span: u64,
    reply: mpsc::SyncSender<Answer>,
}

/// A worker's reply: the op result plus the timing/cache facts the handler
/// needs to make a slow request diagnosable from one log line and to
/// build the request's audit record.
struct Answer {
    result: Result<Value, String>,
    /// Time the job sat in the queue before a worker picked it up.
    queue_wait_us: u64,
    /// Time the worker spent executing the op.
    execute_us: u64,
    /// Session memo-table hits while the op ran (shared session: under
    /// concurrent load this includes other requests' traffic).
    session_hits: u64,
    /// Session memo-table misses while the op ran.
    session_misses: u64,
    /// Per-op facts collected inside `execute`.
    facts: ExecFacts,
    /// Tuples derived by rule evaluation while the op ran (global-counter
    /// delta across both eval modes; approximate under concurrency).
    derived_tuples: u64,
    /// Persistent-store records journaled while the op ran.
    store_records: u64,
    /// Extraction-memo hits while the op ran.
    extract_memo_hits: u64,
    /// Extraction-memo misses while the op ran.
    extract_memo_misses: u64,
    /// Rule-evaluation cost (candidates + firings + new tuples) attributed
    /// to forced evaluations while the op ran (delta of the session
    /// system's monotone tally; approximate under concurrency).
    rule_cost: u64,
    /// The costliest rules of the session's accumulated plans after the
    /// op — populated only when the op forced evaluation (`rule_cost > 0`).
    top_rules: Vec<(String, u64)>,
}

/// Facts `execute` collects as it runs an op: coarse per-stage wall
/// timings, the DNF shape where a formula id is in hand, and whether a
/// `load-program` failure was the lint gate (vs. a real error).
#[derive(Default)]
struct ExecFacts {
    stages: Vec<StageTiming>,
    dnf_monomials: u64,
    dnf_literals: u64,
    lint_reject: bool,
}

impl ExecFacts {
    /// Records one stage's wall time around `f`.
    fn timed<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stages.push(StageTiming {
            name: name.to_string(),
            wall_us: start.elapsed().as_micros().min(u64::MAX as u128) as u64,
        });
        out
    }

    /// Notes the DNF width of the formula the op answered from.
    fn note_dnf(&mut self, dnf: &p3_prob::Dnf) {
        self.dnf_monomials = dnf.len() as u64;
        self.dnf_literals = dnf.monomials().iter().map(|m| m.len() as u64).sum();
    }
}

/// Reads the process-global derived-tuples tally: the mode-labeled
/// engine counters summed, so a delta spans naive and demand evaluation.
fn derived_tuples_total() -> u64 {
    ["naive", "demand"]
        .iter()
        .map(|mode| {
            let labels = p3_obs::metrics::render_labels(&[("mode", mode)]);
            p3_obs::metrics::labeled_counter(
                "p3_engine_derived_tuples_total",
                "Tuples derived by rule evaluation, by evaluation mode",
                &labels,
            )
            .get()
        })
        .sum()
}

/// Sets the queue-depth saturation gauge (also a `readyz` input).
fn set_queue_depth_gauge(depth: usize) {
    p3_obs::gauge!(
        "p3_service_queue_depth",
        "Jobs currently waiting in the bounded request queue"
    )
    .set(depth as i64);
}

/// Sets the busy-workers saturation gauge (also a `readyz` input).
fn set_workers_busy_gauge(busy: usize) {
    p3_obs::gauge!(
        "p3_service_workers_busy",
        "Workers currently executing a job"
    )
    .set(busy as i64);
}

/// A bounded MPMC queue: producers block (until a deadline) when full,
/// workers block when empty, and `close()` lets queued work drain while
/// refusing new pushes.
struct JobQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

enum PushError {
    /// The queue stayed full past the caller's deadline.
    DeadlineExpired,
    /// The server is shutting down.
    Closed,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `job`, waiting while the queue is full — but no longer than
    /// the job's own deadline (backpressure must not outlive the request).
    fn push(&self, job: Job) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.jobs.len() < self.cap {
                inner.jobs.push_back(job);
                set_queue_depth_gauge(inner.jobs.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            let wait = match job.deadline {
                None => {
                    inner = self.not_full.wait(inner).unwrap();
                    continue;
                }
                Some(deadline) => match deadline.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => left,
                    _ => return Err(PushError::DeadlineExpired),
                },
            };
            let (guard, timeout) = self.not_full.wait_timeout(inner, wait).unwrap();
            inner = guard;
            if timeout.timed_out() && inner.jobs.len() >= self.cap {
                return Err(PushError::DeadlineExpired);
            }
        }
    }

    /// Dequeues the next job; `None` once the queue is closed **and**
    /// drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                set_queue_depth_gauge(inner.jobs.len());
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Refuses new pushes; queued jobs still drain.
    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }
}

/// State shared by handlers, workers, and the HTTP admin plane.
pub(crate) struct Shared {
    /// Swapped wholesale by `load-program`; every request clones the
    /// current session handle (cheap — `Arc` bumps).
    session: RwLock<QuerySession>,
    /// Sessions for per-request `eval_mode` overrides, created lazily over
    /// the *same* `P3` as the default session (so evaluation results and
    /// the DNF store are shared); cleared by `load-program`.
    sessions_by_mode: RwLock<HashMap<EvalMode, QuerySession>>,
    cache_cap: Option<usize>,
    /// The configured default evaluation mode, applied to the session built
    /// at startup and after every `load-program`.
    eval_mode: EvalMode,
    stats: ServiceStats,
    queue: JobQueue,
    shutdown: AtomicBool,
    workers: usize,
    queue_cap: usize,
    /// Workers currently executing a job (not blocked on `pop`).
    workers_busy: AtomicUsize,
    default_timeout_ms: Option<u64>,
    slow_ms: Option<u64>,
    started: Instant,
    /// The persistent provenance store, when `--store-dir` is configured.
    store: Option<StoreCtx>,
    /// The per-request audit log, when `--audit-dir` is configured.
    audit: Option<AuditLog>,
    /// Rolling-window latency objectives; always on (in-memory only).
    slo: SloEngine,
    /// Whether a tripped fast-burn window fails `readyz`.
    slo_readyz: bool,
}

/// The persistent store attached at startup, plus what its recovery and
/// warm-boot replay found — frozen so `warm` can report it later.
pub(crate) struct StoreCtx {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
    report: RecoveryReport,
    restore: WarmRestore,
    /// Cleared by `load-program`: the store is keyed to the boot-time
    /// program's content hash, so journaling stops once the server is
    /// given a different program.
    active: AtomicBool,
}

impl Shared {
    pub(crate) fn current_session(&self) -> QuerySession {
        self.session.read().unwrap().clone()
    }

    /// The store, unless it was never configured or `load-program`
    /// detached it.
    fn active_store(&self) -> Option<&StoreCtx> {
        self.store
            .as_ref()
            .filter(|s| s.active.load(Ordering::SeqCst))
    }

    /// The session a query op runs against: the default session, unless the
    /// request carried an `eval_mode` override — then a session with that
    /// mode over the same `P3` (created on first use, cached until the next
    /// `load-program`).
    ///
    /// An `auto` override is resolved through [`EvalMode::decide`] — the
    /// same single decision point the default session used — *before* the
    /// cache lookup, so the per-query path can never reach a different
    /// answer than the session path, and a redundant override (resolving
    /// to the mode the default session already runs) reuses that session
    /// instead of building a second one.
    fn session_for(&self, mode: Option<EvalMode>) -> QuerySession {
        let Some(mode) = mode else {
            return self.current_session();
        };
        let current = self.current_session();
        let resolved = mode.decide(current.p3().program()).mode;
        if resolved == current.eval_mode() {
            return current;
        }
        if let Some(session) = self.sessions_by_mode.read().unwrap().get(&resolved) {
            return session.clone();
        }
        let session = current.p3().session_with(SessionOptions {
            max_entries: self.cache_cap,
            eval_mode: resolved,
        });
        self.sessions_by_mode
            .write()
            .unwrap()
            .entry(resolved)
            .or_insert(session)
            .clone()
    }

    /// Installs a freshly loaded program: swaps the default session and
    /// drops the per-mode override sessions (they wrap the old `P3`).
    fn install_session(&self, session: QuerySession) {
        let mut current = self.session.write().unwrap();
        self.sessions_by_mode.write().unwrap().clear();
        *current = session;
    }

    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The queue depth at which the server stops advertising readiness:
    /// 90% of capacity, so load balancers drain traffic *before* pushes
    /// start blocking.
    fn queue_high_water(&self) -> usize {
        (self.queue_cap * 9 / 10).max(1)
    }

    /// The `readyz` decision: ready unless shutting down, the worker pool
    /// is gone, or the server is saturated (queue at its high-water mark
    /// **and** every worker busy — a deep queue alone is fine while
    /// workers are still picking jobs up).
    pub(crate) fn readiness(&self) -> Result<(), String> {
        if self.shutting_down() {
            return Err("shutting down".to_string());
        }
        if self.workers == 0 {
            return Err("no workers".to_string());
        }
        let depth = self.queue.depth();
        let busy = self.workers_busy.load(Ordering::SeqCst);
        let high_water = self.queue_high_water();
        if depth >= high_water && busy >= self.workers {
            return Err(format!(
                "saturated: queue_depth={depth} >= high_water={high_water}, \
                 workers_busy={busy}/{}",
                self.workers
            ));
        }
        if self.slo_readyz && self.slo.any_fast_trip(unix_ms()) {
            return Err("SLO fast-burn window tripped (--slo-readyz)".to_string());
        }
        Ok(())
    }
}

/// A running query server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or let a `shutdown` request / SIGTERM do it) and
/// then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    admin_addr: Option<SocketAddr>,
    accept_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured listeners, spawns the worker pool and starts
    /// accepting. At least one of `tcp`/`unix` must be set.
    pub fn start(p3: P3, config: ServerConfig) -> std::io::Result<Server> {
        if config.tcp.is_none() && config.unix.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "server needs a TCP address or a Unix socket path",
            ));
        }
        let workers = if config.workers == 0 {
            // Surface a bad P3_THREADS as a bind-time error, not a panic.
            if let Err(msg) = p3_prob::parallel::threads_from_env() {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg));
            }
            p3_prob::parallel::default_threads()
        } else {
            config.workers
        };
        p3_obs::process::init(
            env!("CARGO_PKG_VERSION"),
            option_env!("P3_BUILD_GIT").unwrap_or("unknown"),
        );
        let audit = match &config.audit {
            None => None,
            Some(cfg) => {
                p3_audit::log::register_metrics();
                let log = AuditLog::open(cfg.clone())?;
                let stats = log.stats();
                p3_obs::info!(
                    "audit log open",
                    dir = cfg.dir.display(),
                    recovered = stats.records_recovered,
                    segments = stats.segments,
                    truncations = stats.recovery_truncations
                );
                Some(log)
            }
        };
        let session = p3.session_with(SessionOptions {
            max_entries: config.cache_cap,
            eval_mode: config.eval_mode,
        });
        let mut store = None;
        if let Some(dir) = &config.store_dir {
            let opened = FileBackend::open(dir, config.store_fingerprint.unwrap_or(0))?;
            let restore = session.restore_records(&opened.records);
            let backend: Arc<dyn StorageBackend> = Arc::new(opened.backend);
            session.attach_store(Arc::clone(&backend));
            p3_obs::info!(
                "store warm boot",
                dir = dir.display(),
                formulas = restore.formulas,
                dnf_memos = restore.dnf_memos,
                prob_memos = restore.prob_memos,
                skipped = restore.skipped,
                stale = opened.report.stale,
                truncations = opened.report.truncations
            );
            store = Some(StoreCtx {
                backend,
                dir: dir.clone(),
                report: opened.report,
                restore,
                active: AtomicBool::new(true),
            });
        }
        let shared = Arc::new(Shared {
            session: RwLock::new(session),
            sessions_by_mode: RwLock::new(HashMap::new()),
            cache_cap: config.cache_cap,
            eval_mode: config.eval_mode,
            stats: ServiceStats::new(),
            queue: JobQueue::new(config.queue_cap),
            shutdown: AtomicBool::new(false),
            workers,
            queue_cap: config.queue_cap.max(1),
            workers_busy: AtomicUsize::new(0),
            default_timeout_ms: config.default_timeout_ms,
            slow_ms: config.slow_ms,
            started: Instant::now(),
            store,
            audit,
            slo: SloEngine::new(config.slos.clone()),
            slo_readyz: config.slo_readyz,
        });
        // Register every gauge family up front so the first scrape sees
        // them even before the first request.
        refresh_gauges(&shared);

        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let shared = Arc::clone(&shared);
            accept_threads.push(
                std::thread::Builder::new()
                    .name("p3-accept-tcp".into())
                    .spawn(move || accept_loop_tcp(listener, shared))?,
            );
        }
        let mut unix_path = None;
        if let Some(path) = &config.unix {
            // A stale socket file from a previous run would fail the bind.
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            let shared = Arc::clone(&shared);
            accept_threads.push(
                std::thread::Builder::new()
                    .name("p3-accept-unix".into())
                    .spawn(move || accept_loop_unix(listener, shared))?,
            );
        }

        let mut admin_addr = None;
        if let Some(addr) = &config.admin {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            admin_addr = Some(listener.local_addr()?);
            let shared = Arc::clone(&shared);
            accept_threads.push(
                std::thread::Builder::new()
                    .name("p3-admin".into())
                    .spawn(move || crate::admin::accept_loop(listener, shared))?,
            );
        }

        let worker_threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("p3-worker-{i}"))
                    .spawn(move || worker_loop(shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(Server {
            shared,
            tcp_addr,
            unix_path,
            admin_addr,
            accept_threads,
            worker_threads,
        })
    }

    /// The bound admin-plane address (with the ephemeral port resolved),
    /// if the HTTP admin plane is enabled.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The bound TCP address (with the ephemeral port resolved), if TCP is
    /// enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if enabled.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Whether shutdown has been initiated (by [`Server::shutdown`] or a
    /// client's `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Initiates graceful shutdown: refuse new connections and pushes, let
    /// queued work drain.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until shutdown is initiated — by a client's `shutdown`
    /// request or by `external` turning true (e.g. a SIGTERM flag) — then
    /// drains and joins everything.
    pub fn serve_until_shutdown(self, external: &AtomicBool) {
        while !self.shared.shutting_down() {
            if external.load(Ordering::Relaxed) {
                self.shared.initiate_shutdown();
                break;
            }
            std::thread::sleep(POLL);
        }
        self.join();
    }

    /// Waits for accept loops and workers to finish. Call after
    /// [`Server::shutdown`] (or a client-initiated shutdown), otherwise
    /// this blocks until one happens.
    pub fn join(self) {
        for t in self.accept_threads {
            let _ = t.join();
        }
        for t in self.worker_threads {
            let _ = t.join();
        }
        // Workers are gone, so the session is quiescent: compact the
        // persistent store so the next boot replays one clean snapshot
        // instead of the whole journal tail.
        if let Some(store) = self.shared.active_store() {
            let records = self.shared.current_session().export_records();
            if let Err(e) = store
                .backend
                .snapshot(&records)
                .and_then(|()| store.backend.flush())
            {
                p3_obs::warn!(
                    "final store compaction failed",
                    dir = store.dir.display(),
                    error = e.to_string()
                );
            }
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_loop_tcp(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("p3-conn".into())
                    .spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        handle_connection(BufReader::new(reader), stream, shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn accept_loop_unix(listener: UnixListener, shared: Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("p3-conn".into())
                    .spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        handle_connection(BufReader::new(reader), stream, shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Serves one connection until EOF, write failure, or shutdown.
fn handle_connection<R: BufRead, W: Write>(mut reader: R, mut writer: W, shared: Arc<Shared>) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or broken pipe
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&line, &shared);
        let mut payload = response.to_line();
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        // Once shutdown is initiated the response above is the last one this
        // connection gets; closing nudges idle clients to go away.
        if shared.shutting_down() {
            return;
        }
    }
}

/// Records one finished request in the process-wide metric registry.
fn record_request_metrics(class: &str, latency: Duration) {
    let labels = p3_obs::metrics::render_labels(&[("class", class)]);
    p3_obs::metrics::labeled_counter(
        "p3_service_requests_total",
        "Requests handled, by op class (including malformed lines)",
        &labels,
    )
    .inc();
    p3_obs::metrics::labeled_histogram(
        "p3_service_request_latency_us",
        "End-to-end request latency in microseconds (queue wait + execution)",
        &labels,
    )
    .observe(latency.as_micros().min(u64::MAX as u128) as u64);
}

/// Worker-side facts about a finished request, filled in by `dispatch`
/// for the slow-request log and the audit record (zero for inline admin
/// ops, which have no queue wait or execution split).
#[derive(Default)]
struct RequestMeta {
    queue_wait_us: u64,
    execute_us: u64,
    session_hits: u64,
    session_misses: u64,
    stages: Vec<StageTiming>,
    derived_tuples: u64,
    dnf_monomials: u64,
    dnf_literals: u64,
    store_records: u64,
    extract_memo_hits: u64,
    extract_memo_misses: u64,
    lint_reject: bool,
    rule_cost: u64,
    top_rules: Vec<(String, u64)>,
}

/// Builds this request's audit record, feeds the SLO engine, and appends
/// to the audit log when one is configured. Called exactly once per
/// request line — queries, inline admin ops, and malformed lines alike —
/// which is what makes "one request, one record" an invariant rather
/// than a convention.
#[allow(clippy::too_many_arguments)]
fn audit_request(
    shared: &Shared,
    class: &str,
    trace: &str,
    eval_mode: EvalMode,
    query_hash: u64,
    outcome: p3_audit::Outcome,
    elapsed: Duration,
    meta: RequestMeta,
) {
    let now_ms = unix_ms();
    let ok = outcome == p3_audit::Outcome::Ok;
    shared.slo.record(
        class,
        now_ms,
        ok,
        elapsed.as_millis().min(u64::MAX as u128) as u64,
    );
    let Some(audit) = &shared.audit else {
        return;
    };
    let record = AuditRecord {
        ts_ms: now_ms,
        trace: trace.to_string(),
        class: class.to_string(),
        eval_mode: eval_mode.as_str().to_string(),
        query_hash,
        outcome,
        queue_wait_us: meta.queue_wait_us,
        execute_us: meta.execute_us,
        total_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
        stages: meta.stages,
        derived_tuples: meta.derived_tuples,
        dnf_monomials: meta.dnf_monomials,
        dnf_literals: meta.dnf_literals,
        session_hits: meta.session_hits,
        session_misses: meta.session_misses,
        store_records: meta.store_records,
        extract_memo_hits: meta.extract_memo_hits,
        extract_memo_misses: meta.extract_memo_misses,
        rule_cost: meta.rule_cost,
        top_rules: meta.top_rules,
    };
    if let Err(e) = audit.append(record) {
        p3_obs::warn!(
            "audit append failed",
            dir = audit.dir().display(),
            error = e.to_string()
        );
    }
}

/// Parses and dispatches one request line; always produces a response.
fn handle_line(line: &str, shared: &Shared) -> Response {
    let start = Instant::now();
    let request = match Request::parse(line) {
        Ok(req) => req,
        Err(msg) => {
            let elapsed = start.elapsed();
            shared.stats.record("malformed", elapsed, Outcome::Error);
            record_request_metrics("malformed", elapsed);
            audit_request(
                shared,
                "malformed",
                "",
                shared.eval_mode,
                0,
                p3_audit::Outcome::Error,
                elapsed,
                RequestMeta::default(),
            );
            return Response::error(None, msg);
        }
    };
    let class = request.op.class();
    let mut meta = RequestMeta::default();
    let response = dispatch(&request, shared, start, &mut meta);
    let outcome = match response.status {
        crate::protocol::Status::Ok => Outcome::Ok,
        crate::protocol::Status::Error => Outcome::Error,
        crate::protocol::Status::Timeout => Outcome::Timeout,
    };
    let elapsed = start.elapsed();
    shared.stats.record(class, elapsed, outcome);
    record_request_metrics(class, elapsed);
    let audit_outcome = match response.status {
        crate::protocol::Status::Ok => p3_audit::Outcome::Ok,
        crate::protocol::Status::Timeout => p3_audit::Outcome::Timeout,
        crate::protocol::Status::Error if meta.lint_reject => p3_audit::Outcome::LintReject,
        crate::protocol::Status::Error => p3_audit::Outcome::Error,
    };
    let query_hash = request.op.query_text().map(p3_audit::fnv1a_64).unwrap_or(0);
    let slow_meta = (
        meta.queue_wait_us,
        meta.execute_us,
        meta.session_hits,
        meta.session_misses,
    );
    audit_request(
        shared,
        class,
        request.trace.as_deref().unwrap_or(""),
        request.eval_mode.unwrap_or(shared.eval_mode),
        query_hash,
        audit_outcome,
        elapsed,
        meta,
    );
    let (queue_wait_us, execute_us, session_hits, session_misses) = slow_meta;
    p3_obs::debug!(
        "request served",
        class = class,
        outcome = format!("{outcome:?}"),
        latency_us = elapsed.as_micros(),
    );
    if let Some(slow_ms) = shared.slow_ms {
        if elapsed >= Duration::from_millis(slow_ms) {
            p3_obs::counter!(
                "p3_service_slow_requests_total",
                "Requests that exceeded the --slow-ms threshold"
            )
            .inc();
            p3_obs::warn!(
                "slow request",
                class = class,
                latency_ms = elapsed.as_millis(),
                threshold_ms = slow_ms,
                queue_wait_us = queue_wait_us,
                execute_us = execute_us,
                session_hits = session_hits,
                session_misses = session_misses,
            );
        }
    }
    response
}

fn dispatch(
    request: &Request,
    shared: &Shared,
    received: Instant,
    meta: &mut RequestMeta,
) -> Response {
    // The root span covers the request's whole server-side life: parse is
    // already done, so this is queue wait + execution + reply marshalling.
    let mut span = p3_obs::span::span("request");
    span.add_field("class", request.op.class());
    if let Some(id) = request.id {
        span.add_field("request_id", id);
    }
    // Adopt the client's trace id: the one field that links this tree with
    // the client-side connect/send/recv spans recorded in another process.
    if let Some(trace) = &request.trace {
        span.add_field("trace", trace);
    }
    match &request.op {
        // Admin ops answer inline: they must work while the queue is full.
        Op::Ping => Response::ok(request.id, Value::object(vec![("pong", Value::from(true))])),
        Op::Stats => Response::ok(request.id, stats_snapshot(shared)),
        Op::Metrics => Response::ok(request.id, metrics_snapshot(shared)),
        Op::Trace { n } => Response::ok(request.id, trace_snapshot(*n)),
        Op::Warm => Response::ok(request.id, warm_snapshot(shared)),
        Op::StoreStats => Response::ok(request.id, store_stats_snapshot(shared)),
        Op::AuditTail { n } => Response::ok(request.id, audit_tail_snapshot(shared, *n)),
        Op::AuditTop { by, n } => Response::ok(request.id, audit_top_snapshot(shared, *by, *n)),
        Op::Slo => Response::ok(request.id, slo_snapshot(shared)),
        Op::Shutdown => {
            shared.initiate_shutdown();
            Response::ok(
                request.id,
                Value::object(vec![("shutting_down", Value::from(true))]),
            )
        }
        op => {
            let timeout_ms = request.timeout_ms.or(shared.default_timeout_ms);
            let deadline = timeout_ms.map(|ms| received + Duration::from_millis(ms));
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Response::timeout(
                        request.id,
                        format!("deadline of {}ms expired", timeout_ms.unwrap_or(0)),
                    );
                }
            }
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            let job = Job {
                op: op.clone(),
                hop_limit: request.hop_limit,
                eval_mode: request.eval_mode,
                deadline,
                enqueued: Instant::now(),
                root_span: span.id(),
                reply: reply_tx,
            };
            match shared.queue.push(job) {
                Err(PushError::Closed) => {
                    return Response::error(request.id, "server is shutting down")
                }
                Err(PushError::DeadlineExpired) => {
                    return Response::timeout(
                        request.id,
                        format!(
                            "deadline of {}ms expired while queued",
                            timeout_ms.unwrap_or(0)
                        ),
                    )
                }
                Ok(()) => {}
            }
            // The handler is the watchdog: wait only until the deadline.
            let answer = match deadline {
                None => reply_rx.recv().map_err(|_| ()),
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    reply_rx.recv_timeout(left).map_err(|_| ())
                }
            };
            match answer {
                Ok(answer) => {
                    meta.queue_wait_us = answer.queue_wait_us;
                    meta.execute_us = answer.execute_us;
                    meta.session_hits = answer.session_hits;
                    meta.session_misses = answer.session_misses;
                    meta.stages = answer.facts.stages;
                    meta.dnf_monomials = answer.facts.dnf_monomials;
                    meta.dnf_literals = answer.facts.dnf_literals;
                    meta.lint_reject = answer.facts.lint_reject;
                    meta.derived_tuples = answer.derived_tuples;
                    meta.store_records = answer.store_records;
                    meta.extract_memo_hits = answer.extract_memo_hits;
                    meta.extract_memo_misses = answer.extract_memo_misses;
                    meta.rule_cost = answer.rule_cost;
                    meta.top_rules = answer.top_rules;
                    match answer.result {
                        Ok(result) => Response::ok(request.id, result),
                        Err(msg) => Response::error(request.id, msg),
                    }
                }
                Err(()) => Response::timeout(
                    request.id,
                    format!("deadline of {}ms expired", timeout_ms.unwrap_or(0)),
                ),
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let queue_wait_us = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
        // Don't burn CPU on work nobody is waiting for anymore.
        if let Some(d) = job.deadline {
            if Instant::now() >= d {
                continue;
            }
        }
        set_workers_busy_gauge(shared.workers_busy.fetch_add(1, Ordering::SeqCst) + 1);
        // Parent the worker-side span under the handler's request span:
        // the id travelled with the job across the thread hop. The span
        // must finish (and land in the ring) before the reply is sent, or
        // an immediate `trace` request could miss it.
        let executing = Instant::now();
        let session = shared.session_for(job.eval_mode);
        let stats_before = session.stats();
        // Process-global counter snapshots bracketing the execution: the
        // deltas are this op's cost, give or take concurrent requests'
        // traffic on the same counters (documented as approximate).
        let tuples_before = derived_tuples_total();
        let rule_cost_before = session.p3().rule_cost_total();
        let (extract_hits_before, extract_misses_before) = p3_provenance::extract::memo_counters();
        let store_records_before = shared
            .active_store()
            .map(|s| s.backend.stats().records_written)
            .unwrap_or(0);
        let mut facts = ExecFacts::default();
        let result = {
            let mut span = p3_obs::span::child_of("execute", job.root_span);
            span.add_field("class", job.op.class());
            let result = execute(&session, &shared, &job.op, job.hop_limit, &mut facts);
            span.add_field("ok", result.is_ok());
            result
        };
        let stats_after = session.stats();
        // Make whatever the op journaled durable before the client hears
        // the answer: a SIGKILL after the reply then replays this state.
        if let Some(store) = shared.active_store() {
            if let Err(e) = store.backend.flush() {
                p3_obs::error!(
                    "store flush failed",
                    dir = store.dir.display(),
                    error = e.to_string()
                );
            }
        }
        set_workers_busy_gauge(
            shared
                .workers_busy
                .fetch_sub(1, Ordering::SeqCst)
                .saturating_sub(1),
        );
        let (extract_hits_after, extract_misses_after) = p3_provenance::extract::memo_counters();
        let store_records_after = shared
            .active_store()
            .map(|s| s.backend.stats().records_written)
            .unwrap_or(store_records_before);
        // Rule-cost attribution: only ops that forced an evaluation moved
        // the tally, so only those carry a top-rules exemplar.
        let rule_cost = session
            .p3()
            .rule_cost_total()
            .saturating_sub(rule_cost_before);
        let top_rules = if rule_cost > 0 {
            session.p3().top_rules(p3_audit::MAX_TOP_RULES)
        } else {
            Vec::new()
        };
        // The handler may have timed out and gone; that's fine.
        let _ = job.reply.send(Answer {
            result,
            queue_wait_us,
            execute_us: executing.elapsed().as_micros().min(u64::MAX as u128) as u64,
            session_hits: stats_after.hits.saturating_sub(stats_before.hits),
            session_misses: stats_after.misses.saturating_sub(stats_before.misses),
            facts,
            derived_tuples: derived_tuples_total().saturating_sub(tuples_before),
            store_records: store_records_after.saturating_sub(store_records_before),
            extract_memo_hits: extract_hits_after.saturating_sub(extract_hits_before),
            extract_memo_misses: extract_misses_after.saturating_sub(extract_misses_before),
            rule_cost,
            top_rules,
        });
    }
}

fn extract_opts(hop_limit: Option<usize>) -> ExtractOptions {
    match hop_limit {
        Some(limit) => ExtractOptions::with_max_depth(limit),
        None => ExtractOptions::unbounded(),
    }
}

/// Runs a query op against the shared session. Every result is a JSON
/// object; errors are strings (surfaced as `"status":"error"`).
fn execute(
    session: &QuerySession,
    shared: &Shared,
    op: &Op,
    hop_limit: Option<usize>,
    facts: &mut ExecFacts,
) -> Result<Value, String> {
    let p3 = session.p3();
    match op {
        Op::Ping
        | Op::Stats
        | Op::Metrics
        | Op::Trace { .. }
        | Op::Shutdown
        | Op::Warm
        | Op::StoreStats
        | Op::AuditTail { .. }
        | Op::AuditTop { .. }
        | Op::Slo => {
            unreachable!("admin ops answer inline")
        }
        Op::Persist => {
            let store = shared.active_store().ok_or_else(|| {
                "no active store: start the server with --store-dir \
                 (load-program detaches the store)"
                    .to_string()
            })?;
            // Export from the default session — that is the one the store
            // journals; per-mode override sessions share its DnfStore.
            let records = shared.current_session().export_records();
            facts
                .timed("persist", || {
                    store
                        .backend
                        .snapshot(&records)
                        .and_then(|()| store.backend.flush())
                })
                .map_err(|e| format!("store compaction failed: {e}"))?;
            let stats = store.backend.stats();
            Ok(Value::object(vec![
                ("persisted", Value::from(true)),
                ("records", Value::from(records.len())),
                ("snapshot_bytes", Value::from(stats.snapshot_bytes)),
            ]))
        }
        Op::LoadProgram { source, path, lint } => {
            let text = match (source, path) {
                (Some(src), _) => src.clone(),
                (None, Some(p)) => {
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?
                }
                (None, None) => unreachable!("validated at parse time"),
            };
            // Pre-flight lint: findings go to the structured log either
            // way; error-severity findings reject the program unless the
            // request opted out with `"lint": false`.
            let report = facts.timed("lint", || p3_lint::lint_source(&text));
            for d in &report.diagnostics {
                p3_obs::info!(
                    "lint finding on load-program",
                    code = d.code,
                    severity = d.severity.as_str(),
                    line = d.line,
                    column = d.column,
                    message = d.message
                );
            }
            if *lint && report.has_errors() {
                facts.lint_reject = true;
                let mut msg = format!("program rejected by lint: {}", report.summary_line());
                for d in report.at_least(p3_lint::Severity::Error) {
                    msg.push_str(&format!("; {d}"));
                }
                return Err(msg);
            }
            let fresh = facts
                .timed("load", || P3::from_source(&text))
                .map_err(|e| e.to_string())?;
            let clauses = fresh.program().len();
            let new_session = fresh.session_with(SessionOptions {
                max_entries: shared.cache_cap,
                eval_mode: shared.eval_mode,
            });
            // Forcing the whole model here would defeat a demand-mode
            // server, so the materialised size is reported only when the
            // session evaluates naively (`null` otherwise).
            let tuples = match new_session.eval_mode() {
                EvalMode::Demand => Value::Null,
                _ => Value::from(fresh.database().len()),
            };
            let eval_mode = new_session.eval_mode().as_str();
            // The store is keyed to the boot-time program's content hash;
            // a different program must not journal into it (or warm-boot
            // from it), so detach before the swap. Restart with
            // --store-dir to persist the new program.
            if let Some(store) = shared.active_store() {
                store.active.store(false, Ordering::SeqCst);
                shared.current_session().detach_store();
                p3_obs::warn!(
                    "persistent store detached: load-program changed the program",
                    dir = store.dir.display()
                );
            }
            shared.install_session(new_session);
            Ok(Value::object(vec![
                ("loaded", Value::from(true)),
                ("clauses", Value::from(clauses)),
                ("tuples", tuples),
                ("eval_mode", Value::from(eval_mode.to_string())),
                ("lint_errors", Value::from(report.error_count())),
                ("lint_warnings", Value::from(report.warn_count())),
                ("lint_notes", Value::from(report.info_count())),
            ]))
        }
        Op::Lint { source, path } => {
            let (text, name) = match (source, path) {
                (Some(src), _) => (src.clone(), "<inline>".to_string()),
                (None, Some(p)) => (
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
                    p.clone(),
                ),
                (None, None) => unreachable!("validated at parse time"),
            };
            let report = facts.timed("lint", || p3_lint::lint_source(&text));
            let findings = Value::parse(&report.to_json())
                .map_err(|e| format!("internal: bad findings JSON: {e}"))?;
            Ok(Value::object(vec![
                ("clean", Value::from(report.is_clean())),
                ("errors", Value::from(report.error_count())),
                ("warnings", Value::from(report.warn_count())),
                ("notes", Value::from(report.info_count())),
                ("findings", findings),
                (
                    "content_type",
                    Value::from("text/plain; lint=p3".to_string()),
                ),
                ("text", Value::from(report.render(Some(&text), Some(&name)))),
            ]))
        }
        Op::Probability { query, method } => {
            let id = facts
                .timed("extract", || {
                    session.provenance_id_with(query, extract_opts(hop_limit))
                })
                .map_err(|e| e.to_string())?;
            let p = facts.timed("probability", || session.probability_of(id, *method));
            facts.note_dnf(&session.dnf(id));
            Ok(Value::object(vec![
                ("query", Value::from(query.clone())),
                ("probability", Value::from(p)),
                ("derivations", Value::from(session.dnf(id).len())),
            ]))
        }
        Op::Explanation { query, method } => {
            let explanation = facts
                .timed("explanation", || {
                    p3.explain_with(query, *method, extract_opts(hop_limit))
                })
                .map_err(|e| e.to_string())?;
            facts.note_dnf(&explanation.polynomial);
            Ok(Value::object(vec![
                ("query", Value::from(query.clone())),
                ("probability", Value::from(explanation.probability)),
                ("num_derivations", Value::from(explanation.num_derivations)),
                (
                    "polynomial",
                    Value::from(p3.render_polynomial(&explanation.polynomial)),
                ),
                ("text", Value::from(explanation.text)),
                ("dot", Value::from(explanation.dot)),
            ]))
        }
        Op::Derivation {
            query,
            eps,
            algo,
            method,
        } => {
            let id = facts
                .timed("extract", || {
                    session.provenance_id_with(query, extract_opts(hop_limit))
                })
                .map_err(|e| e.to_string())?;
            facts.note_dnf(&session.dnf(id));
            let s = facts.timed("derivation", || {
                session.sufficient_provenance_of(id, *eps, *algo, *method)
            });
            Ok(Value::object(vec![
                ("query", Value::from(query.clone())),
                ("kept", Value::from(s.polynomial.len())),
                ("original", Value::from(s.original_len)),
                ("probability", Value::from(s.probability)),
                ("original_probability", Value::from(s.original_probability)),
                ("error", Value::from(s.error)),
                ("compression_ratio", Value::from(s.compression_ratio)),
                (
                    "polynomial",
                    Value::from(p3.render_polynomial(&s.polynomial)),
                ),
            ]))
        }
        Op::Influence {
            query,
            method,
            top_k,
            preprocess_epsilon,
        } => {
            let id = facts
                .timed("extract", || {
                    session.provenance_id_with(query, extract_opts(hop_limit))
                })
                .map_err(|e| e.to_string())?;
            facts.note_dnf(&session.dnf(id));
            let entries = facts.timed("influence", || {
                session.influence_of(
                    id,
                    &InfluenceOptions {
                        method: *method,
                        top_k: *top_k,
                        preprocess_epsilon: *preprocess_epsilon,
                        restrict_to: None,
                    },
                )
            });
            let vars = p3.vars();
            Ok(Value::object(vec![
                ("query", Value::from(query.clone())),
                (
                    "entries",
                    Value::Array(
                        entries
                            .iter()
                            .map(|e| {
                                Value::object(vec![
                                    ("var", Value::from(vars.name(e.var).to_string())),
                                    ("influence", Value::from(e.influence)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        Op::Modification {
            query,
            target,
            tolerance,
        } => {
            let plan = facts
                .timed("modification", || {
                    session.modification(
                        query,
                        *target,
                        &ModificationOptions {
                            tolerance: *tolerance,
                            ..Default::default()
                        },
                    )
                })
                .map_err(|e| e.to_string())?;
            let vars = p3.vars();
            Ok(Value::object(vec![
                ("query", Value::from(query.clone())),
                ("target", Value::from(*target)),
                (
                    "steps",
                    Value::Array(
                        plan.steps
                            .iter()
                            .map(|s| {
                                Value::object(vec![
                                    ("var", Value::from(vars.name(s.var).to_string())),
                                    ("from", Value::from(s.from)),
                                    ("to", Value::from(s.to)),
                                    (
                                        "resulting_probability",
                                        Value::from(s.resulting_probability),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("total_cost", Value::from(plan.total_cost)),
                ("initial_probability", Value::from(plan.initial_probability)),
                (
                    "achieved_probability",
                    Value::from(plan.achieved_probability),
                ),
                ("reached_target", Value::from(plan.reached_target)),
            ]))
        }
        Op::Profile { inner } => {
            let (query, target) = match &**inner {
                Op::Probability { query, method } => (query, ProfileTarget::Probability(*method)),
                Op::Explanation { query, method } => (query, ProfileTarget::Explanation(*method)),
                Op::Derivation {
                    query,
                    eps,
                    algo,
                    method,
                } => (
                    query,
                    ProfileTarget::Derivation {
                        eps: *eps,
                        algo: *algo,
                        method: *method,
                    },
                ),
                Op::Influence {
                    query,
                    method,
                    top_k,
                    preprocess_epsilon,
                } => (
                    query,
                    ProfileTarget::Influence(InfluenceOptions {
                        method: *method,
                        top_k: *top_k,
                        preprocess_epsilon: *preprocess_epsilon,
                        restrict_to: None,
                    }),
                ),
                Op::Modification {
                    query,
                    target,
                    tolerance,
                } => (
                    query,
                    ProfileTarget::Modification {
                        target: *target,
                        opts: ModificationOptions {
                            tolerance: *tolerance,
                            ..Default::default()
                        },
                    },
                ),
                other => return Err(format!("cannot profile op class '{}'", other.class())),
            };
            let profile = session
                .profile(query, &target, extract_opts(hop_limit))
                .map_err(|e| e.to_string())?;
            // The profiler already split the run into stages; adopt its
            // breakdown verbatim for the audit record.
            facts.stages = profile
                .stages
                .iter()
                .map(|s| StageTiming {
                    name: s.name.to_string(),
                    wall_us: s.wall_us,
                })
                .collect();
            Ok(profile_value(&profile))
        }
        Op::Explain { query } => {
            let explained = facts
                .timed("explain", || session.explain(query))
                .map_err(|e| e.to_string())?;
            facts.dnf_monomials = explained.shape.monomials as u64;
            facts.dnf_literals = explained.shape.literals as u64;
            // The explain type owns the canonical JSON shape (shared with
            // `p3 explain --json`); parse it back rather than re-encoding.
            Value::parse(&explained.to_json_string())
                .map_err(|e| format!("explain payload encoding: {e}"))
        }
        Op::Analyze { query } => {
            let plan = facts.timed("analyze", || session.analyze(query.as_deref()));
            // The plan type owns the canonical JSON shape (shared with
            // `p3 analyze --json`); parse it back rather than re-encoding.
            Value::parse(&plan.to_json_string())
                .map_err(|e| format!("analyze payload encoding: {e}"))
        }
    }
}

/// Renders a [`QueryProfile`] as the `profile` op's result payload.
fn profile_value(profile: &QueryProfile) -> Value {
    Value::object(vec![
        ("query", Value::from(profile.query.clone())),
        ("class", Value::from(profile.class.to_string())),
        ("total_us", Value::from(profile.total_us)),
        (
            "probability",
            profile.probability.map(Value::from).unwrap_or(Value::Null),
        ),
        (
            "stages",
            Value::Array(
                profile
                    .stages
                    .iter()
                    .map(|s| {
                        let pair = |hits: u64, misses: u64| {
                            Value::object(vec![
                                ("hits", Value::from(hits)),
                                ("misses", Value::from(misses)),
                            ])
                        };
                        Value::object(vec![
                            ("name", Value::from(s.name.to_string())),
                            ("wall_us", Value::from(s.wall_us)),
                            ("session", pair(s.session_hits, s.session_misses)),
                            (
                                "store_intern",
                                pair(s.store_intern_hits, s.store_intern_misses),
                            ),
                            ("store_ops", pair(s.store_op_hits, s.store_op_misses)),
                            (
                                "extract_memo",
                                pair(s.extract_memo_hits, s.extract_memo_misses),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `stats` payload: server counters plus the shared cache counters.
fn stats_snapshot(shared: &Shared) -> Value {
    let session = shared.current_session();
    let s = session.stats();
    let store = session.p3().store().stats();
    Value::object(vec![
        (
            "uptime_ms",
            Value::from(shared.started.elapsed().as_millis() as u64),
        ),
        ("workers", Value::from(shared.workers)),
        (
            "eval_mode",
            Value::from(session.eval_mode().as_str().to_string()),
        ),
        ("queue_depth", Value::from(shared.queue.depth())),
        ("queue_capacity", Value::from(shared.queue_cap)),
        ("total_requests", Value::from(shared.stats.total())),
        ("requests", shared.stats.snapshot()),
        (
            "session",
            Value::object(vec![
                ("hits", Value::from(s.hits)),
                ("misses", Value::from(s.misses)),
                ("evictions", Value::from(s.evictions)),
                ("resident", Value::from(s.resident)),
                ("warm_restored", Value::from(s.warm_restored)),
            ]),
        ),
        (
            "persist",
            match &shared.store {
                None => Value::object(vec![("enabled", Value::from(false))]),
                Some(store) => Value::object(vec![
                    ("enabled", Value::from(true)),
                    ("active", Value::from(store.active.load(Ordering::SeqCst))),
                    (
                        "records_written",
                        Value::from(store.backend.stats().records_written),
                    ),
                    ("warm_restored", Value::from(store.restore.memos())),
                ]),
            },
        ),
        (
            "store",
            Value::object(vec![
                ("formulas", Value::from(store.formulas)),
                ("intern_hits", Value::from(store.intern_hits)),
                ("intern_misses", Value::from(store.intern_misses)),
                ("op_hits", Value::from(store.op_hits)),
                ("op_misses", Value::from(store.op_misses)),
            ]),
        ),
        ("engine", engine_stats_value(&session)),
    ])
}

/// The `stats` payload's `engine` section: run-level [`EngineStats`] and
/// per-stratum [`StratumStats`] aggregated over every evaluation the
/// session's system has retained a plan for.
///
/// [`EngineStats`]: p3_datalog::engine::EngineStats
/// [`StratumStats`]: p3_datalog::engine::StratumStats
fn engine_stats_value(session: &QuerySession) -> Value {
    let plans = session.p3().explain_plans();
    let (mut iterations, mut firings, mut tuples) = (0u64, 0u64, 0u64);
    // Strata aggregate positionally: stratum i of every retained plan is
    // the same program layer, so its counters sum meaningfully.
    let mut strata: Vec<(u64, u64, u64)> = Vec::new();
    for plan in &plans {
        iterations += plan.stats.iterations as u64;
        firings += plan.stats.firings as u64;
        tuples += plan.stats.tuples as u64;
        for (i, st) in plan.strata.iter().enumerate() {
            if strata.len() <= i {
                strata.resize(i + 1, (0, 0, 0));
            }
            strata[i].0 += st.iterations as u64;
            strata[i].1 += st.firings as u64;
            strata[i].2 += st.derived_tuples as u64;
        }
    }
    Value::object(vec![
        ("evaluations", Value::from(plans.len())),
        (
            "rule_cost_total",
            Value::from(session.p3().rule_cost_total()),
        ),
        ("iterations", Value::from(iterations)),
        ("firings", Value::from(firings)),
        ("derived_tuples", Value::from(tuples)),
        (
            "strata",
            Value::Array(
                strata
                    .iter()
                    .enumerate()
                    .map(|(i, (it, fi, tu))| {
                        Value::object(vec![
                            ("stratum", Value::from(i)),
                            ("iterations", Value::from(*it)),
                            ("firings", Value::from(*fi)),
                            ("derived_tuples", Value::from(*tu)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `GET /analyze` payload: the static cost prediction for the
/// currently loaded program — ranked predicted rule costs, per-predicate
/// cardinality and DNF-width bounds, the eval-mode recommendation with
/// its reason, and any `P37xx` diagnostics. Computed fresh per request
/// (analysis is microseconds) and evaluates nothing.
pub(crate) fn analyze_snapshot(shared: &Shared) -> Value {
    let session = shared.current_session();
    let plan = session.analyze(None);
    Value::parse(&plan.to_json_string()).unwrap_or_else(|e| {
        Value::object(vec![(
            "error",
            Value::from(format!("analyze payload encoding: {e}")),
        )])
    })
}

/// The `GET /explain` payload: the current session's accumulated cost
/// attribution — every retained [`ExplainPlan`] plus the cross-plan
/// top-rules ranking — for operators who want "which rules are burning
/// the CPU?" without crafting a query.
///
/// [`ExplainPlan`]: p3_datalog::explain::ExplainPlan
pub(crate) fn explain_snapshot(shared: &Shared) -> Value {
    let session = shared.current_session();
    let p3 = session.p3();
    let plans = p3.explain_plans();
    Value::object(vec![
        (
            "eval_mode",
            Value::from(session.eval_mode().as_str().to_string()),
        ),
        ("evaluations", Value::from(plans.len())),
        ("rule_cost_total", Value::from(p3.rule_cost_total())),
        (
            "top_rules",
            Value::Array(
                p3.top_rules(p3_datalog::explain::METRIC_TOP_RULES)
                    .into_iter()
                    .map(|(rule, cost)| {
                        Value::object(vec![
                            ("rule", Value::from(rule)),
                            ("cost", Value::from(cost)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "plans",
            Value::Array(plans.iter().map(explain_plan_value).collect()),
        ),
    ])
}

/// One retained [`ExplainPlan`](p3_datalog::explain::ExplainPlan) as JSON
/// (the per-evaluation entries of `GET /explain`).
fn explain_plan_value(plan: &p3_datalog::explain::ExplainPlan) -> Value {
    Value::object(vec![
        ("mode", Value::from(plan.mode.to_string())),
        ("total_cost", Value::from(plan.total_cost())),
        ("iterations", Value::from(plan.stats.iterations)),
        ("firings", Value::from(plan.stats.firings)),
        ("tuples", Value::from(plan.stats.tuples)),
        (
            "rules",
            Value::Array(
                plan.rules
                    .iter()
                    .map(|r| {
                        Value::object(vec![
                            ("rule", Value::from(r.label.clone())),
                            ("head", Value::from(r.head.clone())),
                            ("recursive", Value::from(r.recursive)),
                            ("cost", Value::from(r.cost())),
                            ("firings", Value::from(r.firings)),
                            ("new_tuples", Value::from(r.new_tuples)),
                            ("candidates", Value::from(r.candidates)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "magic_cost",
            plan.magic
                .map(|m| Value::from(m.cost()))
                .unwrap_or(Value::Null),
        ),
    ])
}

/// The `warm` payload: what the persistent store's recovery and warm-boot
/// replay found at startup (frozen at boot — live counters are under
/// `store-stats`).
fn warm_snapshot(shared: &Shared) -> Value {
    let Some(store) = &shared.store else {
        return Value::object(vec![("enabled", Value::from(false))]);
    };
    Value::object(vec![
        ("enabled", Value::from(true)),
        ("active", Value::from(store.active.load(Ordering::SeqCst))),
        ("dir", Value::from(store.dir.display().to_string())),
        ("stale", Value::from(store.report.stale)),
        (
            "recovery_truncations",
            Value::from(u64::from(store.report.truncations)),
        ),
        (
            "recovery_truncated_bytes",
            Value::from(store.report.truncated_bytes),
        ),
        (
            "snapshot_records",
            Value::from(store.report.snapshot_records),
        ),
        ("log_records", Value::from(store.report.log_records)),
        ("restored_formulas", Value::from(store.restore.formulas)),
        ("restored_dnf_memos", Value::from(store.restore.dnf_memos)),
        ("restored_prob_memos", Value::from(store.restore.prob_memos)),
        ("restored_skipped", Value::from(store.restore.skipped)),
    ])
}

/// The `store-stats` payload: live backend counters.
fn store_stats_snapshot(shared: &Shared) -> Value {
    let Some(store) = &shared.store else {
        return Value::object(vec![("enabled", Value::from(false))]);
    };
    let stats = store.backend.stats();
    Value::object(vec![
        ("enabled", Value::from(true)),
        ("active", Value::from(store.active.load(Ordering::SeqCst))),
        ("kind", Value::from(stats.kind.to_string())),
        ("records_written", Value::from(stats.records_written)),
        ("pending_records", Value::from(stats.pending_records)),
        ("snapshot_records", Value::from(stats.snapshot_records)),
        ("snapshot_bytes", Value::from(stats.snapshot_bytes)),
        (
            "recovery_truncations",
            Value::from(stats.recovery_truncations),
        ),
    ])
}

/// One audit record as a JSON value — the audit crate owns the canonical
/// JSON shape; the service parses it back rather than re-encoding.
fn audit_record_value(record: &AuditRecord) -> Value {
    Value::parse(&record.to_json_string()).unwrap_or(Value::Null)
}

/// The audit log's live counters as a JSON object.
fn audit_stats_value(stats: &p3_audit::AuditStats) -> Value {
    Value::object(vec![
        ("records_appended", Value::from(stats.records_appended)),
        ("records_recovered", Value::from(stats.records_recovered)),
        ("segments", Value::from(stats.segments)),
        ("total_bytes", Value::from(stats.total_bytes)),
        ("rotations", Value::from(stats.rotations)),
        ("pruned", Value::from(stats.pruned)),
        (
            "recovery_truncations",
            Value::from(stats.recovery_truncations),
        ),
    ])
}

/// The `audit-tail` payload (and `GET /audit`): the `n` most recent
/// audit records, newest first, plus the log's counters.
pub(crate) fn audit_tail_snapshot(shared: &Shared, n: usize) -> Value {
    let Some(audit) = &shared.audit else {
        return Value::object(vec![("enabled", Value::from(false))]);
    };
    let records = audit.recent(n);
    Value::object(vec![
        ("enabled", Value::from(true)),
        (
            "records",
            Value::Array(records.iter().map(audit_record_value).collect()),
        ),
        ("stats", audit_stats_value(&audit.stats())),
    ])
}

/// The `audit-top` payload (and `GET /audit/top`): worst offenders from
/// the in-memory audit ring ranked by `by`, each with its trace id as
/// the exemplar link into `/traces`.
pub(crate) fn audit_top_snapshot(shared: &Shared, by: AuditKey, n: usize) -> Value {
    let Some(audit) = &shared.audit else {
        return Value::object(vec![("enabled", Value::from(false))]);
    };
    let key: fn(&AuditRecord) -> u64 = match by {
        AuditKey::Latency => |r| r.total_us,
        AuditKey::Tuples => |r| r.derived_tuples,
        AuditKey::DnfWidth => |r| r.dnf_literals,
        AuditKey::RuleCost => |r| r.rule_cost,
    };
    let records = audit.top(n, key);
    Value::object(vec![
        ("enabled", Value::from(true)),
        ("by", Value::from(by.as_str().to_string())),
        (
            "records",
            Value::Array(records.iter().map(audit_record_value).collect()),
        ),
    ])
}

/// One window's burn accounting as a JSON object.
fn window_burn_value(w: &p3_obs::slo::WindowBurn) -> Value {
    Value::object(vec![
        ("events", Value::from(w.events)),
        ("bad", Value::from(w.bad)),
        ("burn_rate", Value::from(w.burn_rate)),
        ("tripped", Value::from(w.tripped)),
    ])
}

/// The `slo` payload (and `GET /slo`): every objective's burn state over
/// the fast (5 min) and slow (1 h) windows, plus whether any fast window
/// is currently tripped (the `/readyz` gate under `--slo-readyz`).
pub(crate) fn slo_snapshot(shared: &Shared) -> Value {
    let now_ms = unix_ms();
    let statuses = shared.slo.status(now_ms);
    Value::object(vec![
        ("now_ms", Value::from(now_ms)),
        (
            "any_fast_trip",
            Value::from(statuses.iter().any(|s| s.fast.tripped)),
        ),
        ("readyz_gated", Value::from(shared.slo_readyz)),
        (
            "objectives",
            Value::Array(
                statuses
                    .iter()
                    .map(|s| {
                        Value::object(vec![
                            ("class", Value::from(s.config.class.clone())),
                            ("target_ms", Value::from(s.config.target_ms)),
                            ("objective", Value::from(s.config.objective)),
                            ("fast", window_burn_value(&s.fast)),
                            ("slow", window_burn_value(&s.slow)),
                            ("budget_remaining", Value::from(s.budget_remaining)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Refreshes scrape-time gauges from live server state. Called on every
/// exposition — the NDJSON `metrics` op and the HTTP `GET /metrics` — and
/// once at startup so the families exist before the first request.
pub(crate) fn refresh_gauges(shared: &Shared) {
    p3_obs::process::refresh();
    shared.slo.publish(unix_ms());
    if let Some(audit) = &shared.audit {
        audit.publish_metrics();
    }
    let session = shared.current_session();
    let s = session.stats();
    let store = session.p3().store();

    set_queue_depth_gauge(shared.queue.depth());
    set_workers_busy_gauge(shared.workers_busy.load(Ordering::SeqCst));
    p3_obs::gauge!("p3_service_workers", "Worker pool size").set(shared.workers as i64);
    p3_obs::gauge!(
        "p3_service_uptime_seconds",
        "Seconds since the server started"
    )
    .set(shared.started.elapsed().as_secs() as i64);
    p3_obs::gauge!(
        "p3_core_session_resident",
        "Entries resident across the shared session memo tables"
    )
    .set(s.resident as i64);
    p3_obs::gauge!(
        "p3_prob_store_formulas",
        "Interned DNF formulas in the hash-consed store"
    )
    .set(store.stats().formulas as i64);
    for (i, shard) in store.shard_stats().iter().enumerate() {
        let labels = format!("shard=\"{i}\"");
        let set = |name, help, value: u64| {
            p3_obs::metrics::labeled_gauge(name, help, &labels).set(value as i64);
        };
        set(
            "p3_prob_store_shard_entries",
            "Interned nodes held by each DnfStore shard",
            shard.entries as u64,
        );
        set(
            "p3_prob_store_shard_intern_hits",
            "Hash-cons intern hits per DnfStore shard",
            shard.intern_hits,
        );
        set(
            "p3_prob_store_shard_intern_misses",
            "Hash-cons intern misses per DnfStore shard",
            shard.intern_misses,
        );
        set(
            "p3_prob_store_shard_op_hits",
            "Memoized or/and/restrict hits per DnfStore shard",
            shard.op_hits,
        );
        set(
            "p3_prob_store_shard_op_misses",
            "Memoized or/and/restrict misses per DnfStore shard",
            shard.op_misses,
        );
    }
}

/// The `metrics` payload: refreshes scrape-time gauges from live state,
/// then renders the whole process registry as Prometheus text exposition
/// (version 0.0.4).
fn metrics_snapshot(shared: &Shared) -> Value {
    refresh_gauges(shared);
    Value::object(vec![
        (
            "content_type",
            Value::from("text/plain; version=0.0.4".to_string()),
        ),
        ("text", Value::from(p3_obs::metrics::prometheus_text())),
    ])
}

fn span_tree_value(tree: &p3_obs::span::SpanTree) -> Value {
    let r = &tree.record;
    Value::object(vec![
        ("name", Value::from(r.name.to_string())),
        ("span_id", Value::from(r.id)),
        ("start_us", Value::from(r.start_us)),
        ("dur_us", Value::from(r.dur_us)),
        (
            "fields",
            Value::Object(
                r.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), Value::from(v.clone())))
                    .collect(),
            ),
        ),
        (
            "children",
            Value::Array(tree.children.iter().map(span_tree_value).collect()),
        ),
    ])
}

/// The `trace` payload: the `n` most recent completed request span trees
/// (newest first). Empty unless span collection is enabled (`p3-serve`
/// turns it on at startup).
fn trace_snapshot(n: usize) -> Value {
    let trees = p3_obs::span::recent_roots(Some("request"), n);
    Value::object(vec![
        ("enabled", Value::from(p3_obs::span::enabled())),
        (
            "trees",
            Value::Array(trees.iter().map(span_tree_value).collect()),
        ),
    ])
}

/// A standalone [`Shared`] for exercising readiness and HTTP routing in
/// tests — no listeners, no worker threads.
#[cfg(test)]
pub(crate) fn test_shared(workers: usize, queue_cap: usize) -> Arc<Shared> {
    test_shared_with_audit(workers, queue_cap, None)
}

/// Like [`test_shared`], with an audit log attached (tests only).
#[cfg(test)]
pub(crate) fn test_shared_with_audit(
    workers: usize,
    queue_cap: usize,
    audit: Option<p3_audit::AuditConfig>,
) -> Arc<Shared> {
    let p3 = P3::from_source("t 1.0: a(1).").unwrap();
    Arc::new(Shared {
        session: RwLock::new(p3.session()),
        sessions_by_mode: RwLock::new(HashMap::new()),
        cache_cap: None,
        eval_mode: EvalMode::Auto,
        stats: ServiceStats::new(),
        queue: JobQueue::new(queue_cap),
        shutdown: AtomicBool::new(false),
        workers,
        queue_cap: queue_cap.max(1),
        workers_busy: AtomicUsize::new(0),
        default_timeout_ms: None,
        slow_ms: None,
        started: Instant::now(),
        store: None,
        audit: audit.map(|cfg| AuditLog::open(cfg).unwrap()),
        slo: SloEngine::new(default_slos()),
        slo_readyz: false,
    })
}

/// Exposes the request funnel to sibling modules' tests (tests only).
#[cfg(test)]
pub(crate) fn test_handle_line(line: &str, shared: &Shared) -> Response {
    handle_line(line, shared)
}

#[cfg(test)]
impl Shared {
    /// Forces the busy-worker count (tests only).
    pub(crate) fn test_set_busy(&self, n: usize) {
        self.workers_busy.store(n, Ordering::SeqCst);
    }

    /// Fills the queue with `n` inert jobs (tests only). Panics if the
    /// queue cannot take them without blocking.
    pub(crate) fn test_fill_queue(&self, n: usize) {
        for _ in 0..n {
            let (reply, _rx) = mpsc::sync_channel(1);
            self.queue
                .push(Job {
                    op: Op::Ping,
                    hop_limit: None,
                    eval_mode: None,
                    deadline: Some(Instant::now()),
                    enqueued: Instant::now(),
                    root_span: 0,
                    reply,
                })
                .unwrap_or_else(|_| panic!("test queue full"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const ACQ: &str = r#"
        r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
        r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
        r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
        t1 1.0: live("Steve","DC").
        t2 1.0: live("Elena","DC").
        t3 1.0: live("Mary","NYC").
        t4 0.4: like("Steve","Veggies").
        t5 0.6: like("Elena","Veggies").
        t6 1.0: know("Ben","Steve").
    "#;

    const Q: &str = r#"know("Ben","Elena")"#;

    fn start_tcp() -> Server {
        let p3 = P3::from_source(ACQ).unwrap();
        Server::start(
            p3,
            ServerConfig {
                tcp: Some("127.0.0.1:0".to_string()),
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn tcp_round_trip_all_query_classes() {
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}","id":1}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);
        assert_eq!(resp.id, Some(1));
        let p = resp
            .result
            .unwrap()
            .get("probability")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((p - 0.16384).abs() < 1e-9, "{p}");

        for (line, field) in [
            (
                format!(
                    r#"{{"op":"explanation","query":"{}"}}"#,
                    Q.replace('"', "\\\"")
                ),
                "polynomial",
            ),
            (
                format!(
                    r#"{{"op":"derivation","query":"{}","eps":0.01}}"#,
                    Q.replace('"', "\\\"")
                ),
                "kept",
            ),
            (
                format!(
                    r#"{{"op":"influence","query":"{}","method":"exact"}}"#,
                    Q.replace('"', "\\\"")
                ),
                "entries",
            ),
            (
                format!(
                    r#"{{"op":"modification","query":"{}","target":0.5,"tolerance":1e-9}}"#,
                    Q.replace('"', "\\\"")
                ),
                "steps",
            ),
        ] {
            let resp = client.request(&line).unwrap();
            assert_eq!(resp.status, crate::protocol::Status::Ok, "{line}");
            assert!(resp.result.unwrap().get(field).is_some(), "{line}");
        }

        server.shutdown();
        server.join();
    }

    #[test]
    fn unix_round_trip_and_stats() {
        let path = std::env::temp_dir().join(format!("p3-test-{}.sock", std::process::id()));
        let p3 = P3::from_source(ACQ).unwrap();
        let server = Server::start(
            p3,
            ServerConfig {
                unix: Some(path.clone()),
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = Client::connect_unix(&path).unwrap();
        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);

        let stats = client.request(r#"{"op":"stats"}"#).unwrap();
        let result = stats.result.unwrap();
        assert!(result.get("total_requests").unwrap().as_u64().unwrap() >= 1);
        assert!(result.get("session").is_some());
        assert!(result.get("store").is_some());

        server.shutdown();
        server.join();
        assert!(!path.exists(), "socket file cleaned up");
    }

    #[test]
    fn expired_deadline_reports_timeout_and_keeps_connection() {
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        // timeout_ms: 0 — the deadline has already expired on arrival.
        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}","timeout_ms":0,"id":9}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Timeout);
        assert_eq!(resp.id, Some(9));
        // Same connection still serves.
        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);
        server.shutdown();
        server.join();
    }

    #[test]
    fn malformed_and_failing_requests_keep_the_connection() {
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        let resp = client.request("this is not json").unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Error);
        let resp = client
            .request(r#"{"op":"probability","query":"nonexistent(\"x\")"}"#)
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Error);
        assert!(resp.error.unwrap().contains("bad query"));
        let resp = client.request(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);
        server.shutdown();
        server.join();
    }

    #[test]
    fn load_program_swaps_the_session() {
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        let resp = client
            .request(r#"{"op":"load-program","source":"r 0.5: b(X) :- a(X).\nt 1.0: a(1)."}"#)
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let resp = client
            .request(r#"{"op":"probability","query":"b(1)"}"#)
            .unwrap();
        let p = resp
            .result
            .unwrap()
            .get("probability")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        // The old program is gone.
        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Error);
        server.shutdown();
        server.join();
    }

    #[test]
    fn readiness_flips_under_saturation_and_back() {
        let shared = test_shared(2, 10); // high water = 9
        assert!(shared.readiness().is_ok());

        // All workers busy but the queue is shallow: still ready.
        shared.test_set_busy(2);
        assert!(shared.readiness().is_ok());

        // Queue at the high-water mark with every worker busy: not ready.
        shared.test_fill_queue(9);
        let why = shared.readiness().unwrap_err();
        assert!(why.contains("saturated"), "{why}");
        assert!(why.contains("queue_depth=9"), "{why}");

        // A free worker means the backlog is draining: ready again.
        shared.test_set_busy(1);
        assert!(shared.readiness().is_ok());

        // Shutdown trumps everything.
        shared.initiate_shutdown();
        assert!(shared.readiness().unwrap_err().contains("shutting down"));
    }

    #[test]
    fn profile_op_reports_stage_breakdown() {
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        let resp = client
            .request(&format!(
                r#"{{"op":"profile","query":"{}"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(
            result.get("class").unwrap().as_str().unwrap(),
            "probability"
        );
        let p = result.get("probability").unwrap().as_f64().unwrap();
        assert!((p - 0.16384).abs() < 1e-9, "{p}");
        let stages = match result.get("stages").unwrap() {
            Value::Array(stages) => stages,
            other => panic!("{other:?}"),
        };
        let names: Vec<&str> = stages
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        // ACQ is recursive, so the default (auto) session evaluates on
        // demand and the profile grows a transform stage.
        assert_eq!(names, ["parse", "transform", "extract", "probability"]);
        for stage in stages {
            assert!(stage.get("wall_us").unwrap().as_u64().is_some());
            assert!(stage.get("session").unwrap().get("hits").is_some());
            assert!(stage.get("store_ops").unwrap().get("misses").is_some());
            assert!(stage.get("extract_memo").is_some());
        }
        // A profiled derivation ends in its class stage.
        let resp = client
            .request(&format!(
                r#"{{"op":"profile","class":"derivation","query":"{}","eps":0.01}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(result.get("class").unwrap().as_str().unwrap(), "derivation");
        server.shutdown();
        server.join();
    }

    #[test]
    fn eval_mode_override_answers_identically() {
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        let mut probabilities = Vec::new();
        for mode in ["auto", "naive", "demand"] {
            let resp = client
                .request(&format!(
                    r#"{{"op":"probability","query":"{}","eval_mode":"{mode}"}}"#,
                    Q.replace('"', "\\\"")
                ))
                .unwrap();
            assert_eq!(resp.status, crate::protocol::Status::Ok, "{mode}: {resp:?}");
            probabilities.push(
                resp.result
                    .unwrap()
                    .get("probability")
                    .unwrap()
                    .as_f64()
                    .unwrap(),
            );
        }
        assert!(probabilities.iter().all(|p| (p - 0.16384).abs() < 1e-9));

        // ACQ is recursive: the default session resolves auto -> demand,
        // and `stats` reports the resolved mode.
        let stats = client.request(r#"{"op":"stats"}"#).unwrap();
        let mode = stats.result.unwrap();
        assert_eq!(mode.get("eval_mode").unwrap().as_str().unwrap(), "demand");

        // Loading a non-recursive program resolves to naive and reports
        // the materialised model size; a recursive one stays unforced.
        let resp = client
            .request(r#"{"op":"load-program","source":"r 0.5: b(X) :- a(X).\nt 1.0: a(1)."}"#)
            .unwrap();
        let result = resp.result.unwrap();
        assert_eq!(result.get("eval_mode").unwrap().as_str().unwrap(), "naive");
        assert!(result.get("tuples").unwrap().as_u64().is_some());

        server.shutdown();
        server.join();
    }

    #[test]
    fn request_span_adopts_the_client_trace_id() {
        p3_obs::span::set_enabled(true);
        let server = start_tcp();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        let trace_id = crate::protocol::new_trace_id();
        let resp = client
            .request(&format!(r#"{{"op":"ping","trace":"{trace_id}"}}"#))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);
        // The server's request tree carries the adopted id as a field,
        // visible through the trace op (and GET /traces).
        let resp = client.request(r#"{"op":"trace","n":5}"#).unwrap();
        let trees = resp.result.unwrap().to_json();
        assert!(trees.contains(&trace_id), "{trees}");
        server.shutdown();
        server.join();
        p3_obs::span::set_enabled(false);
    }

    #[test]
    fn audit_ops_round_trip_with_an_audit_log() {
        let dir = std::env::temp_dir().join(format!("p3-audit-ops-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p3 = P3::from_source(ACQ).unwrap();
        let server = Server::start(
            p3,
            ServerConfig {
                tcp: Some("127.0.0.1:0".to_string()),
                workers: 2,
                audit: Some(p3_audit::AuditConfig::new(&dir)),
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();
        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);

        // The probability request is on the tail, with its cost facts.
        let resp = client.request(r#"{"op":"audit-tail","n":10}"#).unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert!(result.get("enabled").unwrap().as_bool().unwrap());
        let records = match result.get("records").unwrap() {
            Value::Array(records) => records,
            other => panic!("{other:?}"),
        };
        let prob = records
            .iter()
            .find(|r| r.get("class").unwrap().as_str() == Some("probability"))
            .expect("probability record on the tail");
        assert_eq!(prob.get("outcome").unwrap().as_str(), Some("ok"));
        assert!(prob.get("total_us").unwrap().as_u64().unwrap() > 0);
        assert!(prob.get("dnf_monomials").unwrap().as_u64().unwrap() > 0);
        let stages = match prob.get("stages").unwrap() {
            Value::Array(stages) => stages,
            other => panic!("{other:?}"),
        };
        let names: Vec<&str> = stages
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["extract", "probability"]);

        // audit-top ranks by the requested key.
        let resp = client
            .request(r#"{"op":"audit-top","by":"latency","n":3}"#)
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(result.get("by").unwrap().as_str(), Some("latency"));

        // slo reports the default objectives.
        let resp = client.request(r#"{"op":"slo"}"#).unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(result.get("any_fast_trip").unwrap().as_bool(), Some(false));
        let objectives = match result.get("objectives").unwrap() {
            Value::Array(objectives) => objectives,
            other => panic!("{other:?}"),
        };
        assert_eq!(objectives.len(), 5, "five default query-class SLOs");

        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_op_attributes_cost_and_audits_rule_cost() {
        let dir = std::env::temp_dir().join(format!("p3-explain-ops-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p3 = P3::from_source(ACQ).unwrap();
        let server = Server::start(
            p3,
            ServerConfig {
                tcp: Some("127.0.0.1:0".to_string()),
                workers: 2,
                audit: Some(p3_audit::AuditConfig::new(&dir)),
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = Client::connect_tcp(&server.tcp_addr().unwrap().to_string()).unwrap();

        // ACQ is recursive, so the default session explains on demand.
        let resp = client
            .request(&format!(
                r#"{{"op":"explain","query":"{}"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(result.get("mode").unwrap().as_str(), Some("demand"));
        assert!(result.get("total_cost").unwrap().as_u64().unwrap() > 0);
        assert!(
            result.get("magic").is_some(),
            "demand plans carry a magic bucket"
        );
        assert!(result.get("caches").is_some());
        assert!(result.get("recommendations").is_some());
        let rules = match result.get("rules").unwrap() {
            Value::Array(rules) => rules,
            other => panic!("{other:?}"),
        };
        assert!(!rules.is_empty());
        assert_eq!(
            rules[0].get("rule").unwrap().as_str(),
            Some("r3"),
            "the recursive rule ranks first: {rules:?}"
        );

        // The naive override explains the whole-program evaluation.
        let resp = client
            .request(&format!(
                r#"{{"op":"explain","query":"{}","eval_mode":"naive"}}"#,
                Q.replace('"', "\\\"")
            ))
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(result.get("mode").unwrap().as_str(), Some("naive"));
        assert!(result.get("magic").is_none(), "no transform under naive");

        // The stats op surfaces the engine's run-level and per-stratum
        // counters for the evaluations the session has retained.
        let stats = client.request(r#"{"op":"stats"}"#).unwrap();
        let engine = stats.result.unwrap();
        let engine = engine.get("engine").expect("stats carry an engine section");
        assert!(engine.get("evaluations").unwrap().as_u64().unwrap() >= 1);
        assert!(engine.get("rule_cost_total").unwrap().as_u64().unwrap() > 0);
        assert!(engine.get("firings").unwrap().as_u64().unwrap() > 0);
        let strata = match engine.get("strata").unwrap() {
            Value::Array(strata) => strata,
            other => panic!("{other:?}"),
        };
        assert!(!strata.is_empty());
        assert!(strata[0].get("derived_tuples").unwrap().as_u64().is_some());

        // The explain request's audit record carries its rule-cost delta
        // and the top-rules exemplar, and audit-top ranks by it.
        let resp = client.request(r#"{"op":"audit-tail","n":10}"#).unwrap();
        let result = resp.result.unwrap();
        let records = match result.get("records").unwrap() {
            Value::Array(records) => records,
            other => panic!("{other:?}"),
        };
        let explain = records
            .iter()
            .find(|r| r.get("class").unwrap().as_str() == Some("explain"))
            .expect("explain record on the tail");
        assert!(
            explain.get("rule_cost").unwrap().as_u64().unwrap() > 0,
            "cold explain forced an evaluation: {explain:?}"
        );
        let top = match explain.get("top_rules").unwrap() {
            Value::Array(top) => top,
            other => panic!("{other:?}"),
        };
        assert!(!top.is_empty());
        assert!(top[0].get("cost").unwrap().as_u64().unwrap() > 0);

        let resp = client
            .request(r#"{"op":"audit-top","by":"rule_cost","n":3}"#)
            .unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok, "{resp:?}");
        let result = resp.result.unwrap();
        assert_eq!(result.get("by").unwrap().as_str(), Some("rule_cost"));

        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_request_drains_and_stops() {
        let server = start_tcp();
        let addr = server.tcp_addr().unwrap().to_string();
        let mut client = Client::connect_tcp(&addr).unwrap();
        let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Ok);
        assert!(server.is_shutting_down());
        server.join();
        // New connections are refused (or reset) once the listener is gone.
        std::thread::sleep(Duration::from_millis(100));
        let refused = match Client::connect_tcp(&addr) {
            Err(_) => true,
            Ok(mut c) => c.request(r#"{"op":"ping"}"#).is_err(),
        };
        assert!(refused, "listener should be closed after shutdown");
    }
}
