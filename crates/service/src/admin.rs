//! The HTTP admin plane: a minimal, std-only HTTP/1.1 listener serving
//! the observability surface on `--admin-addr`, hand-rolled in the same
//! spirit as the NDJSON codec (no HTTP library, no TLS, GET only).
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
//!   whole process registry, gauges refreshed at scrape time;
//! * `GET /healthz` — liveness: 200 as long as the process can answer;
//! * `GET /readyz` — readiness: 200 while the server should receive
//!   traffic, 503 (with the reason in the body) when shutting down, when
//!   the worker pool is gone, or when saturated — queue at its high-water
//!   mark with every worker busy (see `Shared::readiness`);
//! * `GET /traces?n=N` — the `N` most recent request span trees as
//!   chrome://tracing JSON (load in `chrome://tracing` or Perfetto);
//! * `GET /profile?secs=S` — samples the worker pool's live span stacks
//!   for `S` seconds (1..=30) and returns folded-stack lines for
//!   `flamegraph.pl` or speedscope;
//! * `GET /audit?n=N` — the `N` most recent audit records (newest first)
//!   with the audit log's counters;
//! * `GET /audit/top?by=latency|tuples|dnf_width|rule_cost&n=N` — worst
//!   offenders from the audit ring, each carrying its trace id as the
//!   exemplar link into `/traces`;
//! * `GET /slo` — per-class burn rates, window trip state, and error
//!   budgets (503s `/readyz` when fast-burn trips under `--slo-readyz`);
//! * `GET /explain` — the current session's accumulated per-rule cost
//!   attribution: every retained evaluation plan plus the cross-plan
//!   top-rules ranking;
//! * `GET /analyze` — the static cost prediction for the loaded program:
//!   ranked predicted rule costs, cardinality/DNF-width bounds, the
//!   eval-mode recommendation with its reason, and `P37xx` diagnostics
//!   (computed fresh per request; evaluates nothing).
//!
//! Integer query parameters are validated, not silently defaulted: a
//! non-numeric or out-of-range `n`/`secs` is a 400 with a JSON error
//! body naming the parameter and its documented range (`n` ≤ 256 on
//! `/traces`, `secs` ≤ 30 on `/profile`, `n` ≤ 1000 on the audit
//! routes). An *absent* parameter takes the documented default.
//!
//! Every response carries `Content-Length` and `Connection: close`; one
//! request per connection keeps the loop trivial and is plenty for
//! scrapers and probes. Unknown paths get 404, non-GET methods 405 with
//! an `Allow: GET` header.

use crate::protocol::AuditKey;
use crate::server::{
    analyze_snapshot, audit_tail_snapshot, audit_top_snapshot, explain_snapshot, refresh_gauges,
    slo_snapshot, Shared,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Longest `/profile` sampling window, seconds.
const MAX_PROFILE_SECS: u64 = 30;

/// Largest `n` accepted by `/traces`.
const MAX_TRACE_N: u64 = 256;

/// Largest `n` accepted by `/audit` and `/audit/top`.
const MAX_AUDIT_N: u64 = 1000;

/// Largest request head we will buffer before giving up on a client.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One HTTP response, ready to serialize.
pub(crate) struct HttpResponse {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
    /// `Allow` header value, set on 405 responses.
    pub(crate) allow: Option<&'static str>,
}

impl HttpResponse {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
            allow: None,
        }
    }

    fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            allow: None,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Accepts admin connections until shutdown; one short-lived thread per
/// connection (probes and scrapers are low-rate, `/profile` blocks for
/// its sampling window).
pub(crate) fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("p3-admin-conn".into())
                    .spawn(move || handle(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Serves exactly one request on `stream`.
fn handle(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let head = match read_head(&mut stream) {
        Some(head) => head,
        None => return,
    };
    let response = match parse_request_line(&head) {
        Some((method, target)) => respond(&method, &target, &shared),
        None => HttpResponse::text(400, "malformed request line\n"),
    };
    let _ = write_response(&mut stream, &response);
}

/// Reads the request head (request line + headers) up to the blank line.
/// Any body is ignored — every route is a GET.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
    }
    String::from_utf8(head).ok()
}

/// Splits `GET /path?query HTTP/1.1` into `("GET", "/path?query")`.
fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    Some((method, target))
}

/// The value of query parameter `key` in `target`, if present.
fn query_param(target: &str, key: &str) -> Option<String> {
    let (_, query) = target.split_once('?')?;
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.to_string())
}

/// A 400 with a JSON error body naming the offending parameter. The raw
/// value is client-controlled, so it is echoed as its own JSON string
/// field (`json_escape` quotes as well as escapes), never spliced into
/// the error message.
fn bad_param(key: &str, raw: &str, min: u64, max: u64) -> HttpResponse {
    HttpResponse {
        status: 400,
        content_type: "application/json",
        body: format!(
            "{{\"error\":\"query parameter '{key}' must be an integer in \
             {min}..={max}\",\"got\":{}}}\n",
            p3_audit::json_escape(raw)
        ),
        allow: None,
    }
}

/// Parses integer query parameter `key`: absent means `default`;
/// non-numeric or outside `min..=max` is a 400 (never a silent default
/// or clamp — a typo in a dashboard URL should fail loudly).
fn parse_count(
    target: &str,
    key: &str,
    default: u64,
    min: u64,
    max: u64,
) -> Result<u64, HttpResponse> {
    let Some(raw) = query_param(target, key) else {
        return Ok(default);
    };
    match raw.parse::<u64>() {
        Ok(v) if (min..=max).contains(&v) => Ok(v),
        _ => Err(bad_param(key, &raw, min, max)),
    }
}

/// Routes one request. Pure (modulo reading server state), so tests can
/// exercise every path without a socket.
pub(crate) fn respond(method: &str, target: &str, shared: &Shared) -> HttpResponse {
    if method != "GET" {
        return HttpResponse {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".to_string(),
            allow: Some("GET"),
        };
    }
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/healthz" => HttpResponse::text(200, "ok\n"),
        "/readyz" => match shared.readiness() {
            Ok(()) => HttpResponse::text(200, "ready\n"),
            Err(why) => HttpResponse::text(503, format!("not ready: {why}\n")),
        },
        "/metrics" => {
            refresh_gauges(shared);
            HttpResponse::ok(
                "text/plain; version=0.0.4",
                p3_obs::metrics::prometheus_text(),
            )
        }
        "/traces" => {
            let n = match parse_count(target, "n", 10, 1, MAX_TRACE_N) {
                Ok(n) => n as usize,
                Err(resp) => return resp,
            };
            let trees = p3_obs::span::recent_roots(Some("request"), n);
            HttpResponse::ok(
                "application/json",
                p3_obs::span::chrome_trace_json_for(&trees),
            )
        }
        "/profile" => {
            let secs = match parse_count(target, "secs", 1, 1, MAX_PROFILE_SECS) {
                Ok(secs) => secs,
                Err(resp) => return resp,
            };
            let folded = p3_obs::profile::sample_folded(
                Duration::from_secs(secs),
                p3_obs::profile::DEFAULT_INTERVAL,
            );
            HttpResponse::ok("text/plain; charset=utf-8", folded)
        }
        "/audit" => {
            let n = match parse_count(target, "n", 100, 1, MAX_AUDIT_N) {
                Ok(n) => n as usize,
                Err(resp) => return resp,
            };
            HttpResponse::ok(
                "application/json",
                audit_tail_snapshot(shared, n).to_json() + "\n",
            )
        }
        "/audit/top" => {
            let n = match parse_count(target, "n", 10, 1, MAX_AUDIT_N) {
                Ok(n) => n as usize,
                Err(resp) => return resp,
            };
            let by = match query_param(target, "by").as_deref() {
                None => AuditKey::Latency,
                Some(raw) => match AuditKey::parse(raw) {
                    Ok(by) => by,
                    Err(_) => {
                        return HttpResponse {
                            status: 400,
                            content_type: "application/json",
                            body: format!(
                                "{{\"error\":\"query parameter 'by' must be \
                                 latency, tuples, dnf_width or rule_cost\",\"got\":{}}}\n",
                                p3_audit::json_escape(raw)
                            ),
                            allow: None,
                        }
                    }
                },
            };
            HttpResponse::ok(
                "application/json",
                audit_top_snapshot(shared, by, n).to_json() + "\n",
            )
        }
        "/slo" => HttpResponse::ok("application/json", slo_snapshot(shared).to_json() + "\n"),
        "/explain" => HttpResponse::ok(
            "application/json",
            explain_snapshot(shared).to_json() + "\n",
        ),
        "/analyze" => HttpResponse::ok(
            "application/json",
            analyze_snapshot(shared).to_json() + "\n",
        ),
        _ => HttpResponse::text(404, format!("no such route: {path}\n")),
    }
}

/// Serializes `response` with `Content-Length` and `Connection: close`.
fn write_response(stream: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    if let Some(allow) = response.allow {
        out.push_str("Allow: ");
        out.push_str(allow);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&response.body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::test_shared;

    #[test]
    fn routes_and_status_codes() {
        let shared = test_shared(2, 10);
        let health = respond("GET", "/healthz", &shared);
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "ok\n");

        let ready = respond("GET", "/readyz", &shared);
        assert_eq!(ready.status, 200);

        let metrics = respond("GET", "/metrics", &shared);
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
        assert!(
            metrics.body.contains("# TYPE p3_service_queue_depth gauge"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("# TYPE p3_service_workers_busy gauge"),
            "{}",
            metrics.body
        );

        let traces = respond("GET", "/traces?n=5", &shared);
        assert_eq!(traces.status, 200);
        assert_eq!(traces.content_type, "application/json");
        assert!(traces.body.contains("traceEvents"), "{}", traces.body);

        let missing = respond("GET", "/nope", &shared);
        assert_eq!(missing.status, 404);

        let post = respond("POST", "/metrics", &shared);
        assert_eq!(post.status, 405);
        assert_eq!(post.allow, Some("GET"));
    }

    #[test]
    fn readyz_reports_the_reason_when_unready() {
        let shared = test_shared(0, 10);
        let ready = respond("GET", "/readyz", &shared);
        assert_eq!(ready.status, 503);
        assert!(ready.body.contains("no workers"), "{}", ready.body);
    }

    #[test]
    fn query_params_parse_and_default() {
        assert_eq!(query_param("/traces?n=7", "n").as_deref(), Some("7"));
        assert_eq!(
            query_param("/profile?secs=3&x=1", "secs").as_deref(),
            Some("3")
        );
        assert_eq!(query_param("/traces", "n"), None);
        assert_eq!(query_param("/traces?m=2", "n"), None);
    }

    #[test]
    fn bad_integer_params_are_400_with_json_bodies() {
        let shared = test_shared(2, 10);
        for target in [
            "/traces?n=abc",
            "/traces?n=-1",
            "/traces?n=0",
            "/traces?n=999999",
            "/profile?secs=abc",
            "/profile?secs=0",
            "/profile?secs=31",
            "/audit?n=xyz",
            "/audit?n=1001",
            "/audit/top?n=huge",
        ] {
            let resp = respond("GET", target, &shared);
            assert_eq!(resp.status, 400, "{target}");
            assert_eq!(resp.content_type, "application/json", "{target}");
            assert!(resp.body.contains("\"error\""), "{target}: {}", resp.body);
        }
        // Hostile parameter values are escaped, not echoed raw.
        let resp = respond("GET", "/traces?n=\"quoted\"", &shared);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\\\"quoted\\\""), "{}", resp.body);
        // Absent parameters still take the documented defaults.
        assert_eq!(respond("GET", "/traces", &shared).status, 200);
        assert_eq!(respond("GET", "/audit", &shared).status, 200);
    }

    #[test]
    fn audit_routes_report_disabled_without_a_log() {
        let shared = test_shared(2, 10);
        for target in ["/audit", "/audit/top?by=latency"] {
            let resp = respond("GET", target, &shared);
            assert_eq!(resp.status, 200, "{target}");
            assert_eq!(resp.content_type, "application/json");
            assert!(
                resp.body.contains("\"enabled\":false"),
                "{target}: {}",
                resp.body
            );
        }
        let resp = respond("GET", "/audit/top?by=bogus", &shared);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("'by'"), "{}", resp.body);
        assert!(resp.body.contains("rule_cost"), "{}", resp.body);
        // rule_cost is a valid ranking key even without a log.
        let resp = respond("GET", "/audit/top?by=rule_cost", &shared);
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn explain_route_reports_accumulated_plans() {
        let shared = test_shared(2, 10);
        // No query has forced an evaluation yet: the route still answers
        // with an empty accumulation rather than erroring.
        let resp = respond("GET", "/explain", &shared);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        for needle in [
            "\"evaluations\"",
            "\"rule_cost_total\"",
            "\"top_rules\"",
            "\"plans\"",
        ] {
            assert!(resp.body.contains(needle), "{needle}: {}", resp.body);
        }
        // Force an evaluation through the session, then the plans show up.
        let session = shared.current_session();
        let _ = session
            .probability("a(1)", p3_core::ProbMethod::Exact)
            .unwrap();
        let resp = respond("GET", "/explain", &shared);
        assert!(resp.body.contains("\"mode\":\"naive\""), "{}", resp.body);
        assert!(resp.body.contains("\"total_cost\""), "{}", resp.body);
    }

    #[test]
    fn analyze_route_predicts_without_evaluating() {
        let shared = test_shared(2, 10);
        let resp = respond("GET", "/analyze", &shared);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        for needle in ["\"total_cost\"", "\"recommend\"", "\"rules\"", "\"preds\""] {
            assert!(resp.body.contains(needle), "{needle}: {}", resp.body);
        }
        // Static analysis must not have forced an evaluation: the explain
        // accumulation is still empty afterwards.
        let explain = respond("GET", "/explain", &shared);
        assert!(
            explain.body.contains("\"evaluations\":0"),
            "{}",
            explain.body
        );
    }

    #[test]
    fn slo_route_reports_default_objectives() {
        let shared = test_shared(2, 10);
        let resp = respond("GET", "/slo", &shared);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        for needle in [
            "\"objectives\"",
            "\"probability\"",
            "\"modification\"",
            "\"burn_rate\"",
            "\"budget_remaining\"",
            "\"any_fast_trip\":false",
        ] {
            assert!(resp.body.contains(needle), "{needle}: {}", resp.body);
        }
    }

    #[test]
    fn audit_routes_serve_records_when_enabled() {
        let dir = std::env::temp_dir().join(format!(
            "p3-admin-audit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let shared =
            crate::server::test_shared_with_audit(2, 10, Some(p3_audit::AuditConfig::new(&dir)));
        // An inline admin op still funnels through handle_line, so it
        // must leave exactly one audit record behind.
        let _ = crate::server::test_handle_line(r#"{"op":"ping"}"#, &shared);
        let resp = respond("GET", "/audit?n=5", &shared);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"enabled\":true"), "{}", resp.body);
        assert!(resp.body.contains("\"class\":\"ping\""), "{}", resp.body);
        let resp = respond("GET", "/audit/top?by=latency&n=5", &shared);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"by\":\"latency\""), "{}", resp.body);
        assert!(resp.body.contains("\"class\":\"ping\""), "{}", resp.body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_lines_parse() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET".to_string(), "/metrics".to_string()))
        );
        assert_eq!(parse_request_line("\r\n"), None);
    }
}
