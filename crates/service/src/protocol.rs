//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, in order. The grammar
//! (documented in `DESIGN.md` §8):
//!
//! ```text
//! request  = { "op": <op>, ["id": n], ["timeout_ms": n], ["hop_limit": n],
//!              ["eval_mode": "auto"|"naive"|"demand"],
//!              ["trace": "32-hex"], ...op fields }
//! op       = "ping" | "stats" | "metrics" | "trace" | "shutdown"
//!          | "persist" | "warm" | "store-stats"
//!          | "audit-tail" | "audit-top" | "slo"
//!          | "load-program"
//!          | "probability" | "explanation" | "derivation"
//!          | "influence" | "modification"
//!          | "profile"      (wraps a query class, "class": <op>)
//!          | "explain"      (per-rule cost attribution for a query)
//! response = { ["id": n], "status": "ok" | "error" | "timeout",
//!              ["result": {...}], ["error": "..."] }
//! ```
//!
//! `id` is echoed verbatim so clients can pipeline; `timeout_ms` arms the
//! per-request deadline (see `server`); `hop_limit` caps provenance
//! extraction depth for the query ops; `eval_mode` overrides the server's
//! default evaluation strategy (naive whole-model vs query-directed demand,
//! see `p3_core::EvalMode`) for one request. `trace` is an optional
//! client-generated 128-bit trace id (lowercase hex): the server adopts
//! it as a field on the request's root span so one id links client-side
//! connect/send/recv spans with the server-side execution tree.

use crate::json::Value;
use p3_core::{DerivationAlgo, EvalMode, InfluenceMethod, ProbMethod};
use p3_prob::McConfig;

/// A query-class op, parsed and validated.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Liveness check.
    Ping,
    /// Server + session + store counters.
    Stats,
    /// Prometheus text exposition of the process metrics registry.
    Metrics,
    /// The `n` most recent request span trees.
    Trace {
        /// How many request trees to return.
        n: usize,
    },
    /// Graceful shutdown: drain in-flight work, refuse new connections.
    Shutdown,
    /// Force a compaction of the persistent store: export the session's
    /// full provenance state as a snapshot and truncate the intern log.
    /// Runs on the worker pool — it reads the same session the queries
    /// mutate.
    Persist,
    /// Warm-boot report: what the persistent store restored at startup
    /// (formulas, memos, recovery truncations, staleness).
    Warm,
    /// Persistent-store backend counters (records written, pending buffer,
    /// snapshot size).
    StoreStats,
    /// Replace the served program (from inline source or a server-side path).
    LoadProgram {
        /// Inline program text (takes precedence over `path`).
        source: Option<String>,
        /// Server-side file to load.
        path: Option<String>,
        /// Run the lint pre-flight gate (default `true`); error-severity
        /// findings reject the program. `"lint": false` opts out.
        lint: bool,
    },
    /// Static analysis: lint a program without loading it.
    Lint {
        /// Inline program text (takes precedence over `path`).
        source: Option<String>,
        /// Server-side file to lint.
        path: Option<String>,
    },
    /// `P[query]` under a probability method.
    Probability {
        /// Ground atom, e.g. `know("Ben","Elena")`.
        query: String,
        /// Probability backend.
        method: ProbMethod,
    },
    /// Explanation Query (§4.1): derivations + polynomial + probability.
    Explanation {
        /// Ground atom.
        query: String,
        /// Probability backend.
        method: ProbMethod,
    },
    /// Derivation Query (§4.2): sufficient provenance within `eps`.
    Derivation {
        /// Ground atom.
        query: String,
        /// Error bound ε.
        eps: f64,
        /// Search algorithm.
        algo: DerivationAlgo,
        /// Probability backend.
        method: ProbMethod,
    },
    /// Influence Query (§4.3): ranked influential clauses.
    Influence {
        /// Ground atom.
        query: String,
        /// Influence backend.
        method: InfluenceMethod,
        /// Keep only the top K entries.
        top_k: Option<usize>,
        /// §6.2 sufficient-provenance preprocessing bound.
        preprocess_epsilon: Option<f64>,
    },
    /// Modification Query (§4.4): reach `target` at minimal cost.
    Modification {
        /// Ground atom.
        query: String,
        /// Target probability.
        target: f64,
        /// Stop once `|P − target| ≤ tolerance`.
        tolerance: f64,
    },
    /// Per-query profile: run `inner` (any query class) and return a
    /// stage-by-stage breakdown with cache hit/miss deltas.
    Profile {
        /// The profiled query op.
        inner: Box<Op>,
    },
    /// Query EXPLAIN plane: per-rule cost attribution of the evaluation
    /// that answers `query` (engine plan, DNF shape, cache deltas,
    /// measured lint recommendations). Observation-only.
    Explain {
        /// Ground atom to explain.
        query: String,
    },
    /// Static analysis plane: predicted per-rule costs, cardinality
    /// bounds, DNF widths and `P37xx` diagnostics — computed without
    /// evaluating anything. Optionally predicts per-query-class work
    /// for one query atom.
    Analyze {
        /// Optional atom whose predicate gets a per-class prediction.
        query: Option<String>,
    },
    /// The `n` most recent audit records, newest first.
    AuditTail {
        /// How many records to return.
        n: usize,
    },
    /// Worst offenders from the audit ring, ranked by a cost key.
    AuditTop {
        /// Ranking key: `latency`, `tuples`, or `dnf_width`.
        by: AuditKey,
        /// How many records to return.
        n: usize,
    },
    /// SLO burn-rate and error-budget snapshot per request class.
    Slo,
}

/// Ranking key for `audit-top` / `GET /audit/top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditKey {
    /// Total request latency (queue wait + execute), µs.
    Latency,
    /// Derived tuples materialised while answering.
    Tuples,
    /// DNF width: total literal count across monomials.
    DnfWidth,
    /// Measured rule cost the request added (join candidates + firings +
    /// derived tuples) — ranks requests that forced evaluations.
    RuleCost,
}

impl AuditKey {
    /// Parses the wire/query-string spelling.
    pub fn parse(s: &str) -> Result<AuditKey, String> {
        match s {
            "latency" => Ok(AuditKey::Latency),
            "tuples" => Ok(AuditKey::Tuples),
            "dnf_width" => Ok(AuditKey::DnfWidth),
            "rule_cost" => Ok(AuditKey::RuleCost),
            other => Err(format!(
                "unknown audit key '{other}' (expected latency|tuples|dnf_width|rule_cost)"
            )),
        }
    }

    /// The canonical spelling, echoed back in responses.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditKey::Latency => "latency",
            AuditKey::Tuples => "tuples",
            AuditKey::DnfWidth => "dnf_width",
            AuditKey::RuleCost => "rule_cost",
        }
    }
}

impl Op {
    /// The stats bucket this op is accounted under.
    pub fn class(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Trace { .. } => "trace",
            Op::Shutdown => "shutdown",
            Op::Persist => "persist",
            Op::Warm => "warm",
            Op::StoreStats => "store-stats",
            Op::LoadProgram { .. } => "load-program",
            Op::Lint { .. } => "lint",
            Op::Probability { .. } => "probability",
            Op::Explanation { .. } => "explanation",
            Op::Derivation { .. } => "derivation",
            Op::Influence { .. } => "influence",
            Op::Modification { .. } => "modification",
            Op::Profile { .. } => "profile",
            Op::Explain { .. } => "explain",
            Op::Analyze { .. } => "analyze",
            Op::AuditTail { .. } => "audit-tail",
            Op::AuditTop { .. } => "audit-top",
            Op::Slo => "slo",
        }
    }

    /// The query text carried by this op, when it has one — the five
    /// query classes plus `profile` (which reports its inner query).
    /// Used for audit-record query hashing; the text itself is never
    /// persisted.
    pub fn query_text(&self) -> Option<&str> {
        match self {
            Op::Probability { query, .. }
            | Op::Explanation { query, .. }
            | Op::Derivation { query, .. }
            | Op::Influence { query, .. }
            | Op::Modification { query, .. }
            | Op::Explain { query } => Some(query),
            Op::Profile { inner } => inner.query_text(),
            _ => None,
        }
    }

    /// Whether this op runs on the worker pool (vs. inline on the
    /// connection handler).
    pub fn is_query(&self) -> bool {
        !matches!(
            self,
            Op::Ping
                | Op::Stats
                | Op::Metrics
                | Op::Trace { .. }
                | Op::Shutdown
                | Op::Warm
                | Op::StoreStats
                | Op::AuditTail { .. }
                | Op::AuditTop { .. }
                | Op::Slo
        )
    }
}

/// A parsed request envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Per-request deadline in milliseconds from receipt.
    pub timeout_ms: Option<u64>,
    /// Provenance extraction depth cap for query ops.
    pub hop_limit: Option<usize>,
    /// Per-request evaluation-mode override for query ops; `None` uses the
    /// server's configured default.
    pub eval_mode: Option<EvalMode>,
    /// Client-generated trace id (lowercase hex), adopted on the
    /// server-side root span for cross-process trace assembly.
    pub trace: Option<String>,
    /// The operation.
    pub op: Op,
}

/// Generates a fresh 128-bit trace id as 32 lowercase hex characters.
///
/// Mixes wall-clock nanoseconds, the process id, and a process-local
/// counter through two rounds of splitmix64 — not cryptographic, but
/// collision-free in practice for correlating client and server spans.
pub fn new_trace_id() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seed =
        nanos ^ (u64::from(std::process::id()) << 32) ^ COUNTER.fetch_add(1, Ordering::Relaxed);
    let hi = splitmix64(seed);
    let lo = splitmix64(hi ^ seed.rotate_left(17));
    format!("{hi:016x}{lo:016x}")
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(field) => field
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

/// Shared Monte-Carlo knobs: `samples`, `seed`, `threads` (0 = auto).
fn mc_config(v: &Value) -> Result<(McConfig, usize), String> {
    let samples = opt_u64(v, "samples")?.unwrap_or(100_000) as usize;
    let seed = opt_u64(v, "seed")?.unwrap_or(0x7033);
    let threads = opt_u64(v, "threads")?.unwrap_or(0) as usize;
    Ok((McConfig { samples, seed }, threads))
}

fn prob_method(v: &Value) -> Result<ProbMethod, String> {
    let (cfg, threads) = mc_config(v)?;
    match v.get("method").and_then(Value::as_str).unwrap_or("exact") {
        "exact" => Ok(ProbMethod::Exact),
        "bdd" => Ok(ProbMethod::Bdd),
        "mc" => Ok(ProbMethod::MonteCarlo(cfg)),
        "kl" => Ok(ProbMethod::KarpLuby(cfg)),
        "pmc" => Ok(ProbMethod::ParallelMc(cfg, threads)),
        other => Err(format!(
            "unknown method '{other}' (expected exact|bdd|mc|kl|pmc)"
        )),
    }
}

fn influence_method(v: &Value) -> Result<InfluenceMethod, String> {
    let (cfg, threads) = mc_config(v)?;
    match v.get("method").and_then(Value::as_str).unwrap_or("exact") {
        "exact" => Ok(InfluenceMethod::Exact),
        "mc" => Ok(InfluenceMethod::Mc(cfg)),
        "pmc" => Ok(InfluenceMethod::ParallelMc(cfg, threads)),
        other => Err(format!(
            "unknown influence method '{other}' (expected exact|mc|pmc)"
        )),
    }
}

/// Parses one of the five query-class ops from the fields of `v`.
/// Shared by the top-level dispatch and the `profile` wrapper (which
/// profiles exactly these classes).
fn parse_query_op(name: &str, v: &Value) -> Result<Op, String> {
    match name {
        "probability" => Ok(Op::Probability {
            query: str_field(v, "query")?,
            method: prob_method(v)?,
        }),
        "explanation" => Ok(Op::Explanation {
            query: str_field(v, "query")?,
            method: prob_method(v)?,
        }),
        "derivation" => Ok(Op::Derivation {
            query: str_field(v, "query")?,
            eps: f64_field(v, "eps")?,
            algo: match v.get("algo").and_then(Value::as_str).unwrap_or("greedy") {
                "greedy" => DerivationAlgo::NaiveGreedy,
                "resuciu" => DerivationAlgo::ReSuciu,
                other => return Err(format!("unknown algo '{other}'")),
            },
            method: prob_method(v)?,
        }),
        "influence" => Ok(Op::Influence {
            query: str_field(v, "query")?,
            method: influence_method(v)?,
            top_k: opt_u64(v, "top_k")?.map(|n| n as usize),
            preprocess_epsilon: opt_f64(v, "preprocess_epsilon")?,
        }),
        "modification" => Ok(Op::Modification {
            query: str_field(v, "query")?,
            target: f64_field(v, "target")?,
            tolerance: opt_f64(v, "tolerance")?.unwrap_or(1e-6),
        }),
        other => Err(format!(
            "unknown query class '{other}' (expected probability|explanation|derivation|influence|modification)"
        )),
    }
}

impl Request {
    /// Parses one request line. Errors are protocol-level (malformed JSON,
    /// unknown op, missing fields) and never tear down the connection.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line.trim()).map_err(|e| format!("malformed JSON: {e}"))?;
        if !matches!(v, Value::Object(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let id = opt_u64(&v, "id")?;
        let timeout_ms = opt_u64(&v, "timeout_ms")?;
        let hop_limit = opt_u64(&v, "hop_limit")?.map(|n| n as usize);
        let eval_mode = match v.get("eval_mode") {
            None | Some(Value::Null) => None,
            Some(field) => match field.as_str() {
                Some(s) => Some(
                    s.parse::<EvalMode>()
                        .map_err(|e| format!("eval_mode: {e}"))?,
                ),
                None => return Err("field 'eval_mode' must be a string".to_string()),
            },
        };
        let trace = match v.get("trace") {
            None | Some(Value::Null) => None,
            Some(field) => match field.as_str() {
                Some(s) if !s.is_empty() => Some(s.to_string()),
                _ => return Err("field 'trace' must be a non-empty string".to_string()),
            },
        };
        let op_name = str_field(&v, "op")?;
        let op = match op_name.as_str() {
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "metrics" => Op::Metrics,
            "trace" => Op::Trace {
                n: opt_u64(&v, "n")?.unwrap_or(10) as usize,
            },
            "shutdown" => Op::Shutdown,
            "persist" => Op::Persist,
            "warm" => Op::Warm,
            "store-stats" => Op::StoreStats,
            "audit-tail" => Op::AuditTail {
                n: opt_u64(&v, "n")?.unwrap_or(20) as usize,
            },
            "audit-top" => Op::AuditTop {
                by: match v.get("by") {
                    None | Some(Value::Null) => AuditKey::Latency,
                    Some(field) => match field.as_str() {
                        Some(s) => AuditKey::parse(s)?,
                        None => return Err("field 'by' must be a string".to_string()),
                    },
                },
                n: opt_u64(&v, "n")?.unwrap_or(10) as usize,
            },
            "slo" => Op::Slo,
            "load-program" => {
                let source = v.get("source").and_then(Value::as_str).map(str::to_string);
                let path = v.get("path").and_then(Value::as_str).map(str::to_string);
                if source.is_none() && path.is_none() {
                    return Err("load-program needs 'source' or 'path'".to_string());
                }
                let lint = match v.get("lint") {
                    None | Some(Value::Null) => true,
                    Some(Value::Bool(b)) => *b,
                    Some(_) => return Err("field 'lint' must be a boolean".to_string()),
                };
                Op::LoadProgram { source, path, lint }
            }
            "lint" => {
                let source = v.get("source").and_then(Value::as_str).map(str::to_string);
                let path = v.get("path").and_then(Value::as_str).map(str::to_string);
                if source.is_none() && path.is_none() {
                    return Err("lint needs 'source' or 'path'".to_string());
                }
                Op::Lint { source, path }
            }
            "profile" => {
                let class = v
                    .get("class")
                    .and_then(Value::as_str)
                    .unwrap_or("probability");
                Op::Profile {
                    inner: Box::new(parse_query_op(class, &v)?),
                }
            }
            "explain" => Op::Explain {
                query: str_field(&v, "query")?,
            },
            "analyze" => Op::Analyze {
                query: match v.get("query") {
                    None | Some(Value::Null) => None,
                    Some(Value::String(s)) if !s.is_empty() => Some(s.clone()),
                    Some(_) => return Err("field 'query' must be a non-empty string".to_string()),
                },
            },
            other => parse_query_op(other, &v).map_err(|e| {
                if e.starts_with("unknown query class") {
                    format!("unknown op '{other}'")
                } else {
                    e
                }
            })?,
        };
        Ok(Request {
            id,
            timeout_ms,
            hop_limit,
            eval_mode,
            trace,
            op,
        })
    }
}

/// Response status discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The op succeeded; `result` is set.
    Ok,
    /// The op failed; `error` explains why.
    Error,
    /// The per-request deadline expired before the answer was ready.
    Timeout,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Error => "error",
            Status::Timeout => "timeout",
        }
    }
}

/// A response envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed back.
    pub id: Option<u64>,
    /// Outcome.
    pub status: Status,
    /// Payload on success.
    pub result: Option<Value>,
    /// Explanation on error/timeout.
    pub error: Option<String>,
}

impl Response {
    /// A success response.
    pub fn ok(id: Option<u64>, result: Value) -> Response {
        Response {
            id,
            status: Status::Ok,
            result: Some(result),
            error: None,
        }
    }

    /// An error response.
    pub fn error(id: Option<u64>, message: impl Into<String>) -> Response {
        Response {
            id,
            status: Status::Error,
            result: None,
            error: Some(message.into()),
        }
    }

    /// A deadline-expired response.
    pub fn timeout(id: Option<u64>, message: impl Into<String>) -> Response {
        Response {
            id,
            status: Status::Timeout,
            result: None,
            error: Some(message.into()),
        }
    }

    /// Serialises to one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        if let Some(id) = self.id {
            pairs.push(("id".to_string(), Value::from(id)));
        }
        pairs.push((
            "status".to_string(),
            Value::from(self.status.as_str().to_string()),
        ));
        if let Some(result) = &self.result {
            pairs.push(("result".to_string(), result.clone()));
        }
        if let Some(error) = &self.error {
            pairs.push(("error".to_string(), Value::from(error.clone())));
        }
        Value::Object(pairs).to_json()
    }

    /// Parses a response line (the client side of the protocol).
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Value::parse(line.trim()).map_err(|e| format!("malformed response: {e}"))?;
        let status = match v.get("status").and_then(Value::as_str) {
            Some("ok") => Status::Ok,
            Some("error") => Status::Error,
            Some("timeout") => Status::Timeout,
            other => return Err(format!("bad response status {other:?}")),
        };
        Ok(Response {
            id: v.get("id").and_then(Value::as_u64),
            status,
            result: v.get("result").cloned(),
            error: v.get("error").and_then(Value::as_str).map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_query_class() {
        let cases = [
            (r#"{"op":"ping"}"#, "ping"),
            (r#"{"op":"stats"}"#, "stats"),
            (r#"{"op":"metrics"}"#, "metrics"),
            (r#"{"op":"trace","n":5}"#, "trace"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
            (r#"{"op":"persist"}"#, "persist"),
            (r#"{"op":"warm"}"#, "warm"),
            (r#"{"op":"store-stats"}"#, "store-stats"),
            (r#"{"op":"audit-tail","n":5}"#, "audit-tail"),
            (r#"{"op":"audit-top","by":"tuples"}"#, "audit-top"),
            (r#"{"op":"slo"}"#, "slo"),
            (
                r#"{"op":"load-program","source":"t 1.0: a(1)."}"#,
                "load-program",
            ),
            (r#"{"op":"lint","source":"t 1.0: a(1)."}"#, "lint"),
            (r#"{"op":"probability","query":"a(1)"}"#, "probability"),
            (
                r#"{"op":"explanation","query":"a(1)","method":"mc","samples":1000}"#,
                "explanation",
            ),
            (
                r#"{"op":"derivation","query":"a(1)","eps":0.01,"algo":"resuciu"}"#,
                "derivation",
            ),
            (
                r#"{"op":"influence","query":"a(1)","top_k":3,"method":"pmc"}"#,
                "influence",
            ),
            (
                r#"{"op":"modification","query":"a(1)","target":0.9}"#,
                "modification",
            ),
            (r#"{"op":"explain","query":"a(1)"}"#, "explain"),
            (r#"{"op":"analyze"}"#, "analyze"),
            (r#"{"op":"analyze","query":"a(1)"}"#, "analyze"),
        ];
        for (line, class) in cases {
            let req = Request::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(req.op.class(), class, "{line}");
        }
    }

    #[test]
    fn envelope_fields_are_extracted() {
        let req = Request::parse(
            r#"{"op":"probability","query":"a(1)","id":42,"timeout_ms":250,"hop_limit":3,"eval_mode":"demand","method":"pmc","threads":2,"samples":500,"seed":9}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(42));
        assert_eq!(req.timeout_ms, Some(250));
        assert_eq!(req.hop_limit, Some(3));
        assert_eq!(req.eval_mode, Some(EvalMode::Demand));
        match req.op {
            Op::Probability { ref query, method } => {
                assert_eq!(query, "a(1)");
                assert_eq!(
                    method,
                    ProbMethod::ParallelMc(
                        McConfig {
                            samples: 500,
                            seed: 9
                        },
                        2
                    )
                );
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "malformed JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"query":"a(1)"}"#, "op"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"probability"}"#, "query"),
            (
                r#"{"op":"probability","query":"a(1)","method":"magic"}"#,
                "unknown method",
            ),
            (r#"{"op":"derivation","query":"a(1)"}"#, "eps"),
            (r#"{"op":"modification","query":"a(1)"}"#, "target"),
            (r#"{"op":"load-program"}"#, "source"),
            (r#"{"op":"lint"}"#, "source"),
            (
                r#"{"op":"load-program","source":"x.","lint":"yes"}"#,
                "lint",
            ),
            (
                r#"{"op":"probability","query":"a(1)","timeout_ms":-3}"#,
                "timeout_ms",
            ),
            (
                r#"{"op":"probability","query":"a(1)","eval_mode":"magic"}"#,
                "eval_mode",
            ),
            (
                r#"{"op":"probability","query":"a(1)","eval_mode":7}"#,
                "eval_mode",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            Response::ok(Some(7), Value::object(vec![("p", Value::from(0.5))])),
            Response::error(None, "boom"),
            Response::timeout(Some(1), "deadline of 10ms expired"),
        ] {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn trace_defaults_to_ten_trees() {
        match Request::parse(r#"{"op":"trace"}"#).unwrap().op {
            Op::Trace { n } => assert_eq!(n, 10),
            ref other => panic!("{other:?}"),
        }
        match Request::parse(r#"{"op":"trace","n":3}"#).unwrap().op {
            Op::Trace { n } => assert_eq!(n, 3),
            ref other => panic!("{other:?}"),
        }
        assert!(Request::parse(r#"{"op":"trace","n":-1}"#).is_err());
    }

    #[test]
    fn profile_wraps_a_query_class() {
        // Defaults to profiling a probability query.
        match Request::parse(r#"{"op":"profile","query":"a(1)"}"#)
            .unwrap()
            .op
        {
            Op::Profile { inner } => assert_eq!(
                *inner,
                Op::Probability {
                    query: "a(1)".to_string(),
                    method: ProbMethod::Exact,
                }
            ),
            ref other => panic!("{other:?}"),
        }
        // Inner-class fields are parsed from the same envelope.
        match Request::parse(
            r#"{"op":"profile","class":"derivation","query":"a(1)","eps":0.05,"algo":"resuciu"}"#,
        )
        .unwrap()
        .op
        {
            Op::Profile { inner } => match *inner {
                Op::Derivation { eps, algo, .. } => {
                    assert_eq!(eps, 0.05);
                    assert_eq!(algo, DerivationAlgo::ReSuciu);
                }
                other => panic!("{other:?}"),
            },
            ref other => panic!("{other:?}"),
        }
        let req = Request::parse(r#"{"op":"profile","query":"a(1)"}"#).unwrap();
        assert_eq!(req.op.class(), "profile");
        assert!(req.op.is_query());
        // Only query classes can be profiled.
        for line in [
            r#"{"op":"profile","class":"ping"}"#,
            r#"{"op":"profile","class":"profile","query":"a(1)"}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains("unknown query class"), "{line} -> {err}");
        }
        // Missing inner fields surface the inner error.
        let err = Request::parse(r#"{"op":"profile","class":"modification","query":"a(1)"}"#)
            .unwrap_err();
        assert!(err.contains("target"), "{err}");
    }

    #[test]
    fn eval_mode_field_is_optional_and_parsed() {
        assert_eq!(
            Request::parse(r#"{"op":"probability","query":"a(1)"}"#)
                .unwrap()
                .eval_mode,
            None
        );
        assert_eq!(
            Request::parse(r#"{"op":"probability","query":"a(1)","eval_mode":null}"#)
                .unwrap()
                .eval_mode,
            None
        );
        for (spelling, mode) in [
            ("auto", EvalMode::Auto),
            ("naive", EvalMode::Naive),
            ("demand", EvalMode::Demand),
        ] {
            let line = format!(r#"{{"op":"probability","query":"a(1)","eval_mode":"{spelling}"}}"#);
            assert_eq!(Request::parse(&line).unwrap().eval_mode, Some(mode));
        }
    }

    #[test]
    fn trace_field_is_extracted_and_validated() {
        let req =
            Request::parse(r#"{"op":"ping","trace":"00ff00ff00ff00ff00ff00ff00ff00ff"}"#).unwrap();
        assert_eq!(
            req.trace.as_deref(),
            Some("00ff00ff00ff00ff00ff00ff00ff00ff")
        );
        assert_eq!(Request::parse(r#"{"op":"ping"}"#).unwrap().trace, None);
        assert_eq!(
            Request::parse(r#"{"op":"ping","trace":null}"#)
                .unwrap()
                .trace,
            None
        );
        for line in [r#"{"op":"ping","trace":""}"#, r#"{"op":"ping","trace":7}"#] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains("trace"), "{line} -> {err}");
        }
    }

    #[test]
    fn trace_ids_are_well_formed_and_distinct() {
        let a = new_trace_id();
        let b = new_trace_id();
        for id in [&a, &b] {
            assert_eq!(id.len(), 32, "{id}");
            assert!(id
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        }
        assert_ne!(a, b);
    }

    #[test]
    fn query_vs_admin_split() {
        assert!(!Request::parse(r#"{"op":"ping"}"#).unwrap().op.is_query());
        assert!(!Request::parse(r#"{"op":"stats"}"#).unwrap().op.is_query());
        assert!(!Request::parse(r#"{"op":"metrics"}"#).unwrap().op.is_query());
        assert!(!Request::parse(r#"{"op":"trace"}"#).unwrap().op.is_query());
        assert!(!Request::parse(r#"{"op":"warm"}"#).unwrap().op.is_query());
        assert!(!Request::parse(r#"{"op":"store-stats"}"#)
            .unwrap()
            .op
            .is_query());
        assert!(!Request::parse(r#"{"op":"audit-tail"}"#)
            .unwrap()
            .op
            .is_query());
        assert!(!Request::parse(r#"{"op":"audit-top"}"#)
            .unwrap()
            .op
            .is_query());
        assert!(!Request::parse(r#"{"op":"slo"}"#).unwrap().op.is_query());
        assert!(Request::parse(r#"{"op":"persist"}"#).unwrap().op.is_query());
        assert!(Request::parse(r#"{"op":"probability","query":"a(1)"}"#)
            .unwrap()
            .op
            .is_query());
        assert!(Request::parse(r#"{"op":"load-program","path":"x.pl"}"#)
            .unwrap()
            .op
            .is_query());
        assert!(Request::parse(r#"{"op":"lint","path":"x.pl"}"#)
            .unwrap()
            .op
            .is_query());
        // Explain forces an evaluation, so it runs on the worker pool.
        assert!(Request::parse(r#"{"op":"explain","query":"a(1)"}"#)
            .unwrap()
            .op
            .is_query());
        // Analyze evaluates nothing but walks the whole program, so it
        // also runs on the worker pool rather than inline.
        assert!(Request::parse(r#"{"op":"analyze"}"#).unwrap().op.is_query());
    }

    #[test]
    fn analyze_parses_optional_query() {
        match Request::parse(r#"{"op":"analyze"}"#).unwrap().op {
            Op::Analyze { query: None } => {}
            ref other => panic!("{other:?}"),
        }
        match Request::parse(r#"{"op":"analyze","query":"a(1)"}"#)
            .unwrap()
            .op
        {
            Op::Analyze { query: Some(q) } => assert_eq!(q, "a(1)"),
            ref other => panic!("{other:?}"),
        }
        assert!(Request::parse(r#"{"op":"analyze","query":42}"#).is_err());
        assert!(Request::parse(r#"{"op":"analyze","query":""}"#).is_err());
    }

    #[test]
    fn audit_ops_parse_with_defaults_and_reject_bad_keys() {
        match Request::parse(r#"{"op":"audit-tail"}"#).unwrap().op {
            Op::AuditTail { n } => assert_eq!(n, 20),
            ref other => panic!("{other:?}"),
        }
        match Request::parse(r#"{"op":"audit-top"}"#).unwrap().op {
            Op::AuditTop { by, n } => {
                assert_eq!(by, AuditKey::Latency);
                assert_eq!(n, 10);
            }
            ref other => panic!("{other:?}"),
        }
        match Request::parse(r#"{"op":"audit-top","by":"dnf_width","n":3}"#)
            .unwrap()
            .op
        {
            Op::AuditTop { by, n } => {
                assert_eq!(by, AuditKey::DnfWidth);
                assert_eq!(n, 3);
            }
            ref other => panic!("{other:?}"),
        }
        match Request::parse(r#"{"op":"audit-top","by":"rule_cost"}"#)
            .unwrap()
            .op
        {
            Op::AuditTop { by, .. } => assert_eq!(by, AuditKey::RuleCost),
            ref other => panic!("{other:?}"),
        }
        assert_eq!(AuditKey::RuleCost.as_str(), "rule_cost");
        for line in [
            r#"{"op":"audit-top","by":"magic"}"#,
            r#"{"op":"audit-top","by":7}"#,
            r#"{"op":"audit-tail","n":-1}"#,
        ] {
            assert!(Request::parse(line).is_err(), "{line}");
        }
    }

    #[test]
    fn query_text_covers_query_classes_only() {
        let q = Request::parse(r#"{"op":"probability","query":"a(1)"}"#).unwrap();
        assert_eq!(q.op.query_text(), Some("a(1)"));
        let p = Request::parse(r#"{"op":"profile","query":"a(2)"}"#).unwrap();
        assert_eq!(p.op.query_text(), Some("a(2)"));
        for line in [
            r#"{"op":"ping"}"#,
            r#"{"op":"slo"}"#,
            r#"{"op":"lint","source":"t 1.0: a(1)."}"#,
        ] {
            assert_eq!(
                Request::parse(line).unwrap().op.query_text(),
                None,
                "{line}"
            );
        }
    }

    #[test]
    fn load_program_lint_gate_defaults_on_and_opts_out() {
        match Request::parse(r#"{"op":"load-program","source":"t 1.0: a(1)."}"#)
            .unwrap()
            .op
        {
            Op::LoadProgram { lint, .. } => assert!(lint, "gate defaults on"),
            ref other => panic!("{other:?}"),
        }
        match Request::parse(r#"{"op":"load-program","source":"t 1.0: a(1).","lint":false}"#)
            .unwrap()
            .op
        {
            Op::LoadProgram { lint, .. } => assert!(!lint),
            ref other => panic!("{other:?}"),
        }
    }
}
