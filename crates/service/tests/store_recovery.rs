//! Crash recovery of `p3-serve --store-dir`: kill the server with SIGKILL,
//! tear the intern log mid-record, restart on the same directory, and the
//! server must (a) log the truncation, (b) report it over the `warm` op,
//! and (c) answer the same queries with identical probabilities.

use p3_service::client::Client;
use p3_service::protocol::Status;
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ACQ: &str = r#"
    r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
    r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
    r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
    t1 1.0: live("Steve","DC").
    t2 1.0: live("Elena","DC").
    t3 1.0: live("Mary","NYC").
    t4 0.4: like("Steve","Veggies").
    t5 0.6: like("Elena","Veggies").
    t6 1.0: know("Ben","Steve").
"#;

const QUERIES: &[&str] = &[
    r#"know("Ben","Elena")"#,
    r#"know("Steve","Elena")"#,
    r#"know("Elena","Steve")"#,
];

/// A spawned `p3-serve --store-dir` with stderr piped so tests can assert
/// on recovery log lines.
struct Served {
    child: Child,
    tcp: String,
    stderr: Option<std::process::ChildStderr>,
}

impl Served {
    fn spawn(program: &PathBuf, store_dir: &PathBuf) -> Served {
        let mut child = Command::new(env!("CARGO_BIN_EXE_p3-serve"))
            .arg("--program")
            .arg(program)
            .arg("--tcp")
            .arg("127.0.0.1:0")
            .arg("--store-dir")
            .arg(store_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn p3-serve");
        let stdout = child.stdout.take().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let tcp = line
            .strip_prefix("listening tcp ")
            .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
            .trim()
            .to_string();
        let stderr = child.stderr.take();
        Served { child, tcp, stderr }
    }

    fn client(&self) -> Client {
        Client::connect_tcp(&self.tcp).unwrap()
    }

    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status;
            }
            assert!(Instant::now() < deadline, "p3-serve did not exit in time");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Everything the process wrote to stderr; call after it exited.
    fn drain_stderr(&mut self) -> String {
        let mut out = String::new();
        if let Some(mut pipe) = self.stderr.take() {
            let _ = pipe.read_to_string(&mut out);
        }
        out
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3-store-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn esc(query: &str) -> String {
    query.replace('"', "\\\"")
}

fn probability(client: &mut Client, query: &str) -> f64 {
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}"}}"#,
            esc(query)
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "{query}: {:?}", resp.error);
    resp.result
        .unwrap()
        .get("probability")
        .unwrap()
        .as_f64()
        .unwrap()
}

#[test]
fn sigkill_plus_torn_log_recovers_with_identical_probabilities() {
    let work = tmpdir("crash");
    std::fs::create_dir_all(&work).unwrap();
    let program = work.join("acq.pl");
    let store = work.join("store");
    std::fs::write(&program, ACQ).unwrap();

    // Boot 1: cold. Answer the queries (flushed to the journal after each
    // request), then die without any chance to clean up.
    let served = Served::spawn(&program, &store);
    let mut client = served.client();
    let cold: Vec<f64> = QUERIES
        .iter()
        .map(|q| probability(&mut client, q))
        .collect();
    drop(client);
    drop(served); // Drop sends SIGKILL: no graceful shutdown, no snapshot.

    // Tear the journal mid-record, as a crash mid-write would.
    let log = store.join("intern.log");
    let len = std::fs::metadata(&log).unwrap().len();
    assert!(len > 8, "journal should hold the session's records");
    let f = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    // Boot 2: recovery must truncate the bad tail, warm-boot from the
    // survivors, and keep serving.
    let mut served = Served::spawn(&program, &store);
    let mut client = served.client();

    let resp = client.request(r#"{"op":"warm"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);
    let warm = resp.result.unwrap();
    assert_eq!(warm.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(warm.get("stale").unwrap().as_bool(), Some(false));
    assert!(
        warm.get("recovery_truncations").unwrap().as_u64().unwrap() >= 1,
        "recovery should report the torn tail: {}",
        warm.to_json()
    );
    assert!(
        warm.get("restored_formulas").unwrap().as_u64().unwrap() > 0,
        "records before the tear must survive: {}",
        warm.to_json()
    );

    // Identical probabilities — restored memos answer most of them, and
    // whatever the tear dropped is recomputed to the same exact value.
    let warm_probs: Vec<f64> = QUERIES
        .iter()
        .map(|q| probability(&mut client, q))
        .collect();
    for ((q, cold), warm) in QUERIES.iter().zip(&cold).zip(&warm_probs) {
        assert_eq!(cold.to_bits(), warm.to_bits(), "{q}: {cold} vs {warm}");
    }

    // The session reports the restored memos, and the store-stats op sees
    // the file backend.
    let resp = client.request(r#"{"op":"stats"}"#).unwrap();
    let result = resp.result.unwrap();
    let restored = result
        .get("session")
        .unwrap()
        .get("warm_restored")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(restored > 0, "no warm-restored memos: {}", result.to_json());
    let resp = client.request(r#"{"op":"store-stats"}"#).unwrap();
    let result = resp.result.unwrap();
    assert_eq!(result.get("kind").unwrap().as_str(), Some("file"));

    // The recovery left a warning in the log.
    let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert!(served.wait_for_exit().success());
    let stderr = served.drain_stderr();
    assert!(
        stderr.contains("bad tail"),
        "no truncation warning in stderr:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn graceful_shutdown_compacts_and_the_next_boot_replays_the_snapshot() {
    let work = tmpdir("compact");
    std::fs::create_dir_all(&work).unwrap();
    let program = work.join("acq.pl");
    let store = work.join("store");
    std::fs::write(&program, ACQ).unwrap();

    let mut served = Served::spawn(&program, &store);
    let mut client = served.client();
    let cold: Vec<f64> = QUERIES
        .iter()
        .map(|q| probability(&mut client, q))
        .collect();

    // An explicit persist compacts on demand...
    let resp = client.request(r#"{"op":"persist"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    let result = resp.result.unwrap();
    assert!(result.get("records").unwrap().as_u64().unwrap() > 0);

    // ...and graceful shutdown compacts once more on the way out.
    let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert!(served.wait_for_exit().success());
    drop(served);

    assert!(
        std::fs::metadata(store.join("snapshot.log")).unwrap().len() > 0,
        "shutdown should leave a compacted snapshot"
    );
    assert_eq!(
        std::fs::metadata(store.join("intern.log")).unwrap().len(),
        0,
        "compaction should reset the journal tail"
    );

    // Boot 2 replays the snapshot: zero recovery noise, warm answers.
    let served = Served::spawn(&program, &store);
    let mut client = served.client();
    let resp = client.request(r#"{"op":"warm"}"#).unwrap();
    let warm = resp.result.unwrap();
    assert_eq!(warm.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(
        warm.get("recovery_truncations").unwrap().as_u64(),
        Some(0),
        "{}",
        warm.to_json()
    );
    assert!(warm.get("snapshot_records").unwrap().as_u64().unwrap() > 0);
    for (q, cold) in QUERIES.iter().zip(&cold) {
        let warm_p = probability(&mut client, q);
        assert_eq!(cold.to_bits(), warm_p.to_bits(), "{q}");
    }

    let _ = std::fs::remove_dir_all(&work);
}
