//! End-to-end audit plane: every request line `p3-serve --audit-dir`
//! handles — queries, inline admin ops, malformed lines, hostile text —
//! appends exactly one framed record, and those records survive SIGKILL
//! plus a torn segment tail. `audit-top` must surface the known most
//! expensive query, and the HTTP plane (`/audit`, `/audit/top`, `/slo`)
//! must keep emitting valid JSON no matter what the client sent.

use p3_service::client::Client;
use p3_service::json::Value;
use p3_service::protocol::Status;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ACQ: &str = r#"
    r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
    r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
    r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
    t1 1.0: live("Steve","DC").
    t2 1.0: live("Elena","DC").
    t3 1.0: live("Mary","NYC").
    t4 0.4: like("Steve","Veggies").
    t5 0.6: like("Elena","Veggies").
    t6 1.0: know("Ben","Steve").
"#;

/// Wide DNF: reachable through r1, r2, and r3 chains.
const WIDE_QUERY: &str = r#"know("Ben","Elena")"#;
/// Single-fact DNF: t6 verbatim.
const NARROW_QUERY: &str = r#"know("Ben","Steve")"#;

/// Trace text chosen to break naive framing or JSON emission: quotes,
/// structural JSON characters, a real newline, and multi-byte unicode.
const HOSTILE_TRACE: &str = "\"],}\n{💥\\tail";
/// Query text with the same flavor of hostility; it will not parse as a
/// query, but the request is still one auditable unit of work.
const HOSTILE_QUERY: &str = "know(\"a\nb\",\"c\\\"d\")💣[],{}";

/// A spawned `p3-serve --audit-dir`, with the admin plane optionally
/// bound, stdout announce lines parsed, and stderr piped for assertions.
struct Served {
    child: Child,
    tcp: String,
    admin: Option<String>,
    stderr: Option<std::process::ChildStderr>,
}

impl Served {
    fn spawn(program: &PathBuf, audit_dir: &PathBuf, extra: &[&str]) -> Served {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_p3-serve"));
        cmd.arg("--program")
            .arg(program)
            .arg("--tcp")
            .arg("127.0.0.1:0")
            .arg("--audit-dir")
            .arg(audit_dir);
        for arg in extra {
            cmd.arg(arg);
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn p3-serve");
        let stdout = child.stdout.take().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut tcp = None;
        let mut admin = None;
        let want_admin = extra.contains(&"--admin-addr");
        while tcp.is_none() || (want_admin && admin.is_none()) {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if let Some(addr) = line.strip_prefix("listening tcp ") {
                tcp = Some(addr.trim().to_string());
            } else if let Some(addr) = line.strip_prefix("listening admin ") {
                admin = Some(addr.trim().to_string());
            } else {
                panic!("unexpected announce line: {line:?}");
            }
        }
        let stderr = child.stderr.take();
        Served {
            child,
            tcp: tcp.unwrap(),
            admin,
            stderr,
        }
    }

    fn client(&self) -> Client {
        Client::connect_tcp(&self.tcp).unwrap()
    }

    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status;
            }
            assert!(Instant::now() < deadline, "p3-serve did not exit in time");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn drain_stderr(&mut self) -> String {
        let mut out = String::new();
        if let Some(mut pipe) = self.stderr.take() {
            let _ = pipe.read_to_string(&mut out);
        }
        out
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3-audit-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Full JSON string escaping — the hostile payloads hold newlines and
/// backslashes, which the simple quote-only escape would mangle.
fn jesc(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The JSON exposition renders `query_hash` as 16 lowercase hex chars.
fn hash_hex(query: &str) -> String {
    format!("{:016x}", p3_audit::fnv1a_64(query))
}

/// Sends one request, asserting only that the server answered (any
/// status): the audit invariant is one record per request, successful
/// or not.
fn send(client: &mut Client, line: &str) -> p3_service::protocol::Response {
    client.request(line).unwrap()
}

fn probability_line(query: &str) -> String {
    format!(r#"{{"op":"probability","query":"{}"}}"#, jesc(query))
}

/// The active (highest-numbered) audit segment in `dir`.
fn active_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("audit-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("no audit segments on disk")
}

/// One blocking HTTP GET against the admin plane; returns (status, body).
fn admin_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: p3\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("http status line")
        .parse()
        .expect("numeric http status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn every_request_is_one_record_and_the_log_survives_sigkill_and_a_torn_tail() {
    let work = tmpdir("crash");
    std::fs::create_dir_all(&work).unwrap();
    let program = work.join("acq.pl");
    let audit = work.join("audit");
    std::fs::write(&program, ACQ).unwrap();

    let served = Served::spawn(&program, &audit, &[]);
    let mut client = served.client();
    let mut sent = 0u64;

    // A representative mix: three queries, an op with no query text, a
    // request whose query and trace are actively hostile, and one line
    // that is not JSON at all. Each is exactly one auditable request.
    for line in [
        probability_line(WIDE_QUERY),
        probability_line(NARROW_QUERY),
        probability_line(WIDE_QUERY),
        r#"{"op":"stats"}"#.to_string(),
        format!(
            r#"{{"op":"probability","query":"{}","trace":"{}"}}"#,
            jesc(HOSTILE_QUERY),
            jesc(HOSTILE_TRACE)
        ),
        "this is not json {\"op\": ".to_string(),
    ] {
        send(&mut client, &line);
        sent += 1;
    }

    // The tail snapshot is built before its own record is appended, so
    // it sees exactly the `sent` requests above.
    let resp = send(&mut client, r#"{"op":"audit-tail","n":50}"#);
    sent += 1;
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    let tail = resp.result.unwrap();
    assert_eq!(tail.get("enabled").unwrap().as_bool(), Some(true));
    let records = tail.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len() as u64, sent - 1, "{}", tail.to_json());
    let stats = tail.get("stats").unwrap();
    assert_eq!(
        stats.get("records_appended").unwrap().as_u64(),
        Some(sent - 1)
    );

    // The hostile request surfaced intact: its trace round-tripped the
    // binary codec and the JSON emitter without corrupting either.
    let hostile = records
        .iter()
        .find(|r| r.get("trace").and_then(Value::as_str) == Some(HOSTILE_TRACE))
        .unwrap_or_else(|| panic!("hostile trace missing from tail: {}", tail.to_json()));
    assert_eq!(
        hostile.get("query_hash").unwrap().as_str(),
        Some(hash_hex(HOSTILE_QUERY).as_str())
    );
    // The malformed line was audited too, under its own class.
    assert!(
        records
            .iter()
            .any(|r| r.get("class").and_then(Value::as_str) == Some("malformed")),
        "{}",
        tail.to_json()
    );

    drop(client);
    drop(served); // SIGKILL: no flush, no graceful shutdown.

    // Offline post-mortem: every request — including the audit-tail op
    // itself — left exactly one record, and the log is clean.
    let (records, dirty) = p3_audit::read_dir(&audit).unwrap();
    assert_eq!(records.len() as u64, sent, "one record per request");
    assert_eq!(dirty, 0, "a SIGKILL between requests leaves no torn tail");
    let hostile = records
        .iter()
        .find(|r| r.trace == HOSTILE_TRACE)
        .expect("hostile record survived the crash");
    // Its canonical JSON is still well-formed despite the embedded
    // quotes, newline, and structural characters.
    let parsed = Value::parse(&hostile.to_json_string()).unwrap();
    assert_eq!(
        parsed.get("trace").and_then(Value::as_str),
        Some(HOSTILE_TRACE)
    );

    // Tear the active segment mid-record, as a crash mid-write would.
    let seg = active_segment(&audit);
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    let (records, dirty) = p3_audit::read_dir(&audit).unwrap();
    assert_eq!(dirty, 1, "offline reader flags the torn segment");
    assert_eq!(
        records.len() as u64,
        sent - 1,
        "only the last frame is lost"
    );

    // Restart on the same directory: recovery truncates the bad tail,
    // keeps every whole frame, and the ring serves them immediately.
    let mut served = Served::spawn(&program, &audit, &[]);
    let mut client = served.client();
    let resp = send(&mut client, r#"{"op":"audit-tail","n":50}"#);
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    let tail = resp.result.unwrap();
    let stats = tail.get("stats").unwrap();
    assert_eq!(
        stats.get("records_recovered").unwrap().as_u64(),
        Some(sent - 1),
        "{}",
        tail.to_json()
    );
    assert_eq!(
        stats.get("recovery_truncations").unwrap().as_u64(),
        Some(1),
        "{}",
        tail.to_json()
    );
    assert_eq!(
        tail.get("records").unwrap().as_array().unwrap().len() as u64,
        sent - 1,
        "recovered records populate the in-memory ring"
    );

    // And the log keeps growing from where recovery left off.
    send(&mut client, &probability_line(NARROW_QUERY));
    let resp = send(&mut client, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.status, Status::Ok);
    assert!(served.wait_for_exit().success());
    let stderr = served.drain_stderr();
    assert!(
        stderr.contains("bad tail"),
        "recovery should warn about the truncation:\n{stderr}"
    );
    let (records, dirty) = p3_audit::read_dir(&audit).unwrap();
    assert_eq!(dirty, 0);
    // sent-1 recovered + audit-tail + probability + shutdown.
    assert_eq!(records.len() as u64, sent - 1 + 3);

    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn audit_top_surfaces_the_most_expensive_query() {
    let work = tmpdir("top");
    std::fs::create_dir_all(&work).unwrap();
    let program = work.join("acq.pl");
    let audit = work.join("audit");
    std::fs::write(&program, ACQ).unwrap();

    let served = Served::spawn(&program, &audit, &[]);
    let mut client = served.client();

    // Cheap work: a single-fact query, answered exactly, several times.
    for _ in 0..5 {
        let resp = send(&mut client, &probability_line(NARROW_QUERY));
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    }
    // Expensive work: one heavyweight Monte Carlo run, milliseconds of
    // sampling against the microsecond-scale exact answers above.
    let resp = send(
        &mut client,
        &format!(
            r#"{{"op":"probability","query":"{}","method":"mc","samples":2000000,"seed":7}}"#,
            jesc(WIDE_QUERY)
        ),
    );
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);

    let wide_hash = hash_hex(WIDE_QUERY);
    let resp = send(&mut client, r#"{"op":"audit-top","by":"latency","n":1}"#);
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    let top = resp.result.unwrap();
    assert_eq!(top.get("by").unwrap().as_str(), Some("latency"));
    let records = top.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(
        records[0].get("query_hash").unwrap().as_str(),
        Some(wide_hash.as_str()),
        "the MC run must rank first by latency: {}",
        top.to_json()
    );
    assert_eq!(
        records[0].get("class").unwrap().as_str(),
        Some("probability")
    );

    // Ranked by DNF width instead, the wide recursive query beats the
    // single-fact one no matter how the clock behaved.
    let resp = send(&mut client, r#"{"op":"audit-top","by":"dnf_width","n":1}"#);
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    let top = resp.result.unwrap();
    let records = top.get("records").unwrap().as_array().unwrap();
    assert_eq!(
        records[0].get("query_hash").unwrap().as_str(),
        Some(wide_hash.as_str()),
        "{}",
        top.to_json()
    );

    let resp = send(&mut client, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.status, Status::Ok);

    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn admin_plane_serves_audit_and_slo_json_even_after_hostile_input() {
    let work = tmpdir("admin");
    std::fs::create_dir_all(&work).unwrap();
    let program = work.join("acq.pl");
    let audit = work.join("audit");
    std::fs::write(&program, ACQ).unwrap();

    let served = Served::spawn(
        &program,
        &audit,
        &[
            "--admin-addr",
            "127.0.0.1:0",
            "--slo",
            "probability:250:0.99",
        ],
    );
    let admin = served.admin.clone().expect("admin plane bound");
    let mut client = served.client();

    let mut sent = 0u64;
    for line in [
        probability_line(WIDE_QUERY),
        probability_line(NARROW_QUERY),
        format!(
            r#"{{"op":"probability","query":"{}","trace":"{}"}}"#,
            jesc(HOSTILE_QUERY),
            jesc(HOSTILE_TRACE)
        ),
    ] {
        send(&mut client, &line);
        sent += 1;
    }

    // GET /audit: valid JSON holding every record, hostile trace intact.
    let (status, body) = admin_get(&admin, "/audit?n=50");
    assert_eq!(status, 200, "{body}");
    let tail = Value::parse(body.trim()).expect("GET /audit must stay valid JSON");
    assert_eq!(tail.get("enabled").unwrap().as_bool(), Some(true));
    let records = tail.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len() as u64, sent, "{body}");
    assert!(
        records
            .iter()
            .any(|r| r.get("trace").and_then(Value::as_str) == Some(HOSTILE_TRACE)),
        "hostile trace mangled in /audit: {body}"
    );

    // GET /audit/top: ranked, still valid JSON.
    let (status, body) = admin_get(&admin, "/audit/top?by=dnf_width&n=2");
    assert_eq!(status, 200, "{body}");
    let top = Value::parse(body.trim()).unwrap();
    assert_eq!(top.get("by").unwrap().as_str(), Some("dnf_width"));
    let wide_hash = hash_hex(WIDE_QUERY);
    let top_records = top.get("records").unwrap().as_array().unwrap();
    assert_eq!(
        top_records[0].get("query_hash").unwrap().as_str(),
        Some(wide_hash.as_str()),
        "{body}"
    );

    // Bad query parameters are a client error, not a panic or a 200.
    let (status, body) = admin_get(&admin, "/audit?n=banana");
    assert_eq!(status, 400, "{body}");
    Value::parse(body.trim()).expect("400 body must be JSON");

    // GET /slo: the configured objective is present with both windows.
    let (status, body) = admin_get(&admin, "/slo");
    assert_eq!(status, 200, "{body}");
    let slo = Value::parse(body.trim()).unwrap();
    let objectives = slo.get("objectives").unwrap().as_array().unwrap();
    let prob = objectives
        .iter()
        .find(|o| o.get("class").and_then(Value::as_str) == Some("probability"))
        .unwrap_or_else(|| panic!("probability objective missing: {body}"));
    assert!(prob.get("fast").unwrap().get("burn_rate").is_some());
    assert!(prob.get("slow").unwrap().get("tripped").is_some());

    // A healthy server stays ready.
    let (status, _) = admin_get(&admin, "/readyz");
    assert_eq!(status, 200);

    let resp = send(&mut client, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.status, Status::Ok);

    let _ = std::fs::remove_dir_all(&work);
}
