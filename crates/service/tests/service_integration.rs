//! End-to-end test of the real `p3-serve` binary: spawn it on ephemeral
//! endpoints, hit it with concurrent clients mixing all four query
//! classes, and check every answer against a direct in-process
//! [`QuerySession`] over the same program. Also exercises the timeout,
//! malformed-request and graceful-shutdown paths.

use p3_core::{DerivationAlgo, InfluenceOptions, ProbMethod, P3};
use p3_service::client::Client;
use p3_service::protocol::Status;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ACQ: &str = r#"
    r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
    r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
    r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
    t1 1.0: live("Steve","DC").
    t2 1.0: live("Elena","DC").
    t3 1.0: live("Mary","NYC").
    t4 0.4: like("Steve","Veggies").
    t5 0.6: like("Elena","Veggies").
    t6 1.0: know("Ben","Steve").
"#;

const QUERIES: &[&str] = &[
    r#"know("Ben","Elena")"#,
    r#"know("Steve","Elena")"#,
    r#"know("Elena","Steve")"#,
];

struct Served {
    child: Child,
    tcp: String,
    unix: PathBuf,
    admin: Option<String>,
    program: PathBuf,
}

impl Served {
    /// Spawns `p3-serve` on an ephemeral TCP port + a temp Unix socket and
    /// parses the `listening …` lines it prints.
    fn spawn(extra_args: &[&str]) -> Served {
        let dir = std::env::temp_dir();
        let tag = format!(
            "p3-it-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )
        .replace(['(', ')'], "");
        let program = dir.join(format!("{tag}.pl"));
        let unix = dir.join(format!("{tag}.sock"));
        std::fs::write(&program, ACQ).unwrap();

        let mut child = Command::new(env!("CARGO_BIN_EXE_p3-serve"))
            .arg("--program")
            .arg(&program)
            .arg("--tcp")
            .arg("127.0.0.1:0")
            .arg("--unix")
            .arg(&unix)
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn p3-serve");

        let stdout = child.stdout.take().unwrap();
        let mut reader = BufReader::new(stdout);
        let mut tcp = None;
        let mut admin = None;
        let expects_admin = extra_args.contains(&"--admin-addr");
        for _ in 0..2 + usize::from(expects_admin) {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if let Some(addr) = line.strip_prefix("listening tcp ") {
                tcp = Some(addr.trim().to_string());
            } else if let Some(addr) = line.strip_prefix("listening admin ") {
                admin = Some(addr.trim().to_string());
            }
        }
        if expects_admin {
            admin.as_deref().expect("p3-serve did not announce admin");
        }
        Served {
            child,
            tcp: tcp.expect("p3-serve did not announce a TCP endpoint"),
            unix,
            admin,
            program,
        }
    }

    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status;
            }
            assert!(Instant::now() < deadline, "p3-serve did not exit in time");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.program);
        let _ = std::fs::remove_file(&self.unix);
    }
}

fn esc(query: &str) -> String {
    query.replace('"', "\\\"")
}

/// Runs the four query classes for one query over an existing connection
/// and checks each answer against the in-process session.
fn check_all_classes(client: &mut Client, session: &p3_core::QuerySession, query: &str) {
    // Probability.
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}"}}"#,
            esc(query)
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "probability {query}");
    let served = resp
        .result
        .unwrap()
        .get("probability")
        .unwrap()
        .as_f64()
        .unwrap();
    let direct = session.probability(query, ProbMethod::Exact).unwrap();
    assert!(
        (served - direct).abs() < 1e-12,
        "{query}: {served} vs {direct}"
    );

    // Explanation.
    let resp = client
        .request(&format!(
            r#"{{"op":"explanation","query":"{}"}}"#,
            esc(query)
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "explanation {query}");
    let result = resp.result.unwrap();
    let n = result.get("num_derivations").unwrap().as_u64().unwrap();
    let direct_n = session.provenance(query).unwrap().len() as u64;
    assert_eq!(n, direct_n, "explanation {query}");
    assert!((result.get("probability").unwrap().as_f64().unwrap() - direct).abs() < 1e-12);

    // Derivation.
    let resp = client
        .request(&format!(
            r#"{{"op":"derivation","query":"{}","eps":0.05}}"#,
            esc(query)
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "derivation {query}");
    let result = resp.result.unwrap();
    let direct_s = session
        .sufficient_provenance(query, 0.05, DerivationAlgo::NaiveGreedy, ProbMethod::Exact)
        .unwrap();
    assert_eq!(
        result.get("kept").unwrap().as_u64().unwrap(),
        direct_s.polynomial.len() as u64
    );
    assert!(
        (result.get("probability").unwrap().as_f64().unwrap() - direct_s.probability).abs() < 1e-12
    );

    // Influence.
    let resp = client
        .request(&format!(
            r#"{{"op":"influence","query":"{}","method":"exact"}}"#,
            esc(query)
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "influence {query}");
    let entries = resp.result.unwrap();
    let entries = entries.get("entries").unwrap().as_array().unwrap().to_vec();
    let direct_e = session
        .influence(
            query,
            &InfluenceOptions {
                method: p3_core::InfluenceMethod::Exact,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(entries.len(), direct_e.len(), "influence {query}");
    let vars = session.p3().vars();
    for (served, direct) in entries.iter().zip(&direct_e) {
        assert_eq!(
            served.get("var").unwrap().as_str().unwrap(),
            vars.name(direct.var),
            "influence ranking {query}"
        );
        assert!(
            (served.get("influence").unwrap().as_f64().unwrap() - direct.influence).abs() < 1e-12
        );
    }

    // Modification.
    let resp = client
        .request(&format!(
            r#"{{"op":"modification","query":"{}","target":0.5,"tolerance":1e-9}}"#,
            esc(query)
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "modification {query}");
    let result = resp.result.unwrap();
    let plan = session
        .modification(
            query,
            0.5,
            &p3_core::ModificationOptions {
                tolerance: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(
        result.get("reached_target").unwrap().as_bool().unwrap(),
        plan.reached_target
    );
    assert!(
        (result
            .get("achieved_probability")
            .unwrap()
            .as_f64()
            .unwrap()
            - plan.achieved_probability)
            .abs()
            < 1e-12
    );
}

#[test]
fn concurrent_clients_match_direct_session_on_both_transports() {
    let served = Served::spawn(&["--workers", "4"]);
    let p3 = P3::from_source(ACQ).unwrap();
    let session = p3.session();

    // Warm the direct session once so the reference answers exist.
    for q in QUERIES {
        session.probability(q, ProbMethod::Exact).unwrap();
    }

    // ≥4 concurrent clients, mixing transports and query classes.
    std::thread::scope(|scope| {
        for i in 0..6 {
            let tcp = served.tcp.clone();
            let unix = served.unix.clone();
            let session = &session;
            scope.spawn(move || {
                let mut client = if i % 2 == 0 {
                    Client::connect_tcp(&tcp).unwrap()
                } else {
                    Client::connect_unix(&unix).unwrap()
                };
                // Each client walks the queries starting at a different
                // offset, so classes and formulas interleave across workers.
                for step in 0..QUERIES.len() {
                    let query = QUERIES[(i + step) % QUERIES.len()];
                    check_all_classes(&mut client, session, query);
                }
            });
        }
    });

    // The shared session memoizes across all those clients.
    let mut client = Client::connect_tcp(&served.tcp).unwrap();
    let stats = client.request(r#"{"op":"stats"}"#).unwrap();
    let result = stats.result.unwrap();
    let hits = result
        .get("session")
        .unwrap()
        .get("hits")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(hits > 0, "concurrent clients should share memoized results");
}

#[test]
fn timeout_malformed_and_shutdown_paths() {
    let mut served = Served::spawn(&[]);
    let mut client = Client::connect_tcp(&served.tcp).unwrap();

    // An already-expired deadline reports "timeout" and keeps the
    // connection usable.
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}","timeout_ms":0,"id":1}}"#,
            esc(QUERIES[0])
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Timeout);
    assert_eq!(resp.id, Some(1));

    // Malformed requests answer with an error, connection intact.
    let resp = client.request("{{{ nope").unwrap();
    assert_eq!(resp.status, Status::Error);
    let resp = client.request(r#"{"op":"probability"}"#).unwrap();
    assert_eq!(resp.status, Status::Error);

    // Still serving after all that.
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}"}}"#,
            esc(QUERIES[0])
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);

    // Graceful shutdown via protocol: acknowledged, then the process
    // exits cleanly and the socket file is removed.
    let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);
    let status = served.wait_for_exit();
    assert!(status.success(), "p3-serve exit: {status:?}");
    assert!(!served.unix.exists(), "socket file should be cleaned up");
}

#[test]
fn lint_op_and_load_program_gate() {
    let served = Served::spawn(&[]);
    let mut client = Client::connect_tcp(&served.tcp).unwrap();

    // The lint op analyzes without loading: findings, counts, and a
    // rendered text payload come back.
    let resp = client
        .request(r#"{"op":"lint","source":"f(X).\n"}"#)
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    let result = resp.result.unwrap();
    assert_eq!(
        result
            .get("clean")
            .and_then(p3_service::json::Value::as_bool),
        Some(false)
    );
    let text = result
        .get("text")
        .and_then(p3_service::json::Value::as_str)
        .unwrap();
    assert!(text.contains("error[P3102]"), "{text}");
    let findings = result.get("findings").unwrap().to_json();
    assert!(findings.contains("\"code\":\"P3102\""), "{findings}");

    // The served program is untouched by linting.
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}"}}"#,
            esc(QUERIES[0])
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);

    // load-program rejects error-severity findings by default...
    let resp = client
        .request(r#"{"op":"load-program","source":"f(X).\n"}"#)
        .unwrap();
    assert_eq!(resp.status, Status::Error);
    let err = resp.error.unwrap();
    assert!(err.contains("rejected by lint"), "{err}");
    assert!(err.contains("P3102"), "{err}");

    // ...and "lint": false falls back to plain validation (still an error
    // for this program, but the validator's single-error report).
    let resp = client
        .request(r#"{"op":"load-program","source":"f(X).\n","lint":false}"#)
        .unwrap();
    assert_eq!(resp.status, Status::Error);
    let err = resp.error.unwrap();
    assert!(!err.contains("rejected by lint"), "{err}");

    // A program with only warning-level findings loads, and the response
    // reports the lint counts.
    let resp = client
        .request(
            r#"{"op":"load-program","source":"t1 0.5: p(a).\nt2 0.5: p(a).\nr1 0.9: q(X) :- p(X).\n"}"#,
        )
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
    let result = resp.result.unwrap();
    let warnings = result
        .get("lint_warnings")
        .and_then(p3_service::json::Value::as_u64)
        .unwrap();
    assert!(warnings >= 1, "duplicate fact should warn: {result:?}");
}

/// Requests the `metrics` op and returns the Prometheus exposition text.
fn scrape(client: &mut Client) -> String {
    let resp = client.request(r#"{"op":"metrics"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);
    let result = resp.result.unwrap();
    assert_eq!(
        result.get("content_type").unwrap().as_str().unwrap(),
        "text/plain; version=0.0.4"
    );
    result.get("text").unwrap().as_str().unwrap().to_string()
}

/// Sums every sample of one family (across label sets) in an exposition.
fn family_sum(text: &str, family: &str) -> f64 {
    text.lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .filter(|line| {
            let name = line.split(['{', ' ']).next().unwrap_or_default();
            name == family
        })
        .map(|line| line.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum()
}

#[test]
fn metrics_op_emits_valid_prometheus_text_with_monotone_counters() {
    let served = Served::spawn(&[]);
    let mut client = Client::connect_tcp(&served.tcp).unwrap();

    // Two identical queries: the second hits the session memo, so both
    // hit- and miss-side metric families are registered.
    for _ in 0..2 {
        let resp = client
            .request(&format!(
                r#"{{"op":"probability","query":"{}"}}"#,
                esc(QUERIES[0])
            ))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    let text = scrape(&mut client);

    // Every line is a comment or a `name[{labels}] value` sample, and
    // every family carries both a HELP and a TYPE line.
    let mut help = std::collections::BTreeSet::new();
    let mut types = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            help.insert(rest.split(' ').next().unwrap().to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            types.insert(it.next().unwrap().to_string());
            let kind = it.next().unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE: {line}"
            );
        } else if !line.is_empty() {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample line: {line}"
            );
        }
    }
    assert_eq!(help, types, "HELP/TYPE lines must pair up");
    assert!(help.len() >= 10, "want ≥10 metric families, got {help:?}");

    // Families from every layer of the pipeline are present.
    for family in [
        "p3_datalog_iterations_total",     // datalog
        "p3_datalog_delta_tuples",         // datalog (histogram)
        "p3_provenance_memo_misses_total", // provenance
        "p3_prob_store_intern_hits_total", // prob
        "p3_prob_store_shard_entries",     // prob (per-shard gauges)
        "p3_core_session_misses_total",    // core
        "p3_service_requests_total",       // service
        "p3_service_request_latency_us",   // service (histogram)
    ] {
        assert!(help.contains(family), "missing {family} in:\n{text}");
    }

    // Counters are monotone across scrapes.
    let before = family_sum(&text, "p3_service_requests_total");
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}"}}"#,
            esc(QUERIES[1])
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    let after = family_sum(&scrape(&mut client), "p3_service_requests_total");
    assert!(
        after >= before + 1.0,
        "requests_total should grow: {before} -> {after}"
    );
}

#[test]
fn trace_op_returns_request_span_trees() {
    let served = Served::spawn(&[]);
    let mut client = Client::connect_tcp(&served.tcp).unwrap();

    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}","id":77}}"#,
            esc(QUERIES[0])
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);

    let resp = client.request(r#"{"op":"trace","n":5}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);
    let result = resp.result.unwrap();
    assert_eq!(result.get("enabled").unwrap().as_bool(), Some(true));
    let trees = result.get("trees").unwrap().as_array().unwrap().to_vec();
    assert!(
        !trees.is_empty() && trees.len() <= 5,
        "{} trees",
        trees.len()
    );

    // Newest first: the root is the probability request we just sent,
    // carrying its request id, with the worker's execute span as a child.
    let root = &trees[0];
    assert_eq!(root.get("name").unwrap().as_str(), Some("request"));
    let fields = root.get("fields").unwrap();
    assert_eq!(fields.get("request_id").unwrap().as_str(), Some("77"));
    assert_eq!(fields.get("class").unwrap().as_str(), Some("probability"));
    let children = root.get("children").unwrap().as_array().unwrap();
    assert!(
        children
            .iter()
            .any(|c| c.get("name").unwrap().as_str() == Some("execute")),
        "request span should have an execute child: {:?}",
        root.to_json()
    );
}

/// One raw HTTP/1.1 request against the admin plane; returns
/// `(status, headers, body)` with lowercased header names.
fn http_request(addr: &str, method: &str, target: &str) -> (u16, Vec<(String, String)>, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: p3\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("no header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn http_get(addr: &str, target: &str) -> (u16, Vec<(String, String)>, String) {
    http_request(addr, "GET", target)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn admin_plane_serves_probes_metrics_and_traces_over_http() {
    let served = Served::spawn(&["--admin-addr", "127.0.0.1:0"]);
    let admin = served.admin.as_deref().unwrap();

    // One query so request metrics and a request span tree exist.
    let mut client = Client::connect_tcp(&served.tcp).unwrap();
    let resp = client
        .request(&format!(
            r#"{{"op":"probability","query":"{}"}}"#,
            esc(QUERIES[0])
        ))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);

    let (status, _, body) = http_get(admin, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, _, body) = http_get(admin, "/readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    let (status, headers, body) = http_get(admin, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    for family in [
        "p3_service_requests_total",
        "p3_service_queue_depth",
        "p3_service_workers_busy",
        // The query above forced a (demand) evaluation, so the engine's
        // per-rule and per-stratum attribution families exist.
        "p3_engine_rule_firings_total",
        "p3_engine_rule_candidates_total",
        "p3_engine_stratum_firings_total",
    ] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }
    assert_eq!(
        header(&headers, "content-length").and_then(|v| v.parse::<usize>().ok()),
        Some(body.len())
    );

    let (status, headers, body) = http_get(admin, "/traces?n=5");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    assert!(body.contains("traceEvents"), "{body}");
    assert!(body.contains("request"), "{body}");

    // The EXPLAIN plane: accumulated per-rule cost attribution.
    let (status, headers, body) = http_get(admin, "/explain");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    for needle in [
        "\"rule_cost_total\"",
        "\"top_rules\"",
        "\"plans\"",
        "\"mode\":\"demand\"",
        "\"r3\"",
    ] {
        assert!(body.contains(needle), "missing {needle} in:\n{body}");
    }

    let (status, _, _) = http_get(admin, "/no-such-route");
    assert_eq!(status, 404);

    let (status, headers, _) = http_request(admin, "POST", "/metrics");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("GET"));
}

#[test]
fn explain_command_round_trips_through_the_client_binary() {
    let served = Served::spawn(&[]);
    let output = Command::new(env!("CARGO_BIN_EXE_p3-client"))
        .arg("--tcp")
        .arg(&served.tcp)
        .arg("explain")
        .arg(QUERIES[0])
        .output()
        .unwrap();
    assert!(output.status.success(), "p3-client exit: {output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    for needle in ["\"mode\":\"demand\"", "\"rules\":", "\"r3\"", "\"caches\":"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
    // The naive override explains the whole-program run instead.
    let output = Command::new(env!("CARGO_BIN_EXE_p3-client"))
        .arg("--tcp")
        .arg(&served.tcp)
        .arg("explain")
        .arg(QUERIES[0])
        .arg("--eval-mode")
        .arg("naive")
        .output()
        .unwrap();
    assert!(output.status.success(), "p3-client exit: {output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("\"mode\":\"naive\""), "{stdout}");
}

#[test]
fn one_trace_id_links_client_binary_and_server_spans() {
    let served = Served::spawn(&["--admin-addr", "127.0.0.1:0"]);
    let admin = served.admin.as_deref().unwrap();
    let trace_file = std::env::temp_dir().join(format!("p3-it-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&trace_file);

    // Run the real p3-client with --trace-out: it mints a trace id,
    // propagates it to the server, and records its own spans under it.
    let status = Command::new(env!("CARGO_BIN_EXE_p3-client"))
        .arg("--tcp")
        .arg(&served.tcp)
        .arg("--trace-out")
        .arg(&trace_file)
        .arg("probability")
        .arg(QUERIES[0])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "p3-client exit: {status:?}");

    // The client-side chrome trace carries the id and the client spans.
    let client_trace = std::fs::read_to_string(&trace_file).unwrap();
    let _ = std::fs::remove_file(&trace_file);
    let at = client_trace.find("\"trace\":\"").expect("no trace id") + "\"trace\":\"".len();
    let id = &client_trace[at..at + 32];
    assert!(
        id.len() == 32 && id.chars().all(|c| c.is_ascii_hexdigit()),
        "bad trace id {id:?} in {client_trace}"
    );
    for name in ["client.connect", "client.send", "client.recv"] {
        assert!(
            client_trace.contains(name),
            "missing {name}:\n{client_trace}"
        );
    }

    // The server's request span adopted the same id: /traces shows it.
    let (status, _, body) = http_get(admin, "/traces?n=20");
    assert_eq!(status, 200);
    assert!(
        body.contains(id),
        "server traces do not carry client trace id {id}:\n{body}"
    );
}

#[test]
fn readyz_flips_to_503_under_a_saturated_queue_and_recovers() {
    // One worker + a tiny queue: three outstanding slow Monte-Carlo
    // requests (distinct seeds, so the session cache cannot shortcut
    // them) keep the worker busy with the queue at its high-water mark.
    let served = Served::spawn(&[
        "--workers",
        "1",
        "--queue-cap",
        "2",
        "--admin-addr",
        "127.0.0.1:0",
    ]);
    let admin = served.admin.as_deref().unwrap().to_string();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let seed = std::sync::atomic::AtomicU64::new(1);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let tcp = served.tcp.clone();
            let stop = &stop;
            let seed = &seed;
            scope.spawn(move || {
                let mut client = Client::connect_tcp(&tcp).unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = seed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let resp = client
                        .request(&format!(
                            r#"{{"op":"probability","query":"{}","method":"mc","samples":2000000,"seed":{s}}}"#,
                            esc(QUERIES[0])
                        ))
                        .unwrap();
                    assert_eq!(resp.status, Status::Ok);
                }
            });
        }

        // Poll until saturation is visible, then release the producers.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, _, body) = http_get(&admin, "/readyz");
            if status == 503 {
                assert!(body.contains("not ready: saturated"), "{body}");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "readyz never reported saturation"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Producers are gone and the queue has drained: ready again.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, _) = http_get(&admin, "/readyz");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "readyz never recovered");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn profile_endpoint_emits_folded_stacks_under_load() {
    let served = Served::spawn(&["--workers", "2", "--admin-addr", "127.0.0.1:0"]);
    let admin = served.admin.as_deref().unwrap().to_string();

    // Keep the server busy for the whole sampling window with fresh
    // Monte-Carlo work (distinct seeds defeat the session cache).
    let stop = std::sync::atomic::AtomicBool::new(false);
    let seed = std::sync::atomic::AtomicU64::new(1_000);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let tcp = served.tcp.clone();
            let stop = &stop;
            let seed = &seed;
            scope.spawn(move || {
                let mut client = Client::connect_tcp(&tcp).unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = seed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let resp = client
                        .request(&format!(
                            r#"{{"op":"probability","query":"{}","method":"mc","samples":500000,"seed":{s}}}"#,
                            esc(QUERIES[0])
                        ))
                        .unwrap();
                    assert_eq!(resp.status, Status::Ok);
                }
            });
        }

        let (status, headers, body) = http_get(&admin, "/profile?secs=1");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);

        assert_eq!(status, 200);
        assert!(header(&headers, "content-type")
            .unwrap()
            .starts_with("text/plain"));
        // Every line is `frame;frame;… count` — the folded-stack format
        // flamegraph.pl and speedscope ingest directly.
        let mut lines = 0;
        for line in body.lines().filter(|l| !l.is_empty()) {
            lines += 1;
            let (stack, count) = line.rsplit_once(' ').expect("no count field");
            assert!(!stack.is_empty(), "empty stack in {line:?}");
            assert!(
                count.parse::<u64>().is_ok(),
                "unparseable count in {line:?}"
            );
        }
        assert!(lines > 0, "no samples despite constant load:\n{body}");
        // The NDJSON handler threads hold an open `request` span for the
        // whole round-trip, so the profile must have caught one.
        assert!(body.contains("request"), "{body}");
    });
}

#[test]
fn sigterm_triggers_graceful_shutdown() {
    let mut served = Served::spawn(&[]);
    // Make sure it serves before signalling.
    let mut client = Client::connect_unix(&served.unix).unwrap();
    let resp = client.request(r#"{"op":"ping"}"#).unwrap();
    assert_eq!(resp.status, Status::Ok);

    let kill = Command::new("kill")
        .arg("-TERM")
        .arg(served.child.id().to_string())
        .status()
        .unwrap();
    assert!(kill.success());
    let status = served.wait_for_exit();
    assert!(status.success(), "p3-serve exit after SIGTERM: {status:?}");
}
