//! Provenance maintenance during evaluation (§3.2, optimised variant).
//!
//! [`CaptureSink`] implements the engine's derivation seam and materialises
//! the provenance graph as a side-computation of rule evaluation — the
//! paper's footnote-1 optimisation of the rule-rewrite scheme, where the
//! (shared) rule body is evaluated once and both dependency records are
//! emitted from the same grounding.

use crate::graph::ProvGraph;
use p3_datalog::ast::ClauseId;
use p3_datalog::engine::{Database, DerivationSink, Engine, TupleId};
use p3_datalog::explain::{self, ExplainPlan};
use p3_datalog::program::Program;

/// A [`DerivationSink`] that builds a [`ProvGraph`].
#[derive(Default, Debug)]
pub struct CaptureSink {
    graph: ProvGraph,
}

impl CaptureSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the captured graph.
    pub fn into_graph(self) -> ProvGraph {
        self.graph
    }

    /// The graph captured so far.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }
}

impl DerivationSink for CaptureSink {
    fn base_fact(&mut self, clause: ClauseId, tuple: TupleId) {
        self.graph.add_base(clause, tuple);
    }

    fn derived(&mut self, rule: ClauseId, head: TupleId, body: &[TupleId]) {
        // The engine reports each grounding exactly once (see the engine
        // module's semi-naive discipline), so no dedup is needed here.
        self.graph.add_exec_unchecked(rule, head, body);
    }
}

/// Evaluates `program` with provenance maintenance, returning the database
/// and the provenance graph. This is the P3 execution mode.
pub fn evaluate_with_provenance(program: &Program) -> (Database, ProvGraph) {
    let (db, graph, _) = evaluate_with_provenance_plan(program);
    (db, graph)
}

/// Like [`evaluate_with_provenance`], but also returns the run's
/// [`ExplainPlan`] — per-rule cost attribution the engine would otherwise
/// drop with its stack frame. The plan's top rules are published to the
/// `p3_engine_rule_*` metric families as a side effect.
pub fn evaluate_with_provenance_plan(program: &Program) -> (Database, ProvGraph, ExplainPlan) {
    let mut span = p3_obs::span::span("provenance.capture");
    let mut sink = CaptureSink::new();
    let mut engine = Engine::new(program);
    let db = engine.run(&mut sink);
    let plan = ExplainPlan::from_engine(&engine);
    explain::publish_rule_metrics(&plan, explain::METRIC_TOP_RULES);
    let graph = sink.into_graph();
    span.add_field("tuples", db.len());
    span.add_field("execs", graph.num_execs());
    p3_obs::counter!(
        "p3_provenance_captured_execs_total",
        "Rule executions recorded into provenance graphs"
    )
    .add(graph.num_execs() as u64);
    (db, graph, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Derivation;

    #[test]
    fn captures_base_and_rule_derivations() {
        let p = Program::parse(
            "r1 1.0: q(X) :- p(X).
             t1 0.5: p(a).",
        )
        .unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let p_sym = p.symbols().get("p").unwrap();
        let q_sym = p.symbols().get("q").unwrap();
        let a = p3_datalog::ast::Const::Sym(p.symbols().get("a").unwrap());
        let pa = db.lookup(p_sym, &[a]).unwrap();
        let qa = db.lookup(q_sym, &[a]).unwrap();
        assert!(matches!(g.derivations(pa), [Derivation::Base(_)]));
        match g.derivations(qa) {
            [Derivation::Rule(e)] => {
                let exec = g.exec(*e);
                assert_eq!(exec.body, &[pa]);
                assert_eq!(exec.rule, p.clause_by_label("r1").unwrap());
            }
            other => panic!("unexpected derivations {other:?}"),
        }
    }

    #[test]
    fn acquaintance_graph_shape_matches_fig3() {
        // know("Ben","Elena") has exactly one rule execution (r3), whose
        // body contains know("Ben","Steve") (base) and know("Steve","Elena")
        // (two derivations: r1 and r2) — the structure of Fig 3.
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        let p = Program::parse(src).unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let know = p.symbols().get("know").unwrap();
        let s = |n: &str| p3_datalog::ast::Const::Sym(p.symbols().get(n).unwrap());
        let ben_elena = db.lookup(know, &[s("Ben"), s("Elena")]).unwrap();
        let steve_elena = db.lookup(know, &[s("Steve"), s("Elena")]).unwrap();
        let ben_steve = db.lookup(know, &[s("Ben"), s("Steve")]).unwrap();

        let r3 = p.clause_by_label("r3").unwrap();
        let derivs = g.derivations(ben_elena);
        assert_eq!(derivs.len(), 1);
        match derivs[0] {
            Derivation::Rule(e) => {
                let exec = g.exec(e);
                assert_eq!(exec.rule, r3);
                assert_eq!(exec.body, &[ben_steve, steve_elena]);
            }
            other => panic!("unexpected derivation {other:?}"),
        }
        assert_eq!(g.derivations(steve_elena).len(), 2, "via r1 and via r2");
        assert!(g.is_base(ben_steve));
    }

    #[test]
    fn recursive_program_graph_contains_cycles() {
        // a ↔ b reachability: reach(a) and reach(b) derive each other.
        let p = Program::parse(
            "r1 1.0: reach(X) :- src(X).
             r2 1.0: reach(Y) :- reach(X), edge(X,Y).
             t0 1.0: src(a).
             e1 0.5: edge(a,b).
             e2 0.5: edge(b,a).",
        )
        .unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let reach = p.symbols().get("reach").unwrap();
        let a = p3_datalog::ast::Const::Sym(p.symbols().get("a").unwrap());
        let b = p3_datalog::ast::Const::Sym(p.symbols().get("b").unwrap());
        let ra = db.lookup(reach, &[a]).unwrap();
        let rb = db.lookup(reach, &[b]).unwrap();
        // reach(a) is derivable from src(a) AND from reach(b) via the back
        // edge: two derivations, one of which is cyclic.
        assert_eq!(g.derivations(ra).len(), 2);
        assert!(g.reachable_tuples(ra).contains(&rb));
        assert!(g.reachable_tuples(rb).contains(&ra));
    }
}
