//! Provenance-polynomial extraction (§3.3).
//!
//! Starting from the queried tuple, the extractor walks the provenance
//! graph downward, turning alternative derivations into `+` and conjunctive
//! rule bodies into `·`, until only base tuples and rule literals remain.
//!
//! **Cycle elimination.** A recursive program yields cycles: a derived
//! tuple that is an input to one of its own derivations. Equations 6–13 of
//! the paper show that derivations passing through the queried tuple (or,
//! recursively, through any tuple already on the current derivation path)
//! contribute nothing to the success probability — the absorption law
//! `(1 + P) · Q = Q + P·Q` collapses them. The extractor therefore skips
//! any rule execution whose body revisits a tuple on the current
//! root-to-node path, producing the acyclic polynomial `P'_E + P'_L`
//! directly. The `worlds`-oracle integration tests verify this is
//! probability-preserving.
//!
//! **Hop limits.** §6.1 bounds provenance retrieval depth ("hop limit 4").
//! [`ExtractOptions::max_depth`] caps the number of nested rule executions;
//! derivations that would exceed it are dropped.
//!
//! **Memoisation.** Sub-polynomials of *clean* tuples — tuples whose entire
//! downward closure is acyclic — cannot interact with the path-based skip,
//! so they are cached per `(tuple, remaining-depth)`. Cyclic regions fall
//! back to plain path-sensitive DFS. The caches live in an [`Analysis`]
//! value that can be owned by one [`Extractor`] or shared (behind `Arc`)
//! across many, so a query session extracting the same subgoal from
//! different roots — or re-extracting the same root — pays for it once.

use crate::graph::{Derivation, ProvGraph};
use crate::vars::var_of;
use p3_datalog::engine::TupleId;
use p3_prob::Dnf;
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;

/// Options controlling extraction.
///
/// `Eq`/`Hash` let results be memoized per `(tuple, options)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ExtractOptions {
    /// Maximum number of nested rule executions; `None` means unbounded
    /// (safe: cycle elimination guarantees termination regardless).
    pub max_depth: Option<usize>,
}

impl ExtractOptions {
    /// Unbounded extraction.
    pub fn unbounded() -> Self {
        Self { max_depth: None }
    }

    /// Extraction capped at `depth` nested rule executions.
    pub fn with_max_depth(depth: usize) -> Self {
        Self {
            max_depth: Some(depth),
        }
    }
}

/// Extracts the provenance polynomial of `root` from `graph`.
///
/// Convenience wrapper around [`Extractor`]; when extracting polynomials
/// for many tuples of the same graph, build one [`Extractor`] and reuse it.
pub fn extract_polynomial(graph: &ProvGraph, root: TupleId, opts: ExtractOptions) -> Dnf {
    Extractor::new(graph).polynomial(root, opts)
}

/// The shareable per-graph extraction state: the cycle analysis plus the
/// memo caches it enables.
///
/// An `Analysis` belongs to exactly one [`ProvGraph`] (the one it was built
/// from); using it with any other graph produces garbage. It is internally
/// synchronised, so one instance may serve concurrent extractions — the
/// `p3-core` shared query core keeps one `Arc<Analysis>` next to its
/// `Arc<ProvGraph>` and every session's extractor reuses both.
pub struct Analysis {
    /// Tuples whose downward closure contains no cycle.
    clean: HashSet<TupleId>,
    /// Sub-polynomials of clean tuples, keyed by `(tuple, remaining-depth)`
    /// (remaining depth is `usize::MAX` when unbounded).
    memo: RwLock<HashMap<(TupleId, usize), Dnf>>,
    /// Finished extractions, keyed by `(root, options)`.
    results: RwLock<HashMap<(TupleId, ExtractOptions), Dnf>>,
}

impl Analysis {
    /// Analyses `graph` (Tarjan SCC over the tuple-dependency projection)
    /// and prepares empty caches.
    pub fn new(graph: &ProvGraph) -> Self {
        Self {
            clean: compute_clean(graph),
            memo: RwLock::new(HashMap::new()),
            results: RwLock::new(HashMap::new()),
        }
    }

    /// Whether every derivation below `tuple` is acyclic.
    pub fn is_clean(&self, tuple: TupleId) -> bool {
        self.clean.contains(&tuple)
    }

    /// Number of finished extractions currently cached.
    pub fn cached_results(&self) -> usize {
        self.results.read().unwrap().len()
    }
}

/// A reusable extractor over one provenance graph.
///
/// Construction analyses the graph's cycle structure so that acyclic
/// regions can be memoised; see [`Analysis`]. [`Extractor::new`] owns its
/// analysis, [`Extractor::with_analysis`] borrows a shared one so repeated
/// extractions across extractors hit the same caches.
pub struct Extractor<'g> {
    graph: &'g ProvGraph,
    analysis: AnalysisRef<'g>,
}

enum AnalysisRef<'g> {
    Owned(Box<Analysis>),
    Shared(&'g Analysis),
}

impl<'g> Extractor<'g> {
    /// Analyses `graph` and prepares an extractor with its own caches.
    pub fn new(graph: &'g ProvGraph) -> Self {
        Self {
            graph,
            analysis: AnalysisRef::Owned(Box::new(Analysis::new(graph))),
        }
    }

    /// An extractor reusing a shared [`Analysis`] (which must have been
    /// built from this same `graph`).
    pub fn with_analysis(graph: &'g ProvGraph, analysis: &'g Analysis) -> Self {
        Self {
            graph,
            analysis: AnalysisRef::Shared(analysis),
        }
    }

    /// The analysis in use (owned or shared).
    pub fn analysis(&self) -> &Analysis {
        match &self.analysis {
            AnalysisRef::Owned(a) => a,
            AnalysisRef::Shared(a) => a,
        }
    }

    /// Whether every derivation below `tuple` is acyclic.
    pub fn is_clean(&self, tuple: TupleId) -> bool {
        self.analysis().is_clean(tuple)
    }

    /// The provenance polynomial of `root`.
    ///
    /// Finished results are memoized per `(root, opts)` in the analysis, so
    /// repeated calls — from this extractor or any other sharing the same
    /// analysis — are O(1) after the first.
    pub fn polynomial(&self, root: TupleId, opts: ExtractOptions) -> Dnf {
        let analysis = self.analysis();
        if let Some(hit) = analysis.results.read().unwrap().get(&(root, opts)) {
            p3_obs::counter!(
                "p3_provenance_result_hits_total",
                "Finished extractions served from the shared result cache"
            )
            .inc();
            return hit.clone();
        }
        let mut span = p3_obs::span::span("provenance.extract");
        span.add_field("root", root.0);
        let mut cx = Cx {
            graph: self.graph,
            analysis,
            memo: HashMap::new(),
            path: HashSet::new(),
            max_depth: opts.max_depth,
            memo_hits: 0,
            memo_misses: 0,
            cycle_skips: 0,
            hop_truncations: 0,
        };
        let dnf = cx.expand(root, 0);
        cx.flush_counters(&mut span);
        span.add_field("monomials", dnf.len());
        // Publish this call's clean-tuple sub-polynomials for later calls.
        if !cx.memo.is_empty() {
            let mut shared = analysis.memo.write().unwrap();
            for (key, value) in cx.memo {
                shared.entry(key).or_insert(value);
            }
        }
        analysis
            .results
            .write()
            .unwrap()
            .insert((root, opts), dnf.clone());
        dnf
    }
}

/// Current process-global extraction-memo tallies as `(hits, misses)` —
/// the same counters [`Cx::flush_counters`] publishes, read back so
/// stage profilers can report per-stage deltas without re-deriving the
/// counter names. Global (not per-call): deltas taken around a stage
/// are approximate under concurrent extraction.
pub fn memo_counters() -> (u64, u64) {
    let hits = p3_obs::counter!(
        "p3_provenance_memo_hits_total",
        "Clean-tuple sub-polynomials served from the extraction memo"
    )
    .get();
    let misses = p3_obs::counter!(
        "p3_provenance_memo_misses_total",
        "Clean-tuple sub-polynomials computed and inserted into the memo"
    )
    .get();
    (hits, misses)
}

struct Cx<'a, 'g> {
    graph: &'g ProvGraph,
    analysis: &'a Analysis,
    /// This call's memo for clean tuples; seeded lazily from the shared one
    /// and merged back on completion (keeping lock traffic off the hot
    /// recursion as much as possible).
    memo: HashMap<(TupleId, usize), Dnf>,
    path: HashSet<TupleId>,
    max_depth: Option<usize>,
    /// Per-call tallies, flushed to the global metrics once per
    /// extraction so the recursion itself touches no shared state.
    memo_hits: u64,
    memo_misses: u64,
    cycle_skips: u64,
    hop_truncations: u64,
}

impl Cx<'_, '_> {
    /// Publishes this call's tallies to the metrics registry and the
    /// extraction span.
    fn flush_counters(&self, span: &mut p3_obs::span::Span) {
        p3_obs::counter!(
            "p3_provenance_memo_hits_total",
            "Clean-tuple sub-polynomials served from the extraction memo"
        )
        .add(self.memo_hits);
        p3_obs::counter!(
            "p3_provenance_memo_misses_total",
            "Clean-tuple sub-polynomials computed and inserted into the memo"
        )
        .add(self.memo_misses);
        p3_obs::counter!(
            "p3_provenance_cycle_skips_total",
            "Derivations skipped by path-based cycle elimination"
        )
        .add(self.cycle_skips);
        p3_obs::counter!(
            "p3_provenance_hop_truncations_total",
            "Derivations dropped because the hop limit was exhausted"
        )
        .add(self.hop_truncations);
        span.add_field("memo_hits", self.memo_hits);
        span.add_field("cycle_skips", self.cycle_skips);
        span.add_field("hop_truncations", self.hop_truncations);
    }

    /// Remaining rule-nesting budget at `depth`.
    fn remaining(&self, depth: usize) -> usize {
        match self.max_depth {
            Some(max) => max.saturating_sub(depth),
            None => usize::MAX,
        }
    }

    fn expand(&mut self, tuple: TupleId, depth: usize) -> Dnf {
        let remaining = self.remaining(depth);
        let clean = self.analysis.is_clean(tuple);
        if clean {
            if let Some(hit) = self.memo.get(&(tuple, remaining)) {
                self.memo_hits += 1;
                return hit.clone();
            }
            if let Some(hit) = self.analysis.memo.read().unwrap().get(&(tuple, remaining)) {
                self.memo_hits += 1;
                self.memo.insert((tuple, remaining), hit.clone());
                return hit.clone();
            }
        }

        let mut acc = Dnf::zero();
        self.path.insert(tuple);
        'derivs: for d in self.graph.derivations(tuple) {
            match d {
                Derivation::Base(clause) => {
                    acc = acc.or(&Dnf::literal(var_of(*clause)));
                }
                Derivation::Rule(exec_id) => {
                    if remaining == 0 {
                        self.hop_truncations += 1;
                        continue; // hop limit reached
                    }
                    let exec = self.graph.exec(*exec_id);
                    // Cycle elimination: a body tuple already on the current
                    // path makes this derivation contribute nothing.
                    if exec.body.iter().any(|b| self.path.contains(b)) {
                        self.cycle_skips += 1;
                        continue 'derivs;
                    }
                    let mut product = Dnf::literal(var_of(exec.rule));
                    for &b in exec.body.iter() {
                        let sub = self.expand(b, depth + 1);
                        if sub.is_false() {
                            continue 'derivs;
                        }
                        product = product.and(&sub);
                    }
                    acc = acc.or(&product);
                }
            }
        }
        self.path.remove(&tuple);

        if clean {
            self.memo_misses += 1;
            self.memo.insert((tuple, remaining), acc.clone());
        }
        acc
    }
}

/// Computes the set of tuples whose downward closure is acyclic, via an
/// iterative Tarjan SCC over the tuple-dependency projection
/// (`tuple → body tuples of its rule executions`).
fn compute_clean(graph: &ProvGraph) -> HashSet<TupleId> {
    // Adjacency over tuples appearing in the graph.
    let mut adj: HashMap<TupleId, Vec<TupleId>> = HashMap::new();
    for t in graph.tuples() {
        let mut succ: Vec<TupleId> = Vec::new();
        for d in graph.derivations(t) {
            if let Derivation::Rule(e) = d {
                succ.extend(graph.exec(*e).body.iter().copied());
            }
        }
        succ.sort_unstable();
        succ.dedup();
        adj.insert(t, succ);
    }

    // Iterative Tarjan.
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
    }
    let mut states: HashMap<TupleId, NodeState> = HashMap::new();
    let mut stack: Vec<TupleId> = Vec::new();
    let mut next_index = 0u32;
    // SCCs in emission order (reverse topological: successors first).
    let mut sccs: Vec<Vec<TupleId>> = Vec::new();

    for &start in adj.keys() {
        if states.contains_key(&start) {
            continue;
        }
        // Explicit DFS frames: (node, next-child-position).
        let mut frames: Vec<(TupleId, usize)> = vec![(start, 0)];
        states.insert(
            start,
            NodeState {
                index: next_index,
                lowlink: next_index,
                on_stack: true,
            },
        );
        stack.push(start);
        next_index += 1;

        while !frames.is_empty() {
            // Pull the next child (if any) out of the top frame, then release
            // the frame borrow before mutating `frames` again.
            let (node, next_child) = {
                let frame = frames.last_mut().expect("non-empty");
                let node = frame.0;
                let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
                let next = children.get(frame.1).copied();
                frame.1 += 1;
                (node, next)
            };
            match next_child {
                Some(child) => {
                    // A body tuple with no derivations of its own (impossible
                    // after a run, but robust against partial graphs) is
                    // skipped.
                    if !adj.contains_key(&child) {
                        continue;
                    }
                    match states.get(&child) {
                        None => {
                            states.insert(
                                child,
                                NodeState {
                                    index: next_index,
                                    lowlink: next_index,
                                    on_stack: true,
                                },
                            );
                            next_index += 1;
                            stack.push(child);
                            frames.push((child, 0));
                        }
                        Some(s) if s.on_stack => {
                            let child_index = s.index;
                            let st = states.get_mut(&node).expect("visited");
                            st.lowlink = st.lowlink.min(child_index);
                        }
                        Some(_) => {}
                    }
                }
                None => {
                    frames.pop();
                    let node_state = states[&node];
                    if let Some(&(parent, _)) = frames.last() {
                        let pl = states.get_mut(&parent).expect("visited");
                        pl.lowlink = pl.lowlink.min(node_state.lowlink);
                    }
                    if node_state.lowlink == node_state.index {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack underflow");
                            states.get_mut(&w).expect("visited").on_stack = false;
                            scc.push(w);
                            if w == node {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                }
            }
        }
    }

    // Emission order is reverse-topological, so every successor's
    // cleanliness is known when its predecessors are processed.
    let mut clean: HashSet<TupleId> = HashSet::new();
    for scc in &sccs {
        let cyclic = scc.len() > 1
            || adj
                .get(&scc[0])
                .is_some_and(|succ| succ.binary_search(&scc[0]).is_ok());
        if cyclic {
            continue;
        }
        let t = scc[0];
        let all_children_clean = adj[&t]
            .iter()
            .filter(|c| adj.contains_key(*c))
            .all(|c| clean.contains(c));
        if all_children_clean {
            clean.insert(t);
        }
    }
    clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::evaluate_with_provenance;
    use p3_datalog::ast::Const;
    use p3_datalog::program::Program;
    use p3_datalog::worlds;
    use p3_prob::exact;

    /// Runs `program` with provenance, extracts the polynomial for `query`
    /// (e.g. `know("Ben","Elena")`) and returns (polynomial, vars).
    fn pipeline(src: &str, query: &str) -> (Dnf, p3_prob::VarTable, Program) {
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let (pred, args) = worlds::parse_ground_query(&program, query).unwrap();
        let tuple = db.lookup(pred, &args).expect("query tuple not derived");
        let dnf = extract_polynomial(&graph, tuple, ExtractOptions::unbounded());
        let vars = crate::vars::clause_vars(&program);
        (dnf, vars, program)
    }

    #[test]
    fn base_tuple_polynomial_is_its_own_literal() {
        let (dnf, vars, p) = pipeline("t1 0.4: p(a).", "p(a)");
        let t1 = var_of(p.clause_by_label("t1").unwrap());
        assert_eq!(dnf, Dnf::literal(t1));
        assert!((exact::probability(&dnf, &vars) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn acquaintance_polynomial_matches_the_paper() {
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        let (dnf, vars, _) = pipeline(src, r#"know("Ben","Elena")"#);
        // λ = r3·t6·(r1·t1·t2 + r2·t4·t5): two monomials of 5 literals.
        assert_eq!(dnf.len(), 2);
        assert!(dnf.monomials().iter().all(|m| m.len() == 5));
        let p = exact::probability(&dnf, &vars);
        assert!((p - 0.16384).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn polynomial_probability_equals_possible_worlds_on_cycles() {
        // The §3.3 theorem, end to end: cyclic provenance, acyclic
        // extraction, exact DNF probability == world enumeration.
        let src = "r1 1.0: reach(X) :- src(X).
                   r2 0.9: reach(Y) :- reach(X), edge(X,Y).
                   t0 1.0: src(a).
                   e1 0.5: edge(a,b).
                   e2 0.6: edge(b,a).
                   e3 0.7: edge(b,c).
                   e4 0.4: edge(c,a).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let vars = crate::vars::clause_vars(&program);
        for q in ["reach(a)", "reach(b)", "reach(c)"] {
            let oracle = worlds::success_probability_str(&program, q).unwrap();
            let (pred, args) = worlds::parse_ground_query(&program, q).unwrap();
            let tuple = db.lookup(pred, &args).unwrap();
            let dnf = extract_polynomial(&graph, tuple, ExtractOptions::unbounded());
            let p = exact::probability(&dnf, &vars);
            assert!((p - oracle).abs() < 1e-9, "{q}: dnf={p} oracle={oracle}");
        }
    }

    #[test]
    fn self_loop_contributes_nothing() {
        // know(a,a)-style self-supporting derivations are eliminated.
        let src = "r1 0.5: p(X) :- p(X), q(X).
                   r2 1.0: p(X) :- s(X).
                   t1 0.8: q(a).
                   t2 0.5: s(a).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let vars = crate::vars::clause_vars(&program);
        let (pred, args) = worlds::parse_ground_query(&program, "p(a)").unwrap();
        let tuple = db.lookup(pred, &args).unwrap();
        let dnf = extract_polynomial(&graph, tuple, ExtractOptions::unbounded());
        // Only r2·t2 survives.
        assert_eq!(dnf.len(), 1);
        let p = exact::probability(&dnf, &vars);
        let oracle = worlds::success_probability_str(&program, "p(a)").unwrap();
        assert!((p - oracle).abs() < 1e-12);
    }

    #[test]
    fn hop_limit_truncates_long_derivations() {
        // Chain a→b→c→d: reach(d) needs 3 nested rule executions beyond r1.
        let src = "r1 1.0: reach(X) :- src(X).
                   r2 1.0: reach(Y) :- reach(X), edge(X,Y).
                   t0 1.0: src(a).
                   e1 0.5: edge(a,b). e2 0.5: edge(b,c). e3 0.5: edge(c,d).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let reach = program.symbols().get("reach").unwrap();
        let d = Const::Sym(program.symbols().get("d").unwrap());
        let tuple = db.lookup(reach, &[d]).unwrap();
        // Unbounded: one derivation (r2·r2·r2·r1 chain + edges).
        let full = extract_polynomial(&graph, tuple, ExtractOptions::unbounded());
        assert_eq!(full.len(), 1);
        // Depth 4 suffices (r2,r2,r2,r1); depth 3 does not.
        assert_eq!(
            extract_polynomial(&graph, tuple, ExtractOptions::with_max_depth(4)).len(),
            1
        );
        assert!(extract_polynomial(&graph, tuple, ExtractOptions::with_max_depth(3)).is_false());
    }

    #[test]
    fn clean_marking_distinguishes_cyclic_regions() {
        let src = "r1 1.0: reach(X) :- src(X).
                   r2 1.0: reach(Y) :- reach(X), edge(X,Y).
                   t0 1.0: src(a).
                   e1 0.5: edge(a,b).
                   e2 0.5: edge(b,a).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let ex = Extractor::new(&graph);
        let reach = program.symbols().get("reach").unwrap();
        let edge = program.symbols().get("edge").unwrap();
        let a = Const::Sym(program.symbols().get("a").unwrap());
        let b = Const::Sym(program.symbols().get("b").unwrap());
        let ra = db.lookup(reach, &[a]).unwrap();
        let e_ab = db.lookup(edge, &[a, b]).unwrap();
        assert!(!ex.is_clean(ra), "reach(a) participates in a cycle");
        assert!(ex.is_clean(e_ab), "base tuples are clean");
    }

    #[test]
    fn shared_subterms_are_memoized_consistently() {
        // A diamond: top depends twice on mid; extraction must agree with
        // the oracle (memoisation must not double-count or miss sharing).
        let src = "r1 0.9: top(X) :- mid(X), l(X).
                   r2 0.8: top(X) :- mid(X), r(X).
                   r3 1.0: mid(X) :- base(X).
                   t1 0.5: base(a). t2 0.7: l(a). t3 0.6: r(a).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let vars = crate::vars::clause_vars(&program);
        let (pred, args) = worlds::parse_ground_query(&program, "top(a)").unwrap();
        let tuple = db.lookup(pred, &args).unwrap();
        let dnf = extract_polynomial(&graph, tuple, ExtractOptions::unbounded());
        let p = exact::probability(&dnf, &vars);
        let oracle = worlds::success_probability_str(&program, "top(a)").unwrap();
        assert!((p - oracle).abs() < 1e-12, "dnf={p} oracle={oracle}");
    }

    #[test]
    fn repeated_extraction_is_cached() {
        let src = "r1 1.0: reach(X) :- src(X).
                   r2 0.9: reach(Y) :- reach(X), edge(X,Y).
                   t0 1.0: src(a).
                   e1 0.5: edge(a,b).
                   e2 0.6: edge(b,a).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let (pred, args) = worlds::parse_ground_query(&program, "reach(b)").unwrap();
        let tuple = db.lookup(pred, &args).unwrap();
        let ex = Extractor::new(&graph);
        let first = ex.polynomial(tuple, ExtractOptions::unbounded());
        assert_eq!(ex.analysis().cached_results(), 1);
        let second = ex.polynomial(tuple, ExtractOptions::unbounded());
        assert_eq!(first, second);
        assert_eq!(ex.analysis().cached_results(), 1, "hit, not a second entry");
        // Different options are distinct cache entries.
        let capped = ex.polynomial(tuple, ExtractOptions::with_max_depth(1));
        assert_ne!(first, capped);
        assert_eq!(ex.analysis().cached_results(), 2);
    }

    #[test]
    fn shared_analysis_serves_multiple_extractors() {
        let src = "r1 0.9: top(X) :- mid(X), l(X).
                   r2 0.8: top(X) :- mid(X), r(X).
                   r3 1.0: mid(X) :- base(X).
                   t1 0.5: base(a). t2 0.7: l(a). t3 0.6: r(a).";
        let program = Program::parse(src).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let analysis = Analysis::new(&graph);
        let (pred, args) = worlds::parse_ground_query(&program, "top(a)").unwrap();
        let tuple = db.lookup(pred, &args).unwrap();
        let a = Extractor::with_analysis(&graph, &analysis);
        let b = Extractor::with_analysis(&graph, &analysis);
        let pa = a.polynomial(tuple, ExtractOptions::unbounded());
        let pb = b.polynomial(tuple, ExtractOptions::unbounded());
        assert_eq!(pa, pb);
        assert_eq!(
            analysis.cached_results(),
            1,
            "the second extractor hit the cache"
        );
        // And matches an extractor with a private analysis.
        assert_eq!(
            pa,
            Extractor::new(&graph).polynomial(tuple, ExtractOptions::unbounded())
        );
    }

    #[test]
    fn non_derivable_tuple_yields_false() {
        let program = Program::parse("t1 0.5: p(a).").unwrap();
        let (_db, graph) = evaluate_with_provenance(&program);
        // A fabricated tuple id that has no derivations.
        let dnf = extract_polynomial(
            &graph,
            p3_datalog::engine::TupleId(999),
            ExtractOptions::unbounded(),
        );
        assert!(dnf.is_false());
    }
}
