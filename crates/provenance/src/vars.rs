//! The clause ↔ Boolean-variable correspondence.
//!
//! Under the distribution semantics each program clause — base tuple or
//! rule — is one independent Boolean random variable. We keep the mapping
//! maximally simple: **variable `i` is clause `i`** ([`p3_prob::VarId`] and
//! [`p3_datalog::ast::ClauseId`] share indices), and the [`VarTable`] is
//! built from the program in clause order, named by clause labels.

use p3_datalog::ast::ClauseId;
use p3_datalog::program::Program;
use p3_prob::{VarId, VarTable};

/// Builds the variable table for `program`: one variable per clause, in
/// clause order, named by the clause label, with the clause probability.
pub fn clause_vars(program: &Program) -> VarTable {
    let mut table = VarTable::new();
    for (_, clause) in program.iter() {
        table.add(clause.label.clone(), clause.prob);
    }
    table
}

/// The variable for a clause.
#[inline]
pub fn var_of(clause: ClauseId) -> VarId {
    VarId(clause.0)
}

/// The clause for a variable.
#[inline]
pub fn clause_of(var: VarId) -> ClauseId {
    ClauseId(var.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mirrors_clause_order_labels_and_probs() {
        let p = Program::parse(
            "r1 0.8: q(X) :- p(X).
             t1 0.4: p(a).
             t2 0.6: p(b).",
        )
        .unwrap();
        let vars = clause_vars(&p);
        assert_eq!(vars.len(), 3);
        assert_eq!(vars.name(VarId(0)), "r1");
        assert_eq!(vars.prob(VarId(0)), 0.8);
        assert_eq!(vars.name(VarId(1)), "t1");
        assert_eq!(vars.prob(VarId(2)), 0.6);
        let r1 = p.clause_by_label("r1").unwrap();
        assert_eq!(var_of(r1), VarId(0));
        assert_eq!(clause_of(VarId(0)), r1);
    }
}
