//! The provenance graph (§3.1).
//!
//! Vertices are of two kinds: **tuple vertices** (base or derived tuples,
//! identified by the engine's [`TupleId`]s) and **rule-execution vertices**
//! (one per distinct grounding of a rule body, identified by [`ExecId`]s).
//! Edges point from input tuples into a rule execution, and from a rule
//! execution to the tuple it derives. Probabilities are not duplicated
//! here: a vertex carries its clause id, and probabilities live on the
//! program / variable table.
//!
//! A tuple can have any number of derivations: several rule executions,
//! and/or one or more base-tuple assertions (two fact clauses may assert
//! the same tuple).
//!
//! ## Storage
//!
//! Provenance maintenance runs once per rule firing, so the layout is
//! optimised for append speed (Fig 9's maintenance overhead): executions
//! live in parallel arrays, body tuples in a shared arena, and per-tuple
//! derivation lists in a dense vector indexed by tuple id.

use p3_datalog::ast::ClauseId;
use p3_datalog::engine::TupleId;
use std::collections::HashSet;

/// Identifies a rule-execution vertex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ExecId(pub u32);

impl ExecId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rule-execution vertex, materialised on demand by [`ProvGraph::exec`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RuleExec<'g> {
    /// The rule that fired.
    pub rule: ClauseId,
    /// The derived tuple.
    pub head: TupleId,
    /// The grounded body tuples, in rule-body order.
    pub body: &'g [TupleId],
}

/// One way a tuple came to exist.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Derivation {
    /// Asserted by a base-tuple clause.
    Base(ClauseId),
    /// Derived by a rule execution.
    Rule(ExecId),
}

/// The complete provenance graph of one evaluation.
#[derive(Debug, Clone)]
pub struct ProvGraph {
    exec_rules: Vec<ClauseId>,
    exec_heads: Vec<TupleId>,
    /// Prefix offsets into `body_arena`; length is `execs + 1`.
    exec_body_bounds: Vec<u32>,
    body_arena: Vec<TupleId>,
    /// Derivations per tuple, indexed by tuple id (dense: the engine hands
    /// out consecutive ids).
    derivations: Vec<Vec<Derivation>>,
    /// Tuples with at least one derivation (tracked because `derivations`
    /// may contain empty padding slots).
    num_tuples: usize,
    /// Duplicate guard for the *checked* insertion API only; the capture
    /// hot path bypasses it.
    dedup: HashSet<(ClauseId, TupleId, Vec<TupleId>)>,
}

impl Default for ProvGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl ProvGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            exec_rules: Vec::new(),
            exec_heads: Vec::new(),
            exec_body_bounds: vec![0],
            body_arena: Vec::new(),
            derivations: Vec::new(),
            num_tuples: 0,
            dedup: HashSet::new(),
        }
    }

    #[inline]
    fn slot(&mut self, tuple: TupleId) -> &mut Vec<Derivation> {
        let idx = tuple.index();
        if idx >= self.derivations.len() {
            self.derivations.resize_with(idx + 1, Vec::new);
        }
        let slot = &mut self.derivations[idx];
        if slot.is_empty() {
            self.num_tuples += 1;
        }
        slot
    }

    /// Records a base-tuple assertion. Idempotent per `(clause, tuple)`.
    pub fn add_base(&mut self, clause: ClauseId, tuple: TupleId) {
        if self.dedup.insert((clause, tuple, Vec::new())) {
            self.add_base_unchecked(clause, tuple);
        }
    }

    /// Records a base-tuple assertion without duplicate detection (the
    /// engine reports each fact clause exactly once).
    pub fn add_base_unchecked(&mut self, clause: ClauseId, tuple: TupleId) {
        self.slot(tuple).push(Derivation::Base(clause));
    }

    /// Records a rule execution. Idempotent per `(rule, head, body)`.
    pub fn add_exec(&mut self, rule: ClauseId, head: TupleId, body: &[TupleId]) {
        if self.dedup.insert((rule, head, body.to_vec())) {
            self.add_exec_unchecked(rule, head, body);
        }
    }

    /// Records a rule execution **without** duplicate detection.
    ///
    /// The semi-naive engine enumerates every grounding exactly once, so
    /// capture through the [`p3_datalog::engine::DerivationSink`] seam can
    /// skip the dedup hashing and key allocation — this is the hot path of
    /// provenance maintenance (Fig 9's overhead). Callers constructing
    /// graphs by hand should use [`Self::add_exec`] instead.
    pub fn add_exec_unchecked(&mut self, rule: ClauseId, head: TupleId, body: &[TupleId]) {
        let id = ExecId(u32::try_from(self.exec_rules.len()).expect("exec id overflow"));
        self.exec_rules.push(rule);
        self.exec_heads.push(head);
        self.body_arena.extend_from_slice(body);
        self.exec_body_bounds
            .push(u32::try_from(self.body_arena.len()).expect("body arena overflow"));
        self.slot(head).push(Derivation::Rule(id));
    }

    /// The derivations of `tuple` (empty slice when the tuple is unknown —
    /// e.g. a query for a non-derivable atom).
    pub fn derivations(&self, tuple: TupleId) -> &[Derivation] {
        self.derivations
            .get(tuple.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The rule execution `id`.
    pub fn exec(&self, id: ExecId) -> RuleExec<'_> {
        RuleExec {
            rule: self.exec_rules[id.index()],
            head: self.exec_heads[id.index()],
            body: self.exec_body(id),
        }
    }

    /// The grounded body tuples of execution `id`.
    #[inline]
    pub fn exec_body(&self, id: ExecId) -> &[TupleId] {
        let start = self.exec_body_bounds[id.index()] as usize;
        let end = self.exec_body_bounds[id.index() + 1] as usize;
        &self.body_arena[start..end]
    }

    /// The rule of execution `id`.
    #[inline]
    pub fn exec_rule(&self, id: ExecId) -> ClauseId {
        self.exec_rules[id.index()]
    }

    /// The derived tuple of execution `id`.
    #[inline]
    pub fn exec_head(&self, id: ExecId) -> TupleId {
        self.exec_heads[id.index()]
    }

    /// Iterates over all rule executions.
    pub fn execs(&self) -> impl Iterator<Item = (ExecId, RuleExec<'_>)> + '_ {
        (0..self.exec_rules.len() as u32).map(|i| (ExecId(i), self.exec(ExecId(i))))
    }

    /// Number of rule-execution vertices.
    pub fn num_execs(&self) -> usize {
        self.exec_rules.len()
    }

    /// Number of tuple vertices with at least one derivation.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples
    }

    /// Whether `tuple` has a base-clause assertion among its derivations.
    pub fn is_base(&self, tuple: TupleId) -> bool {
        self.derivations(tuple)
            .iter()
            .any(|d| matches!(d, Derivation::Base(_)))
    }

    /// The set of tuple vertices in the provenance **subgraph rooted at**
    /// `root`: every tuple reachable by following derivations downward.
    pub fn reachable_tuples(&self, root: TupleId) -> HashSet<TupleId> {
        let mut seen = HashSet::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            for d in self.derivations(t) {
                if let Derivation::Rule(e) = d {
                    stack.extend(self.exec_body(*e).iter().copied());
                }
            }
        }
        seen
    }

    /// Total number of edges (tuple→exec plus exec→tuple).
    pub fn num_edges(&self) -> usize {
        self.body_arena.len() + self.exec_rules.len()
    }

    /// Iterates over all tuple vertices that have at least one derivation.
    pub fn tuples(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.derivations
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(i, _)| TupleId(i as u32))
    }

    /// A canonical, order-independent description of the graph: one entry
    /// per derivation, `(tuple, clause, body)` with an empty body for base
    /// assertions. Rule bodies are never empty (validated), so the two
    /// derivation kinds cannot collide. Used to compare capture strategies.
    pub fn signature(&self) -> std::collections::BTreeSet<(TupleId, ClauseId, Vec<TupleId>)> {
        let mut out = std::collections::BTreeSet::new();
        for tuple in self.tuples() {
            for d in self.derivations(tuple) {
                match d {
                    Derivation::Base(c) => {
                        out.insert((tuple, *c, Vec::new()));
                    }
                    Derivation::Rule(e) => {
                        out.insert((tuple, self.exec_rule(*e), self.exec_body(*e).to_vec()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TupleId {
        TupleId(i)
    }

    fn c(i: u32) -> ClauseId {
        ClauseId(i)
    }

    #[test]
    fn add_base_is_idempotent() {
        let mut g = ProvGraph::new();
        g.add_base(c(0), t(0));
        g.add_base(c(0), t(0));
        assert_eq!(g.derivations(t(0)).len(), 1);
    }

    #[test]
    fn two_fact_clauses_for_one_tuple() {
        let mut g = ProvGraph::new();
        g.add_base(c(0), t(0));
        g.add_base(c(1), t(0));
        assert_eq!(g.derivations(t(0)).len(), 2);
        assert!(g.is_base(t(0)));
        assert_eq!(g.num_tuples(), 1);
    }

    #[test]
    fn add_exec_dedups_identical_groundings() {
        let mut g = ProvGraph::new();
        g.add_exec(c(2), t(5), &[t(0), t(1)]);
        g.add_exec(c(2), t(5), &[t(0), t(1)]);
        g.add_exec(c(2), t(5), &[t(1), t(0)]); // different body order = different grounding
        assert_eq!(g.num_execs(), 2);
        assert_eq!(g.derivations(t(5)).len(), 2);
    }

    #[test]
    fn exec_accessors_agree() {
        let mut g = ProvGraph::new();
        g.add_exec(c(2), t(5), &[t(0), t(1)]);
        g.add_exec(c(3), t(1), &[t(2)]);
        let e0 = ExecId(0);
        let e1 = ExecId(1);
        assert_eq!(g.exec_rule(e0), c(2));
        assert_eq!(g.exec_head(e0), t(5));
        assert_eq!(g.exec_body(e0), &[t(0), t(1)]);
        assert_eq!(g.exec_body(e1), &[t(2)]);
        let snap = g.exec(e1);
        assert_eq!((snap.rule, snap.head, snap.body), (c(3), t(1), &[t(2)][..]));
        assert_eq!(g.execs().count(), 2);
    }

    #[test]
    fn reachable_tuples_follows_derivations() {
        let mut g = ProvGraph::new();
        // t5 <- exec(c2, [t0, t1]); t1 <- exec(c3, [t2]); t0, t2 base.
        g.add_base(c(0), t(0));
        g.add_base(c(1), t(2));
        g.add_exec(c(3), t(1), &[t(2)]);
        g.add_exec(c(2), t(5), &[t(0), t(1)]);
        let reach = g.reachable_tuples(t(5));
        assert_eq!(reach.len(), 4);
        assert!(reach.contains(&t(2)));
        // Rooted at t1, t0/t5 are not reachable.
        let reach1 = g.reachable_tuples(t(1));
        assert_eq!(reach1.len(), 2);
    }

    #[test]
    fn reachable_handles_cycles() {
        let mut g = ProvGraph::new();
        g.add_exec(c(0), t(0), &[t(1)]);
        g.add_exec(c(0), t(1), &[t(0)]);
        let reach = g.reachable_tuples(t(0));
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn unknown_tuple_has_no_derivations() {
        let g = ProvGraph::new();
        assert!(g.derivations(t(9)).is_empty());
        assert!(!g.is_base(t(9)));
        assert_eq!(g.num_tuples(), 0);
    }

    #[test]
    fn edge_count() {
        let mut g = ProvGraph::new();
        g.add_exec(c(2), t(5), &[t(0), t(1)]);
        g.add_exec(c(3), t(1), &[t(2)]);
        assert_eq!(g.num_edges(), 5); // (2 in + 1 out) + (1 in + 1 out)
    }

    #[test]
    fn tuples_skips_padding_slots() {
        let mut g = ProvGraph::new();
        g.add_base(c(0), t(7)); // slots 0..6 are padding
        let all: Vec<TupleId> = g.tuples().collect();
        assert_eq!(all, vec![t(7)]);
        assert_eq!(g.num_tuples(), 1);
    }

    #[test]
    fn signature_distinguishes_base_and_rule_derivations() {
        let mut g = ProvGraph::new();
        g.add_base(c(0), t(0));
        g.add_exec(c(1), t(1), &[t(0)]);
        let sig = g.signature();
        assert_eq!(sig.len(), 2);
        assert!(sig.contains(&(t(0), c(0), vec![])));
        assert!(sig.contains(&(t(1), c(1), vec![t(0)])));
    }
}
