//! The literal §3.2 provenance-maintenance scheme: rule rewriting.
//!
//! The paper rewrites each rule `rid p: H() :- B1(),…,Bn().` into three
//! rules at compile time — the original derivation, a `prov` record linking
//! the derived tuple to the rule execution, and a `rule` record linking the
//! rule execution to its input tuples. Both records are functions of one
//! thing: the *complete grounding* of the rule's variables. We therefore
//! materialise exactly that — one bookkeeping relation per rule,
//!
//! ```text
//! __exec_rid(V1,…,Vk) :- B1(),…,Bn().
//! ```
//!
//! where `V1…Vk` are the rule's distinct variables. The paper's `prov` and
//! `rule` tables are projections of `__exec_rid` (apply the grounding to
//! the head atom, respectively the body atoms), and
//! [`graph_from_rewritten`] performs those projections to reconstruct the
//! provenance graph. The result is bit-for-bit the graph that direct
//! capture produces (see the equivalence tests).
//!
//! This mode exists for fidelity to the paper and for the Fig 9 style
//! overhead measurements; production use should prefer
//! [`crate::capture::evaluate_with_provenance`], which is the paper's own
//! footnote-1 optimisation (evaluate the shared body once).

use crate::graph::ProvGraph;
use p3_datalog::ast::{Atom, Clause, ClauseId, ClauseKind, Const, Term};
use p3_datalog::engine::{Database, Engine, NoopSink, TupleId};
use p3_datalog::program::{Program, ProgramError};
use p3_datalog::symbol::Symbol;
use std::collections::HashMap;

/// A program augmented with per-rule execution-recording relations.
pub struct Rewritten {
    /// The rewritten program: original clauses first (ids preserved),
    /// then one `__exec_*` rule per original rule.
    pub program: Program,
    metas: Vec<ExecMeta>,
}

struct ExecMeta {
    /// The original rule (same id in original and rewritten program).
    rule: ClauseId,
    /// The bookkeeping predicate.
    exec_pred: Symbol,
    /// The rule's distinct variables, in `__exec` argument order.
    vars: Vec<Symbol>,
}

/// Errors from rewriting.
#[derive(Debug)]
pub enum RewriteError {
    /// Rebuilding the program failed (e.g. a `__exec_*` name collision with
    /// a user predicate).
    Program(ProgramError),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Program(e) => write!(f, "rewrite produced an invalid program: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Rewrites `program`, appending one `__exec_<label>(vars…)` rule per rule.
pub fn rewrite(program: &Program) -> Result<Rewritten, RewriteError> {
    let mut symbols = program.symbols().clone();
    let mut clauses: Vec<Clause> = program.clauses().to_vec();
    let mut metas = Vec::new();

    for (id, clause) in program.iter() {
        let ClauseKind::Rule {
            body,
            negated,
            constraints,
        } = &clause.kind
        else {
            continue;
        };
        // Distinct variables in first-occurrence order (body then head; the
        // head introduces none by safety).
        let mut vars: Vec<Symbol> = Vec::new();
        for atom in body.iter().chain(std::iter::once(&clause.head)) {
            for v in atom.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        let exec_name = format!("__exec_{}", clause.label);
        let exec_pred = symbols.intern(&exec_name);
        let exec_head = Atom {
            pred: exec_pred,
            args: vars.iter().map(|&v| Term::Var(v)).collect(),
        };
        clauses.push(Clause {
            label: format!("__exec_rule_{}", clause.label),
            prob: 1.0,
            head: exec_head,
            kind: ClauseKind::Rule {
                body: body.clone(),
                negated: negated.clone(),
                constraints: constraints.clone(),
            },
        });
        metas.push(ExecMeta {
            rule: id,
            exec_pred,
            vars,
        });
    }

    let program = Program::from_clauses(clauses, symbols).map_err(RewriteError::Program)?;
    Ok(Rewritten { program, metas })
}

/// Evaluates the rewritten program (plain engine, no sink) and reconstructs
/// the provenance graph from the bookkeeping relations. Returns the full
/// database (including `__exec_*` relations) and the graph.
pub fn evaluate_rewritten(original: &Program, rewritten: &Rewritten) -> (Database, ProvGraph) {
    let db = Engine::new(&rewritten.program).run(&mut NoopSink);
    let graph = graph_from_rewritten(original, rewritten, &db);
    (db, graph)
}

/// Projects the `__exec_*` relations back into a [`ProvGraph`].
pub fn graph_from_rewritten(original: &Program, rewritten: &Rewritten, db: &Database) -> ProvGraph {
    let mut graph = ProvGraph::new();

    // Base assertions come straight from the fact clauses.
    for (id, clause) in original.iter() {
        if !clause.is_fact() {
            continue;
        }
        let args: Vec<Const> = clause
            .head
            .args
            .iter()
            .map(|t| t.as_const().expect("facts are ground"))
            .collect();
        let tuple = db
            .lookup(clause.head.pred, &args)
            .expect("fact tuple present after evaluation");
        graph.add_base(id, tuple);
    }

    // Rule executions are the rows of the bookkeeping relations.
    for meta in &rewritten.metas {
        let rule_clause = original.clause(meta.rule);
        let exec_rows: Vec<TupleId> = db
            .relation(meta.exec_pred)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default();
        for row in exec_rows {
            let binding: HashMap<Symbol, Const> = {
                let stored = db.tuple(row);
                meta.vars
                    .iter()
                    .copied()
                    .zip(stored.args.iter().copied())
                    .collect()
            };
            let ground = |atom: &Atom, db: &Database| -> TupleId {
                let args: Vec<Const> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => binding[v],
                    })
                    .collect();
                db.lookup(atom.pred, &args)
                    .expect("grounded atom present: the original rule fired on this grounding")
            };
            let head = ground(&rule_clause.head, db);
            let body: Vec<TupleId> = rule_clause.body().iter().map(|a| ground(a, db)).collect();
            graph.add_exec(meta.rule, head, &body);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::evaluate_with_provenance;

    const ACQ: &str = r#"
        r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
        r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
        r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
        t1 1.0: live("Steve","DC").
        t2 1.0: live("Elena","DC").
        t3 1.0: live("Mary","NYC").
        t4 0.4: like("Steve","Veggies").
        t5 0.6: like("Elena","Veggies").
        t6 1.0: know("Ben","Steve").
    "#;

    #[test]
    fn rewrite_adds_one_exec_rule_per_rule() {
        let p = Program::parse(ACQ).unwrap();
        let rw = rewrite(&p).unwrap();
        assert_eq!(rw.program.len(), p.len() + 3);
        assert!(rw.program.clause_by_label("__exec_rule_r1").is_some());
        // Original clause ids are preserved.
        for (id, clause) in p.iter() {
            assert_eq!(rw.program.clause(id).label, clause.label);
        }
    }

    /// Renders a graph signature with tuples spelled out as text, so graphs
    /// captured against *different databases* (whose tuple ids diverge once
    /// `__exec_*` tuples interleave) compare structurally.
    fn content_signature(
        graph: &ProvGraph,
        db: &Database,
        program: &Program,
    ) -> std::collections::BTreeSet<(String, String, Vec<String>)> {
        let syms = program.symbols();
        let show = |t: TupleId| format!("{}", db.display_tuple(t, syms));
        graph
            .signature()
            .into_iter()
            .map(|(tuple, clause, body)| {
                (
                    show(tuple),
                    original_label(program, clause),
                    body.into_iter().map(show).collect(),
                )
            })
            .collect()
    }

    fn original_label(program: &Program, clause: p3_datalog::ast::ClauseId) -> String {
        program.clause(clause).label.clone()
    }

    fn assert_capture_strategies_agree(src: &str) {
        let p = Program::parse(src).unwrap();
        let (db_direct, direct) = evaluate_with_provenance(&p);
        let rw = rewrite(&p).unwrap();
        let (db_rw, reconstructed) = evaluate_rewritten(&p, &rw);
        assert_eq!(
            content_signature(&direct, &db_direct, &p),
            content_signature(&reconstructed, &db_rw, &p),
        );
    }

    #[test]
    fn rewritten_graph_equals_direct_capture_acquaintance() {
        assert_capture_strategies_agree(ACQ);
    }

    #[test]
    fn rewritten_graph_equals_direct_capture_on_cycles() {
        assert_capture_strategies_agree(
            "r1 1.0: reach(X) :- src(X).
             r2 0.9: reach(Y) :- reach(X), edge(X,Y).
             t0 1.0: src(a).
             e1 0.5: edge(a,b). e2 0.6: edge(b,a). e3 0.7: edge(b,c).",
        );
    }

    #[test]
    fn exec_relations_are_materialised() {
        let p = Program::parse("r1 1.0: q(X) :- p(X). t1 0.5: p(a). t2 0.5: p(b).").unwrap();
        let rw = rewrite(&p).unwrap();
        let (db, _) = evaluate_rewritten(&p, &rw);
        let exec = rw.program.symbols().get("__exec_r1").unwrap();
        assert_eq!(db.relation(exec).unwrap().len(), 2, "one row per firing");
    }

    #[test]
    fn tuple_ids_of_original_relations_are_comparable() {
        // The rewritten run inserts the same original tuples; ids may differ
        // in general, but signatures compare structurally through lookups,
        // which is what the equality tests above rely on. Here we pin the
        // weaker invariant directly: every original tuple exists in the
        // rewritten database.
        let p = Program::parse(ACQ).unwrap();
        let (db_direct, _) = evaluate_with_provenance(&p);
        let rw = rewrite(&p).unwrap();
        let (db_rw, _) = evaluate_rewritten(&p, &rw);
        for pred in db_direct.predicates() {
            let rel = db_direct.relation(pred).unwrap();
            for &t in rel.tuples() {
                let stored = db_direct.tuple(t);
                assert!(
                    db_rw.lookup(stored.pred, &stored.args).is_some(),
                    "missing tuple in rewritten run"
                );
            }
        }
    }
}
